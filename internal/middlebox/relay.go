package middlebox

import (
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blockdev"
	"repro/internal/initiator"
	"repro/internal/iscsi"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/target"
	"repro/internal/wal"
	"repro/internal/xerr"
)

// Mode selects the relay's interception strategy (Section III-B).
type Mode int

// Relay modes.
const (
	// Passive hooks every packet on the kernel forwarding path into user
	// space and completes commands synchronously — simple but costly.
	Passive Mode = iota + 1
	// Active splits the connection in two, acknowledges the source
	// immediately after journaling, and forwards asynchronously.
	Active
)

// String renders the mode.
func (m Mode) String() string {
	switch m {
	case Passive:
		return "passive-relay"
	case Active:
		return "active-relay"
	default:
		return "relay(?)"
	}
}

// CostModel captures the interception costs of the two designs: the
// passive relay pays a kernel-to-user copy per packet (one hook callback
// and syscall each), while the active relay reads through the kernel TCP
// stack, which packs several packets per copy.
type CostModel struct {
	// PassivePerPacket is the per-MTU-packet hook + copy cost.
	PassivePerPacket time.Duration
	// ActivePerBatch is the per-batch copy cost through the TCP stack.
	ActivePerBatch time.Duration
	// MTU is the packet size used for passive accounting.
	MTU int
	// BatchSize is the TCP-stack copy granularity for active accounting.
	BatchSize int
	// CopyThreads bounds the relay VM's concurrent packet-copy paths: the
	// paper identifies the intra-host packet copy as single-threaded, so a
	// small middle-box VM serializes interception across its sessions and
	// becomes a per-instance throughput ceiling — the saturation signal the
	// scale-out orchestrator reacts to. 0 leaves copies unbounded (the
	// legacy behaviour, a VM with as many vCPUs as sessions).
	CopyThreads int
}

// DefaultJournalCapacity bounds the active relay's NVRAM buffer when the
// configuration leaves it zero: enough to hide backend latency, small
// enough that sustained overload falls back to write-through (the physical
// NVRAM is finite).
const DefaultJournalCapacity = 4 << 20

// DefaultCostModel mirrors the calibration in EXPERIMENTS.md.
func DefaultCostModel() CostModel {
	return CostModel{
		PassivePerPacket: 4 * time.Microsecond,
		ActivePerBatch:   8 * time.Microsecond,
		MTU:              8 * 1024,
		BatchSize:        64 * 1024,
	}
}

// interceptCost returns the modelled cost of moving n payload bytes
// between the wire and the service process.
func (c CostModel) interceptCost(mode Mode, n int) time.Duration {
	if n <= 0 {
		n = 1
	}
	switch mode {
	case Passive:
		mtu := c.MTU
		if mtu <= 0 {
			mtu = 8 * 1024
		}
		packets := (n + mtu - 1) / mtu
		return time.Duration(packets) * c.PassivePerPacket
	case Active:
		batch := c.BatchSize
		if batch <= 0 {
			batch = 64 * 1024
		}
		batches := (n + batch - 1) / batch
		return time.Duration(batches) * c.ActivePerBatch
	default:
		return 0
	}
}

// ServiceFactory wraps a backend device with one tenant service. Factories
// compose in order: the first factory is closest to the backend.
type ServiceFactory func(backend blockdev.Device) (blockdev.Device, error)

// Config assembles a relay.
type Config struct {
	// Name is the middle-box's station name (diagnostics).
	Name string
	// Mode selects passive or active interception.
	Mode Mode
	// Dial opens the pseudo-client connection toward the next hop.
	// When nil, the relay requires front connections to carry netsim
	// route metadata and dials through Endpoint.
	Dial func(next netsim.Addr) (net.Conn, error)
	// Endpoint dials onward through the fabric when Dial is nil.
	Endpoint *netsim.Endpoint
	// NextHop overrides the front connection's route metadata.
	NextHop netsim.Addr
	// Services are the tenant service decorators, backend-first.
	Services []ServiceFactory
	// Params are the operational parameters the relay offers on both wire
	// legs: the pseudo-server negotiates them against each front login, and
	// the pseudo-client offers them to the next hop. Zero uses the protocol
	// defaults. The forward leg's actually negotiated values (the next hop
	// may cap them) size its burst windows and the write-back coalescing
	// limit.
	Params iscsi.Params
	// ForwardConns widens the pseudo-client (forward) session to this many
	// MC/S connections: commands round-robin across them with per-command
	// allegiance while CmdSN ordering stays session-wide. Default 1; capped
	// by the next hop's negotiated MaxConnections.
	ForwardConns int
	// JournalCapacity bounds the active relay's NVRAM buffer in bytes
	// (0 = unbounded).
	JournalCapacity int
	// JournalHighWatermark and JournalLowWatermark bound admission into the
	// write-back journal: once journaled-but-unapplied bytes reach the high
	// watermark the relay stops early-acking and refuses front writes with a
	// typed overload error (surfaced on the wire as SCSI BUSY) until the
	// appliers drain usage back to the low watermark. Zero high watermark
	// disables admission control (legacy behaviour: block, then write
	// through). Low defaults to half of high.
	JournalHighWatermark int
	JournalLowWatermark  int
	// CommandTimeout propagates the front initiator's command deadline onto
	// the relay's forward legs: each pseudo-client command that exceeds it
	// declares the forward connection dead and triggers redial/reissue, so a
	// wedged next hop turns into bounded latency plus recovery instead of an
	// indefinite stall holding journal space. Zero disables forward-leg
	// deadlines.
	CommandTimeout time.Duration
	// JournalDir, when set for an active relay, makes every session journal
	// crash-durable: a segmented WAL under JournalDir/sess-<n> that a
	// replacement instance can reopen with RecoverFrom after this one dies.
	// Empty keeps the in-memory journal (fast, lost on crash).
	JournalDir string
	// JournalSyncWindow is the durable journal's group-commit window: how
	// long an append may wait to share an fsync with its neighbours. 0
	// syncs on every append (strictest latency, most fsyncs).
	JournalSyncWindow time.Duration
	// Recovery shapes the active relay's backend-reopen policy (attempt
	// bounds, backoff, retry counts). The Reopen hook is supplied by the
	// relay itself — it re-dials the next hop and rebuilds the service
	// chain — so any hook set here is ignored.
	Recovery RecoveryConfig
	// Cost is the interception cost model (DefaultCostModel when zero).
	Cost CostModel
	// CPU optionally receives the relay's processing charges.
	CPU *metrics.CPUAccount
	// Obs optionally receives per-stage trace spans: the whole relay
	// service path under "stage.relay.<name>.service" and the downstream
	// forwarding leg under "stage.relay.<name>.forward". Nil disables
	// tracing.
	Obs *obs.Registry
	// Logger receives diagnostics.
	Logger *log.Logger
}

// ErrDraining reports a login refused because the relay is draining: the
// orchestrator has stopped steering new flows here ahead of a scale-down,
// and the relay refuses new sessions while the established ones log out.
// Classed xerr.Terminal: redialing the same relay is pointless — the
// steering layer must place the flow elsewhere — so the target advertises
// the refusal as non-retryable and initiators fail fast instead of burning
// their redial budget here.
var ErrDraining = xerr.New(xerr.Terminal, "middlebox: relay is draining")

// Relay is a middle-box's storage relay: pseudo-server toward the source,
// pseudo-client toward the next hop, with the tenant's service chain in
// between.
type Relay struct {
	cfg Config
	srv *target.Server

	journals chan Journal // best-effort stream of newly created journals

	journalMu  sync.Mutex
	journalAll []Journal          // every journal created for active sessions
	wbAll      []*WriteBackDevice // live write-back devices (for crash kill)
	killables  []Killable         // service-chain devices with own crash state

	draining atomic.Bool
	sessions atomic.Int64
	sessSeq  atomic.Int64 // names per-session durable journal directories
	killed   atomic.Bool

	// copyGate, when non-nil, serializes interception across the relay's
	// sessions (CostModel.CopyThreads concurrent copies).
	copyGate chan struct{}

	sessionsGauge *obs.Gauge
	busyNS        *obs.Counter
	negBurstGauge *obs.Gauge
}

// NewRelay builds a relay from the configuration.
func NewRelay(cfg Config) (*Relay, error) {
	if cfg.Mode != Passive && cfg.Mode != Active {
		return nil, fmt.Errorf("middlebox: invalid mode %d", cfg.Mode)
	}
	if cfg.Dial == nil && cfg.Endpoint == nil {
		return nil, errors.New("middlebox: relay needs Dial or Endpoint")
	}
	if threads := cfg.Cost.CopyThreads; cfg.Cost == (CostModel{CopyThreads: threads}) {
		def := DefaultCostModel()
		def.CopyThreads = threads
		cfg.Cost = def
	}
	r := &Relay{cfg: cfg, journals: make(chan Journal, 64)}
	if cfg.Cost.CopyThreads > 0 {
		r.copyGate = make(chan struct{}, cfg.Cost.CopyThreads)
	}
	r.sessionsGauge = cfg.Obs.Gauge("relay." + cfg.Name + ".sessions")
	r.busyNS = cfg.Obs.Counter("relay." + cfg.Name + ".busy_ns")
	r.negBurstGauge = cfg.Obs.Gauge("relay." + cfg.Name + ".neg_max_burst")
	opts := []target.Option{
		target.WithResolver(r.resolve),
		target.WithLogger(cfg.Logger),
	}
	if cfg.Params != (iscsi.Params{}) {
		opts = append(opts, target.WithParams(cfg.Params))
	}
	if cfg.Cost.interceptCost(cfg.Mode, 1<<20) == 0 {
		// With no modelled interception charge the front device stack is an
		// early-ack journal append (active) or a service pass-through, so a
		// quiet connection may execute commands inline in its read loop
		// instead of paying two scheduler wakeups per command. Configs that
		// model interception cost keep the per-command goroutine: an inline
		// command would busy-hold the connection through the charge (and the
		// shared copy gate).
		opts = append(opts, target.WithInlineExec())
	}
	r.srv = target.NewServer(opts...)
	return r, nil
}

// Serve accepts front connections on ln until it closes.
func (r *Relay) Serve(ln net.Listener) { r.srv.Serve(ln) }

// Close stops the relay and drains sessions.
func (r *Relay) Close() { r.srv.Close() }

// Drain puts the relay into draining mode: new sessions are refused with
// ErrDraining while established sessions keep running. Together with the
// steering layer's drain mark (no new flows hash here) this quiesces the
// instance so a scale-down can tear it down with zero data loss.
func (r *Relay) Drain() { r.draining.Store(true) }

// CancelDrain returns a draining relay to normal service.
func (r *Relay) CancelDrain() { r.draining.Store(false) }

// Draining reports whether the relay refuses new sessions.
func (r *Relay) Draining() bool { return r.draining.Load() }

// ActiveSessions returns the number of live front sessions.
func (r *Relay) ActiveSessions() int { return int(r.sessions.Load()) }

// CopyThreads returns the relay's interception concurrency bound (0 =
// unbounded); the orchestrator uses it as the utilization denominator.
func (r *Relay) CopyThreads() int { return r.cfg.Cost.CopyThreads }

// JournalBytes returns the early-acknowledged write bytes still unapplied
// across every session journal — data that would be lost if the instance
// were torn down now.
func (r *Relay) JournalBytes() int {
	total := 0
	for _, j := range r.AllJournals() {
		total += j.UsedBytes()
	}
	return total
}

// JournalPending returns the journaled-but-unapplied entry count across
// every session journal.
func (r *Relay) JournalPending() int {
	total := 0
	for _, j := range r.AllJournals() {
		total += j.Pending()
	}
	return total
}

// Quiesced reports whether a draining relay has fully wound down: no live
// sessions and an empty write-back journal.
func (r *Relay) Quiesced() bool {
	return r.Draining() && r.ActiveSessions() == 0 && r.JournalBytes() == 0 && r.JournalPending() == 0
}

// DrainStatus is a snapshot of the relay's wind-down progress.
type DrainStatus struct {
	Draining       bool
	Sessions       int
	JournalBytes   int
	JournalPending int
}

// DrainStatus reports the relay's current drain progress.
func (r *Relay) DrainStatus() DrainStatus {
	return DrainStatus{
		Draining:       r.Draining(),
		Sessions:       r.ActiveSessions(),
		JournalBytes:   r.JournalBytes(),
		JournalPending: r.JournalPending(),
	}
}

// Journals returns a channel delivering the journal of each active-mode
// session as it is created (for observability and tests). Delivery is
// best-effort: when no consumer keeps up, journals are still retained in the
// registry (AllJournals) and the drop is counted under
// "relay.journal_stream_drops".
func (r *Relay) Journals() <-chan Journal { return r.journals }

// AllJournals returns every journal created for this relay's active-mode
// sessions, in creation order. Unlike the Journals stream it never loses an
// entry, so post-run fault audits (Journal.Failures) see every session.
func (r *Relay) AllJournals() []Journal {
	r.journalMu.Lock()
	defer r.journalMu.Unlock()
	return append([]Journal(nil), r.journalAll...)
}

// openBackend dials the next hop, logs in with the front session's target
// name, and stacks the tenant service chain on the backend device. It
// returns the forward session's negotiated parameters so the caller can
// size downstream batching to the actual wire window. The active relay's
// recovery path calls it again after a backend session loss.
func (r *Relay) openBackend(iqn string, next netsim.Addr) (blockdev.Device, iscsi.Params, error) {
	dial := func() (net.Conn, error) {
		if r.cfg.Dial != nil {
			return r.cfg.Dial(next)
		}
		return r.cfg.Endpoint.DialAddr(next)
	}
	backConn, err := dial()
	if err != nil {
		return nil, iscsi.Params{}, fmt.Errorf("middlebox: dial next hop %v: %w", next, err)
	}
	sess, err := initiator.Login(backConn, initiator.Config{
		InitiatorIQN: "iqn.2016-04.edu.purdue.storm:mb:" + r.cfg.Name,
		TargetIQN:    iqn,
		// The relay aggregates a whole session's traffic onto its
		// pseudo-client leg; it needs the full command window.
		QueueDepth: 64,
		// The forward leg negotiates the relay's burst windows with the
		// next hop and, when configured, widens onto multiple MC/S
		// connections (DialConn re-dials the same next hop for the extra
		// transports and secondary reattach).
		Params:   r.cfg.Params,
		Conns:    r.cfg.ForwardConns,
		DialConn: dial,
		Obs:      r.cfg.Obs,
		Stage:    obs.RelayForwardStage(r.cfg.Name),
		// Deadline propagation: the front command's deadline bounds the
		// forward leg too, so a wedged next hop fails the command (and the
		// forward session — the write-back Reopen hook then recovers it)
		// within the same budget the source gave the relay.
		CommandTimeout: r.cfg.CommandTimeout,
	})
	if err != nil {
		_ = backConn.Close()
		return nil, iscsi.Params{}, fmt.Errorf("middlebox: backend login: %w", err)
	}
	neg := sess.Params()
	r.negBurstGauge.Set(int64(neg.MaxBurstLength))
	dev, err := initiator.OpenDevice(sess)
	if err != nil {
		_ = sess.Close()
		return nil, iscsi.Params{}, err
	}

	var stack blockdev.Device = dev
	for _, f := range r.cfg.Services {
		stack, err = f(stack)
		if err != nil {
			_ = sess.Close()
			return nil, iscsi.Params{}, fmt.Errorf("middlebox: build service chain: %w", err)
		}
		// Service layers carrying crash-relevant state of their own (the
		// replicate box's dispatch journal) register for Relay.Kill, so a
		// crash freezes them at the same instant as the session journals.
		if k, ok := stack.(Killable); ok {
			r.journalMu.Lock()
			r.killables = append(r.killables, k)
			r.journalMu.Unlock()
		}
	}
	return stack, neg, nil
}

// Killable is implemented by service-chain devices that hold crash-durable
// state of their own. The relay freezes them (no flush, journals kept on
// disk) when it is crash-killed.
type Killable interface{ Kill() }

// resolve is the pseudo-server's device resolver: it opens the backend stack
// through openBackend and adds the mode-specific decorators.
func (r *Relay) resolve(iqn string, conn net.Conn) (blockdev.Device, bool, error) {
	if r.draining.Load() {
		return nil, false, ErrDraining
	}
	next := r.cfg.NextHop
	if next.IsZero() {
		nc, ok := conn.(*netsim.Conn)
		if !ok || nc.Route() == nil || nc.Route().NextHop.IsZero() {
			return nil, false, errors.New("middlebox: front connection has no next-hop metadata")
		}
		next = nc.Route().NextHop
	}

	stack, neg, err := r.openBackend(iqn, next)
	if err != nil {
		return nil, false, err
	}
	if r.cfg.Mode == Active {
		capacity := r.cfg.JournalCapacity
		if capacity == 0 {
			capacity = DefaultJournalCapacity
		}
		var j Journal
		if r.cfg.JournalDir != "" {
			dir := filepath.Join(r.cfg.JournalDir, fmt.Sprintf("sess-%d", r.sessSeq.Add(1)))
			dj, err := NewDurableJournal(dir, wal.Meta{Attrs: map[string]string{
				"iqn":     iqn,
				"net":     strconv.Itoa(int(next.Net)),
				"nexthop": next.String(),
			}}, capacity, wal.Options{SyncWindow: r.cfg.JournalSyncWindow})
			if err != nil {
				_ = stack.Close()
				return nil, false, fmt.Errorf("middlebox: durable journal: %w", err)
			}
			j = dj
		} else {
			j = NewJournal(capacity)
		}
		r.journalMu.Lock()
		r.journalAll = append(r.journalAll, j)
		r.journalMu.Unlock()
		select {
		case r.journals <- j:
		default:
			// No consumer kept up with the stream; the registry above
			// still holds the journal, so nothing is lost — record the
			// drop so operators notice a stalled consumer.
			obs.Default().Counter("relay.journal_stream_drops").Inc()
		}
		rc := r.cfg.Recovery
		rc.Reopen = func() (blockdev.Device, error) {
			dev, _, err := r.openBackend(iqn, next)
			return dev, err
		}
		wb := NewWriteBackRecovering(stack, j, rc)
		// Cap adjacent-write coalescing at the forward leg's negotiated
		// burst window, so one coalesced apply is at most one solicited
		// burst on the wire.
		wb.SetMaxCoalesce(neg.MaxBurstLength)
		if hw := r.cfg.JournalHighWatermark; hw > 0 {
			lw := r.cfg.JournalLowWatermark
			wb.SetBackpressure(hw, lw,
				r.cfg.Obs.Gauge("backpressure.relay."+r.cfg.Name+".engaged"),
				r.cfg.Obs.Counter("backpressure.relay."+r.cfg.Name+".rejects"))
		}
		r.journalMu.Lock()
		r.wbAll = append(r.wbAll, wb)
		r.journalMu.Unlock()
		stack = wb
		// Retire the journal from the registry once the session tears
		// down clean; journals holding failures (or bytes) stay for audit.
		// Closing the journal lets a clean durable journal delete its WAL.
		stack = &closeHookDevice{Device: stack, hook: func() {
			r.retireJournal(j)
			r.retireWriteBack(wb)
			_ = j.Close()
		}}
	}
	id := newInterceptDevice(stack, r.cfg.Mode, r.cfg.Cost, r.cfg.CPU)
	id.gate = r.copyGate
	id.busy = r.busyNS
	stack = id
	// The outermost probe times the whole relay service path: interception,
	// tenant services, journaling, and the downstream forward.
	stack = blockdev.NewObservedDisk(stack, r.cfg.Obs, obs.RelayServiceStage(r.cfg.Name))
	// Count the session for drain tracking; the hook fires when the
	// pseudo-server closes the session's device at logout.
	r.sessions.Add(1)
	r.sessionsGauge.Add(1)
	stack = &closeHookDevice{Device: stack, hook: func() {
		r.sessions.Add(-1)
		r.sessionsGauge.Add(-1)
	}}
	return stack, true, nil
}

// retireWriteBack drops a closed session's write-back device from the
// crash-kill registry.
func (r *Relay) retireWriteBack(wb *WriteBackDevice) {
	r.journalMu.Lock()
	defer r.journalMu.Unlock()
	for i, e := range r.wbAll {
		if e == wb {
			r.wbAll = append(r.wbAll[:i], r.wbAll[i+1:]...)
			return
		}
	}
}

// Kill crash-stops the relay: every session journal freezes (nothing is
// acknowledged or marked applied past this instant — the durability cut
// line), the write-back appliers stop without draining, and the
// pseudo-server aborts its sessions. In-memory journal contents are lost,
// exactly as a real middle-box crash would lose NVRAM-less state; durable
// journals keep their WAL directories on disk for a replacement instance's
// RecoverFrom.
func (r *Relay) Kill() {
	if !r.killed.CompareAndSwap(false, true) {
		return
	}
	obs.Default().Eventf("relay", "%s: crash-killed (%d sessions)", r.cfg.Name, r.sessions.Load())
	for _, j := range r.AllJournals() {
		j.Kill()
	}
	r.journalMu.Lock()
	wbs := append([]*WriteBackDevice(nil), r.wbAll...)
	ks := append([]Killable(nil), r.killables...)
	r.journalMu.Unlock()
	for _, wb := range wbs {
		wb.Kill()
	}
	for _, k := range ks {
		k.Kill()
	}
	r.srv.Close()
}

// Killed reports whether the relay was crash-stopped.
func (r *Relay) Killed() bool { return r.killed.Load() }

// RecoverFrom replays a crashed predecessor's durable journals: it scans
// dir (the predecessor's JournalDir) for per-session WALs, reopens each,
// pushes the surviving unapplied records in sequence order through a
// freshly built backend service chain (the journal holds pre-service data,
// so encryption and friends must run again), flushes, and deletes the WAL.
// Replay is idempotent — records whose writes also landed before the crash
// simply overwrite with identical bytes. Sessions recover independently: a
// segment-less session directory (a crash between the journal's mkdir and
// its first durable record — nothing was ever acknowledged from it) is
// cleared and skipped, and a corrupt WAL or unreachable backend keeps that
// session's WAL on disk for another attempt without blocking the remaining
// sessions' replay. It returns the number of records replayed and the
// joined per-session errors.
func (r *Relay) RecoverFrom(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil // predecessor never journaled a session
		}
		return 0, fmt.Errorf("middlebox: recover from %s: %w", dir, err)
	}
	replays := obs.Default().Counter("journal.replays")
	replayed := obs.Default().Counter("journal.replayed_records")
	total := 0
	var errs []error
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sessDir := filepath.Join(dir, e.Name())
		log, rec, err := wal.Open(sessDir, wal.Options{SyncWindow: r.cfg.JournalSyncWindow})
		if errors.Is(err, wal.ErrNoSegments) {
			// Nothing durable ever landed here; remove the husk if it is
			// empty (a stray non-empty directory is left alone) and move on.
			_ = os.Remove(sessDir)
			continue
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("middlebox: recover %s: %w", sessDir, err))
			continue
		}
		n, err := r.replayRecovered(rec)
		if err != nil {
			_ = log.Close() // keep the WAL for another attempt
			errs = append(errs, fmt.Errorf("middlebox: recover %s: %w", sessDir, err))
			continue
		}
		total += n
		replays.Inc()
		replayed.Add(int64(n))
		obs.Default().Eventf("relay", "%s: recovered session journal %s: %d record(s) replayed (torn=%v)",
			r.cfg.Name, e.Name(), n, rec.Torn)
		if err := log.Remove(); err != nil {
			errs = append(errs, fmt.Errorf("middlebox: remove replayed journal %s: %w", sessDir, err))
		}
	}
	return total, errors.Join(errs...)
}

// replayRecovered delivers one recovered journal's records to the backend
// named by its meta, through a rebuilt service chain.
func (r *Relay) replayRecovered(rec *wal.Recovery) (int, error) {
	if len(rec.Records) == 0 {
		return 0, nil
	}
	iqn := rec.Meta.Attrs["iqn"]
	if iqn == "" {
		return 0, errors.New("journal meta lacks target iqn")
	}
	netNum, err := strconv.Atoi(rec.Meta.Attrs["net"])
	if err != nil {
		return 0, fmt.Errorf("journal meta network: %w", err)
	}
	next, err := netsim.ParseHostPort(netsim.Network(netNum), rec.Meta.Attrs["nexthop"])
	if err != nil {
		return 0, fmt.Errorf("journal meta next hop: %w", err)
	}
	stack, _, err := r.openBackend(iqn, next)
	if err != nil {
		return 0, err
	}
	for _, rc := range rec.Records {
		if err := stack.WriteAt(rc.Data, rc.LBA); err != nil {
			_ = stack.Close()
			return 0, fmt.Errorf("replay seq %d (lba %d): %w", rc.Seq, rc.LBA, err)
		}
	}
	if err := stack.Flush(); err != nil {
		_ = stack.Close()
		return 0, fmt.Errorf("flush after replay: %w", err)
	}
	if err := stack.Close(); err != nil {
		return 0, err
	}
	return len(rec.Records), nil
}

// retireJournal drops j from the registry if its session ended with nothing
// pending, no stranded bytes, and no recorded failures. Journals that still
// hold early-acked data or failure records are kept so post-run audits
// (AllJournals → Failures) see every loss surface; without retirement the
// registry grows without bound across session churn.
func (r *Relay) retireJournal(j Journal) {
	if j.Pending() != 0 || j.UsedBytes() != 0 || len(j.Failures()) != 0 {
		return
	}
	r.journalMu.Lock()
	defer r.journalMu.Unlock()
	for i, e := range r.journalAll {
		if e == j {
			r.journalAll = append(r.journalAll[:i], r.journalAll[i+1:]...)
			return
		}
	}
}

// closeHookDevice runs a hook after the wrapped device finishes closing —
// the relay uses it to observe session teardown at the device layer.
type closeHookDevice struct {
	blockdev.Device
	hook func()
}

func (d *closeHookDevice) Close() error {
	err := d.Device.Close()
	d.hook()
	return err
}

// interceptDevice charges the mode's interception cost (and CPU) per
// medium access, modelling the packet copy path into the service process.
type interceptDevice struct {
	dev  blockdev.Device
	mode Mode
	cost CostModel
	cpu  *metrics.CPUAccount
	// gate, when non-nil, bounds concurrent copies across the relay's
	// sessions (CostModel.CopyThreads); busy accumulates charged copy time.
	gate chan struct{}
	busy *obs.Counter
}

var _ blockdev.Device = (*interceptDevice)(nil)

func newInterceptDevice(dev blockdev.Device, mode Mode, cost CostModel, cpu *metrics.CPUAccount) *interceptDevice {
	return &interceptDevice{dev: dev, mode: mode, cost: cost, cpu: cpu}
}

func (d *interceptDevice) charge(n int) {
	c := d.cost.interceptCost(d.mode, n)
	if c <= 0 {
		return
	}
	if d.gate != nil {
		d.gate <- struct{}{}
	}
	simtime.Sleep(c)
	if d.gate != nil {
		<-d.gate
	}
	d.busy.Add(int64(c))
	if d.cpu != nil {
		d.cpu.Charge("intercept", c)
	}
}

func (d *interceptDevice) BlockSize() int { return d.dev.BlockSize() }

func (d *interceptDevice) Blocks() uint64 { return d.dev.Blocks() }

func (d *interceptDevice) ReadAt(p []byte, lba uint64) error {
	d.charge(len(p))
	return d.dev.ReadAt(p, lba)
}

func (d *interceptDevice) WriteAt(p []byte, lba uint64) error {
	d.charge(len(p))
	return d.dev.WriteAt(p, lba)
}

func (d *interceptDevice) Flush() error { return d.dev.Flush() }

func (d *interceptDevice) Close() error { return d.dev.Close() }
