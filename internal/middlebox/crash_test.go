package middlebox

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/faults"
	"repro/internal/initiator"
	"repro/internal/netsim"
	"repro/internal/target"
	"repro/internal/wal"
)

// slowDisk delays every write so the active relay builds a journal backlog:
// without it the appliers keep up with the workload and a crash finds
// nothing unapplied, making the replay assertions vacuous.
type slowDisk struct {
	blockdev.Device
	delay time.Duration
}

func (d *slowDisk) WriteAt(p []byte, lba uint64) error {
	time.Sleep(d.delay)
	return d.Device.WriteAt(p, lba)
}

// crashHarness is one relay-over-netsim universe for the crash tests.
type crashHarness struct {
	fab     *netsim.Fabric
	vmHost  *netsim.Host
	mbHost  *netsim.Host
	tsrv    *target.Server
	iqn     string
	relaySN int // relay serial for unique endpoint/listener names
}

const crashWrites = 48
const crashLBAs = 32 // < crashWrites so later writes overwrite earlier ones

func newCrashHarness(t *testing.T) *crashHarness {
	t.Helper()
	model := netsim.Model{MTU: 8 * 1024, Bandwidth: 1 << 32,
		Latency: map[netsim.HopKind]time.Duration{}, PerPacket: map[netsim.HopKind]time.Duration{}}
	fab := netsim.NewFabric(model)
	vmHost, err := fab.AddHost("compute1", map[netsim.Network]string{netsim.StorageNet: "10.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	mbHost, err := fab.AddHost("mb1", map[netsim.Network]string{netsim.StorageNet: "10.0.0.50"})
	if err != nil {
		t.Fatal(err)
	}
	storHost, err := fab.AddHost("storage1", map[netsim.Network]string{netsim.StorageNet: "10.0.0.100"})
	if err != nil {
		t.Fatal(err)
	}
	disk, err := blockdev.NewMemDisk(512, 1024)
	if err != nil {
		t.Fatal(err)
	}
	tsrv := target.NewServer()
	const iqn = "iqn.2016-04.edu.purdue.storm:crash"
	if err := tsrv.AddTarget(iqn, &slowDisk{Device: disk, delay: 200 * time.Microsecond}); err != nil {
		t.Fatal(err)
	}
	storLn, err := storHost.NewEndpoint("tgt").Listen(netsim.StorageNet, 3260)
	if err != nil {
		t.Fatal(err)
	}
	go tsrv.Serve(storLn)
	t.Cleanup(func() { tsrv.Close() })
	return &crashHarness{fab: fab, vmHost: vmHost, mbHost: mbHost, tsrv: tsrv, iqn: iqn}
}

// startRelay launches an active relay with a durable journal under dir on a
// fresh middle-box port and returns it with its front address.
func (h *crashHarness) startRelay(t *testing.T, dir string) (*Relay, string) {
	t.Helper()
	h.relaySN++
	port := 3260 + h.relaySN
	name := fmt.Sprintf("mb1-%d", h.relaySN)
	relay, err := NewRelay(Config{
		Name:       name,
		Mode:       Active,
		Endpoint:   h.mbHost.NewEndpoint("relay-" + name),
		NextHop:    netsim.Addr{Net: netsim.StorageNet, IP: "10.0.0.100", Port: 3260},
		Cost:       CostModel{MTU: 8192, BatchSize: 65536},
		JournalDir: dir,
		Recovery:   RecoveryConfig{BackoffBase: time.Millisecond, BackoffCap: 4 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := h.mbHost.NewEndpoint("front-"+name).Listen(netsim.StorageNet, port)
	if err != nil {
		t.Fatal(err)
	}
	go relay.Serve(ln)
	t.Cleanup(relay.Close)
	return relay, fmt.Sprintf("10.0.0.50:%d", port)
}

func (h *crashHarness) login(t *testing.T, addr, ep string) *initiator.Session {
	t.Helper()
	conn, err := h.vmHost.NewEndpoint(ep).Dial(netsim.StorageNet, addr)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := initiator.Login(conn, initiator.Config{
		InitiatorIQN: "iqn.vm-crash", TargetIQN: h.iqn,
	})
	if err != nil {
		t.Fatalf("login: %v", err)
	}
	return sess
}

// crashPattern is write i's payload: distinct per write so overwrites of the
// same LBA are order-sensitive.
func crashPattern(i int) []byte {
	p := make([]byte, 512)
	for k := range p {
		p[k] = byte(i*31 + k*7 + 11)
	}
	return p
}

// readBackHash hashes the final content of every LBA the workload touched.
func readBackHash(t *testing.T, sess *initiator.Session) [32]byte {
	t.Helper()
	h := sha256.New()
	for lba := 0; lba < crashLBAs; lba++ {
		b, err := sess.Read(uint64(lba), 1, 512)
		if err != nil {
			t.Fatalf("read-back lba %d: %v", lba, err)
		}
		h.Write(b)
	}
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum
}

// crashBaseline runs the workload with no crash and returns the content hash.
func crashBaseline(t *testing.T) [32]byte {
	h := newCrashHarness(t)
	_, addr := h.startRelay(t, filepath.Join(t.TempDir(), "j"))
	sess := h.login(t, addr, "vm")
	for i := 0; i < crashWrites; i++ {
		if err := sess.Write(uint64(i%crashLBAs), crashPattern(i), 512); err != nil {
			t.Fatalf("baseline write %d: %v", i, err)
		}
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	sum := readBackHash(t, sess)
	if err := sess.Logout(); err != nil {
		t.Fatal(err)
	}
	return sum
}

// crashRun kills the relay at the seed-chosen tick mid-workload, recovers
// onto a replacement relay (WAL reopen + replay), finishes the workload
// there, and returns the content hash plus how many journal records the
// replay delivered.
func crashRun(t *testing.T, seed int64) (sum [32]byte, tick uint64, replayed int) {
	h := newCrashHarness(t)
	stateDir := t.TempDir()
	dir1 := filepath.Join(stateDir, "mb1")
	relay1, addr1 := h.startRelay(t, dir1)

	sched := faults.NewSchedule()
	tick = faults.Crash(sched, seed, 2, crashWrites-2, relay1.Kill)

	sess := h.login(t, addr1, "vm")
	var sess2 *initiator.Session
	crashed := false
	for i := 0; i < crashWrites; i++ {
		cur := sess
		if crashed {
			cur = sess2
		}
		err := cur.Write(uint64(i%crashLBAs), crashPattern(i), 512)
		if err != nil {
			if crashed {
				t.Fatalf("write %d failed after recovery: %v", i, err)
			}
			if !relay1.Killed() {
				t.Fatalf("write %d failed before the crash point: %v", i, err)
			}
			crashed = true
			_ = sess.Close()
			// Re-provision: a replacement relay recovers the crashed
			// instance's durable journals, then the client reconnects and
			// retries the unacknowledged write.
			dir2 := filepath.Join(stateDir, "mb2")
			relay2, addr2 := h.startRelay(t, dir2)
			n, err := relay2.RecoverFrom(dir1)
			if err != nil {
				t.Fatalf("RecoverFrom after crash at tick %d: %v", tick, err)
			}
			replayed = n
			sess2 = h.login(t, addr2, "vm2")
			i-- // retry the failed, never-acknowledged write
			continue
		}
		sched.Step()
	}
	if !crashed {
		t.Fatalf("seed %d (tick %d): workload finished without observing the crash", seed, tick)
	}
	if err := sess2.Flush(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	sum = readBackHash(t, sess2)
	if err := sess2.Logout(); err != nil {
		t.Fatalf("logout: %v", err)
	}

	// The crashed instance's WAL directory must be consumed by the replay.
	if entries, err := os.ReadDir(dir1); err == nil && len(entries) != 0 {
		t.Fatalf("crashed relay's journal dir still holds %d entries after replay", len(entries))
	}
	return sum, tick, replayed
}

// TestCrashReplayAtManyPoints is the acceptance criterion: kill the relay
// at ≥ 20 distinct seed-chosen points mid-workload, reopen the WAL from
// disk on a replacement instance, replay, and end byte-identical to the
// no-crash baseline with empty journals — zero acknowledged writes lost.
func TestCrashReplayAtManyPoints(t *testing.T) {
	want := crashBaseline(t)

	const distinctPoints = 20
	seen := make(map[uint64]bool)
	totalReplayed := 0
	for seed := int64(0); len(seen) < distinctPoints && seed < 200; seed++ {
		tick := faults.CrashPoint(seed, 2, crashWrites-2)
		if seen[tick] {
			continue
		}
		seed := seed
		t.Run(fmt.Sprintf("seed%d_tick%d", seed, tick), func(t *testing.T) {
			got, gotTick, replayed := crashRun(t, seed)
			if gotTick != tick {
				t.Fatalf("CrashPoint not deterministic: %d then %d", tick, gotTick)
			}
			if got != want {
				t.Fatalf("content hash after crash at tick %d differs from no-crash baseline (acknowledged write lost or misordered)", tick)
			}
			totalReplayed += replayed
		})
		seen[tick] = true
	}
	if len(seen) < distinctPoints {
		t.Fatalf("only %d distinct crash points out of %d required", len(seen), distinctPoints)
	}
	if totalReplayed == 0 {
		t.Fatal("no run replayed any journal record — the crash never caught unapplied acknowledged writes (vacuous test)")
	}
}

// TestRecoverFromIsolatesBrokenSessions: one crashed relay can leave
// several session journals behind, and not all of them healthy — a session
// dir with no segments (crash between the journal's mkdir and its first
// durable write) and a corrupt WAL must not block the good session's
// replay. The empty husk is cleared, the corrupt WAL is kept for another
// attempt, and the aggregate error is typed.
func TestRecoverFromIsolatesBrokenSessions(t *testing.T) {
	h := newCrashHarness(t)
	stateDir := t.TempDir()
	dir1 := filepath.Join(stateDir, "mb1")
	meta := wal.Meta{Attrs: map[string]string{
		"iqn":     h.iqn,
		"net":     strconv.Itoa(int(netsim.StorageNet)),
		"nexthop": "10.0.0.100:3260",
	}}

	// sess-1: a healthy journal holding three unapplied acknowledged writes.
	const goodRecords = 3
	good := filepath.Join(dir1, "sess-1")
	lg, err := wal.Create(good, meta, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < goodRecords; i++ {
		if _, err := lg.Append(uint64(i), crashPattern(i)); err != nil {
			t.Fatal(err)
		}
	}
	lg.Kill()

	// sess-2: the predecessor died between MkdirAll and the first segment
	// write — an empty directory with nothing recoverable.
	empty := filepath.Join(dir1, "sess-2")
	if err := os.MkdirAll(empty, 0o755); err != nil {
		t.Fatal(err)
	}

	// sess-3: a journal corrupted mid-log (damage with live log after it).
	bad := filepath.Join(dir1, "sess-3")
	lb, err := wal.Create(bad, meta, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := lb.Append(uint64(16+i), crashPattern(16+i)); err != nil {
			t.Fatal(err)
		}
	}
	lb.Kill()
	badSeg := filepath.Join(bad, "00000000.seg")
	segBytes, err := os.ReadFile(badSeg)
	if err != nil {
		t.Fatal(err)
	}
	segBytes[len(segBytes)/2] ^= 0x40
	if err := os.WriteFile(badSeg, segBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	relay2, addr2 := h.startRelay(t, filepath.Join(stateDir, "mb2"))
	n, err := relay2.RecoverFrom(dir1)
	if n != goodRecords {
		t.Fatalf("RecoverFrom replayed %d records, want %d from the healthy session", n, goodRecords)
	}
	if !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("RecoverFrom err = %v, want the corrupt session's typed error", err)
	}
	// The healthy session's WAL is consumed, the empty husk cleared, and the
	// corrupt WAL kept on disk for another attempt.
	if _, err := os.Stat(good); !os.IsNotExist(err) {
		t.Fatalf("replayed session dir still present: %v", err)
	}
	if _, err := os.Stat(empty); !os.IsNotExist(err) {
		t.Fatalf("empty session dir not cleared: %v", err)
	}
	if _, err := os.Stat(badSeg); err != nil {
		t.Fatalf("corrupt session WAL not kept for retry: %v", err)
	}
	// The replayed records actually reached the backend.
	sess := h.login(t, addr2, "vm-verify")
	for i := 0; i < goodRecords; i++ {
		b, err := sess.Read(uint64(i), 1, 512)
		if err != nil {
			t.Fatalf("read-back lba %d: %v", i, err)
		}
		if !bytes.Equal(b, crashPattern(i)) {
			t.Fatalf("lba %d does not hold the replayed record", i)
		}
	}
	if err := sess.Logout(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoverySurvivesSecondCrash crashes the replacement too: replay
// must be idempotent across repeated recoveries.
func TestCrashRecoverySurvivesSecondCrash(t *testing.T) {
	want := crashBaseline(t)

	h := newCrashHarness(t)
	stateDir := t.TempDir()
	dirs := []string{filepath.Join(stateDir, "mb1"), filepath.Join(stateDir, "mb2"), filepath.Join(stateDir, "mb3")}
	relay, addr := h.startRelay(t, dirs[0])
	sess := h.login(t, addr, "vm0")

	sched := faults.NewSchedule()
	crashAt := map[uint64]bool{12: true, 30: true}
	gen := 0
	relays := []*Relay{relay}
	for tick := range crashAt {
		r := func() { relays[len(relays)-1].Kill() }
		sched.At(tick, fmt.Sprintf("crash@%d", tick), r)
	}

	totalReplayed := 0
	for i := 0; i < crashWrites; i++ {
		err := sess.Write(uint64(i%crashLBAs), crashPattern(i), 512)
		if err != nil {
			if !relays[len(relays)-1].Killed() {
				t.Fatalf("write %d failed without a crash: %v", i, err)
			}
			_ = sess.Close()
			oldDir := dirs[gen]
			gen++
			if gen >= len(dirs) {
				t.Fatal("more crashes than scheduled")
			}
			r2, addr2 := h.startRelay(t, dirs[gen])
			n, rerr := r2.RecoverFrom(oldDir)
			if rerr != nil {
				t.Fatalf("recovery %d: %v", gen, rerr)
			}
			totalReplayed += n
			relays = append(relays, r2)
			sess = h.login(t, addr2, fmt.Sprintf("vm%d", gen))
			i--
			continue
		}
		sched.Step()
	}
	if gen != 2 {
		t.Fatalf("observed %d crashes, want 2", gen)
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	got := readBackHash(t, sess)
	if err := sess.Logout(); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("content differs from baseline after two crash-recovery rounds")
	}
	if totalReplayed == 0 {
		t.Fatal("neither recovery replayed anything (vacuous)")
	}
}
