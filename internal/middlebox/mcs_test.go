package middlebox

import (
	"crypto/sha256"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/faults"
	"repro/internal/initiator"
	"repro/internal/netsim"
	"repro/internal/target"
)

// mcsRun drives a write workload from a VM through an active relay whose
// downstream leg is an MC/S session of forwardConns connections, over the
// netsim fabric. The relay's second forward dial is routed through a
// separate fabric host ("mbaux"), so netsim.CutLink("mbaux", "storage1")
// severs exactly one of the N forward connections — the leading connection
// and the remaining secondaries stay up, which is the 1-of-N failure the
// initiator must absorb by redistributing in-flight commands.
//
// The workload writes every LBA twice with different patterns, so any
// reordering of overlapping commands during redistribution changes the
// final content hash. Fault timing is schedule-driven, one tick per
// acknowledged write.
func mcsRun(t *testing.T, forwardConns int, cuts ...uint64) ([32]byte, Journal) {
	t.Helper()
	model := netsim.Model{MTU: 8 * 1024, Bandwidth: 1 << 32,
		Latency: map[netsim.HopKind]time.Duration{}, PerPacket: map[netsim.HopKind]time.Duration{}}
	fab := netsim.NewFabric(model)
	vmHost, err := fab.AddHost("compute1", map[netsim.Network]string{netsim.StorageNet: "10.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	mbHost, err := fab.AddHost("mb1", map[netsim.Network]string{netsim.StorageNet: "10.0.0.50"})
	if err != nil {
		t.Fatal(err)
	}
	auxHost, err := fab.AddHost("mbaux", map[netsim.Network]string{netsim.StorageNet: "10.0.0.51"})
	if err != nil {
		t.Fatal(err)
	}
	storHost, err := fab.AddHost("storage1", map[netsim.Network]string{netsim.StorageNet: "10.0.0.100"})
	if err != nil {
		t.Fatal(err)
	}

	disk, err := blockdev.NewMemDisk(512, 1024)
	if err != nil {
		t.Fatal(err)
	}
	tsrv := target.NewServer()
	const iqn = "iqn.2016-04.edu.purdue.storm:mcs"
	if err := tsrv.AddTarget(iqn, disk); err != nil {
		t.Fatal(err)
	}
	storLn, err := storHost.NewEndpoint("tgt").Listen(netsim.StorageNet, 3260)
	if err != nil {
		t.Fatal(err)
	}
	go tsrv.Serve(storLn)

	// Forward dial #2 (the first secondary, CID 1) goes out through mbaux;
	// every other dial — the leading connection, later secondaries, and any
	// reattach after the cut — uses mb1. CutLink("mbaux", "storage1") can
	// therefore abort exactly one member of the session.
	mbEP := mbHost.NewEndpoint("relay")
	auxEP := auxHost.NewEndpoint("relay-aux")
	var dials atomic.Int32
	dial := func(next netsim.Addr) (net.Conn, error) {
		if dials.Add(1) == 2 && forwardConns > 1 {
			return auxEP.DialAddr(next)
		}
		return mbEP.DialAddr(next)
	}

	relay, err := NewRelay(Config{
		Name:         "mb1",
		Mode:         Active,
		Dial:         dial,
		NextHop:      netsim.Addr{Net: netsim.StorageNet, IP: "10.0.0.100", Port: 3260},
		Cost:         CostModel{MTU: 8192, BatchSize: 65536},
		ForwardConns: forwardConns,
		Recovery:     RecoveryConfig{BackoffBase: time.Millisecond, BackoffCap: 4 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	mbLn, err := mbHost.NewEndpoint("front").Listen(netsim.StorageNet, 3260)
	if err != nil {
		t.Fatal(err)
	}
	go relay.Serve(mbLn)
	t.Cleanup(func() {
		relay.Close()
		tsrv.Close()
	})

	front, err := vmHost.NewEndpoint("vm").Dial(netsim.StorageNet, "10.0.0.50:3260")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := initiator.Login(front, initiator.Config{
		InitiatorIQN: "iqn.vm-mcs", TargetIQN: iqn,
	})
	if err != nil {
		t.Fatalf("login through relay: %v", err)
	}
	j := <-relay.Journals()

	var aborted atomic.Int32
	sched := faults.NewSchedule()
	for _, tick := range cuts {
		sched.At(tick, fmt.Sprintf("cut-aux@%d", tick), func() {
			aborted.Add(int32(fab.CutLink("mbaux", "storage1")))
		})
	}

	// Two passes over the same LBAs: pass 2 overwrites pass 1, so the final
	// hash detects both lost writes and misordered overlapping writes.
	const lbas = 48
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < lbas; i++ {
			p := make([]byte, 512)
			for k := range p {
				p[k] = byte(i*7 + k + pass*131)
			}
			if err := sess.Write(uint64(i), p, 512); err != nil {
				t.Fatalf("pass %d write %d: %v", pass, i, err)
			}
			sched.Step()
		}
	}
	if err := sess.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if fired := sched.Fired(); len(fired) != len(cuts) {
		t.Fatalf("fired %v, want %d cuts", fired, len(cuts))
	}
	if len(cuts) > 0 {
		if got := aborted.Load(); got != 1 {
			t.Fatalf("CutLink(mbaux, storage1) aborted %d connections, want exactly 1 (the test must cut 1-of-%d forward conns)", got, forwardConns)
		}
	}

	h := sha256.New()
	for i := 0; i < lbas; i++ {
		b, err := sess.Read(uint64(i), 1, 512)
		if err != nil {
			t.Fatalf("read-back %d: %v", i, err)
		}
		h.Write(b)
	}
	if err := sess.Logout(); err != nil {
		t.Fatalf("logout: %v", err)
	}
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum, j
}

// TestMCSForwardCutRedistributes is the MC/S failure-matrix acceptance test:
// with a 3-connection downstream leg, cutting one secondary mid-workload
// must not lose or reorder data. The initiator redistributes that
// connection's in-flight commands onto the survivors, so the fault is
// absorbed entirely below the journal layer — the relay's recovery machinery
// never fires and the content matches a single-connection no-fault baseline.
func TestMCSForwardCutRedistributes(t *testing.T) {
	wantHash, baseJ := mcsRun(t, 1)
	if used := baseJ.UsedBytes(); used != 0 {
		t.Fatalf("single-conn baseline left %d journal bytes", used)
	}

	gotHash, j := mcsRun(t, 3, 40)
	if gotHash != wantHash {
		t.Fatal("content hash after 1-of-3 forward-conn cut differs from single-conn baseline (lost or misordered blocks)")
	}
	if used := j.UsedBytes(); used != 0 {
		t.Errorf("Journal.UsedBytes() = %d after redistributed run, want 0", used)
	}
	if j.Pending() != 0 {
		t.Errorf("Journal.Pending() = %d after redistributed run, want 0", j.Pending())
	}
	// A 1-of-N cut is handled inside the MC/S session: surviving connections
	// pick up the dead connection's commands and the backend WriteAt never
	// surfaces an error, so the journal must record no failures.
	if f := j.Failures(); len(f) != 0 {
		t.Errorf("journal recorded %d failures %v, want 0 (cut should be absorbed by MC/S redistribution)", len(f), f)
	}
}

// TestMCSMultiConnCleanRun checks the no-fault MC/S matrix cell: a
// 3-connection forward leg with commands round-robined across members must
// produce content identical to the single-connection baseline.
func TestMCSMultiConnCleanRun(t *testing.T) {
	wantHash, _ := mcsRun(t, 1)
	gotHash, j := mcsRun(t, 3)
	if gotHash != wantHash {
		t.Fatal("multi-conn clean run content differs from single-conn baseline")
	}
	if used := j.UsedBytes(); used != 0 {
		t.Errorf("Journal.UsedBytes() = %d, want 0", used)
	}
}
