package middlebox

import (
	"sync"

	"repro/internal/blockdev"
	"repro/internal/bufpool"
)

// applyParallelism bounds concurrent backend applies. The relay forwards
// journaled writes as fast as the pseudo-client connection accepts them,
// like the prototype's kernel TCP stack; overlapping writes stay ordered.
const applyParallelism = 16

// maxCoalescedBytes caps how large an adjacent-extent merge may grow. 256 KiB
// matches the default MaxBurstLength, so a coalesced apply is at most one
// burst — the paper's "several packets per copy" batching without unbounded
// latency for the first write in the run.
const maxCoalescedBytes = 256 * 1024

// WriteBackDevice implements the active-relay acknowledgement semantics as
// a device decorator: WriteAt journals the data to the non-volatile buffer
// and returns immediately (the pseudo-server then acknowledges the source),
// while background appliers push journaled writes to the backend. Writes to
// overlapping extents apply in arrival order; disjoint writes apply in
// parallel, matching the pipelining of the split TCP connections. Reads of
// ranges with pending writes wait for those writes to land, preserving
// read-your-writes consistency. Flush drains the journal before syncing the
// backend.
//
// Pending writes are indexed by a last-writer coverage map (see coverage):
// admission replaces the new extent's owners in one sorted-range splice and
// takes ordering edges only on those owners, so the dependency graph stays
// linear in the number of writes — the former implementation re-scanned the
// whole queue per dispatch, O(n²) with queue depth. When a write's dependency
// count reaches zero it moves to a ready FIFO the appliers drain. Small
// writes exactly adjacent to the undispatched tail write coalesce into one
// backend apply (see maxCoalescedBytes).
type WriteBackDevice struct {
	dev     blockdev.Device
	journal *Journal

	mu       sync.Mutex
	cond     *sync.Cond
	cov      coverage
	ready    []*wbItem // ndeps==0, not yet dispatched, FIFO
	tail     *wbItem   // most recently admitted undispatched item, if any
	items    int       // pending applies (admitted, not yet completed)
	pending  int       // journaled writes not yet applied (≥ items with coalescing)
	closed   bool
	applyErr error // sticky: first backend failure stops early-acking
	wg       sync.WaitGroup
}

// wbItem is one pending backend apply: the extent [lba, end) in blocks, the
// owned (pooled) data copy, and the journal seqs it carries (several after
// coalescing).
type wbItem struct {
	lba, end uint64
	seqs     []uint64
	data     []byte
	dbuf     *bufpool.Buf

	ndeps      int       // block owners this write must apply after
	dependents []*wbItem // later writes waiting on this one
	dispatched bool
}

// appendData grows the item's owned storage with p, upgrading to a larger
// pool class when the current buffer is out of capacity.
func (it *wbItem) appendData(p []byte) {
	need := len(it.data) + len(p)
	if need <= cap(it.dbuf.B) {
		it.dbuf.B = it.dbuf.B[:need]
		copy(it.dbuf.B[need-len(p):], p)
		it.data = it.dbuf.B
		return
	}
	nb := bufpool.Get(need)
	copy(nb.B, it.data)
	copy(nb.B[len(it.data):], p)
	it.dbuf.Release()
	it.dbuf = nb
	it.data = nb.B
}

var _ blockdev.Device = (*WriteBackDevice)(nil)

// NewWriteBack wraps dev with active-relay write-back semantics using the
// given journal.
func NewWriteBack(dev blockdev.Device, journal *Journal) *WriteBackDevice {
	w := &WriteBackDevice{dev: dev, journal: journal}
	w.cond = sync.NewCond(&w.mu)
	for i := 0; i < applyParallelism; i++ {
		w.wg.Add(1)
		go w.applyLoop()
	}
	return w
}

// Journal returns the backing journal.
func (w *WriteBackDevice) Journal() *Journal { return w.journal }

// BlockSize implements blockdev.Device.
func (w *WriteBackDevice) BlockSize() int { return w.dev.BlockSize() }

// Blocks implements blockdev.Device.
func (w *WriteBackDevice) Blocks() uint64 { return w.dev.Blocks() }

// WriteAt journals the write and returns without waiting for the backend.
// The data is copied into pooled owned storage before return, so the caller
// may reuse p immediately (the blockdev.Device contract). When the journal
// is full or a previous apply failed, it falls back to a synchronous write
// (after draining, to preserve ordering).
func (w *WriteBackDevice) WriteAt(p []byte, lba uint64) error {
	bs := w.dev.BlockSize()
	if len(p) == 0 || len(p)%bs != 0 {
		return blockdev.ErrBadLength
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return blockdev.ErrClosed
	}
	if w.applyErr != nil {
		err := w.applyErr
		w.mu.Unlock()
		return err
	}
	w.mu.Unlock()

	// Backpressure: when the NVRAM buffer is full, wait for appliers to
	// free space rather than collapsing the pipeline with a full drain —
	// the source then sees ack latency equal to one backend drain
	// interval, exactly the split-connection flow control of the paper.
	seq, err := w.journal.Append(lba, p)
	for err != nil {
		w.mu.Lock()
		if w.closed || w.applyErr != nil {
			ferr := w.applyErr
			w.mu.Unlock()
			if ferr != nil {
				return ferr
			}
			return blockdev.ErrClosed
		}
		if w.items == 0 {
			// Nothing in flight and still no room: the write exceeds the
			// buffer entirely; write through synchronously.
			w.mu.Unlock()
			return w.dev.WriteAt(p, lba)
		}
		w.cond.Wait()
		w.mu.Unlock()
		seq, err = w.journal.Append(lba, p)
	}

	end := lba + uint64(len(p)/bs)
	w.mu.Lock()
	// Coalesce: append to the undispatched tail when the new extent starts
	// exactly where the tail ends, the merge stays within one burst, and
	// the new extent conflicts with nothing pending (so applying it with
	// the tail — possibly before writes admitted in between — cannot
	// reorder overlapping data).
	if t := w.tail; t != nil && !t.dispatched && t.end == lba &&
		len(t.data)+len(p) <= maxCoalescedBytes && !w.cov.overlaps(lba, end) {
		t.appendData(p)
		t.seqs = append(t.seqs, seq)
		w.cov.paint(lba, end, t)
		t.end = end
		w.pending++
		w.mu.Unlock()
		return nil
	}

	item := &wbItem{lba: lba, end: end, seqs: []uint64{seq}, dbuf: bufpool.Get(len(p))}
	item.data = item.dbuf.B
	copy(item.data, p)
	// Arrival-order for conflicts: wait for the current last writer of every
	// block in the extent. Older overlapping writes are ordered before those
	// owners block by block, so transitivity orders them before this write
	// too — no edge needed.
	for _, o := range w.cov.paint(lba, end, item) {
		item.ndeps++
		o.dependents = append(o.dependents, item)
	}
	w.items++
	w.pending++
	w.tail = item
	if item.ndeps == 0 {
		w.ready = append(w.ready, item)
	}
	w.mu.Unlock()
	w.cond.Broadcast()
	return nil
}

// ReadAt waits for pending writes overlapping the extent, then reads from
// the backend.
func (w *WriteBackDevice) ReadAt(p []byte, lba uint64) error {
	if len(p) == 0 || len(p)%w.dev.BlockSize() != 0 {
		return blockdev.ErrBadLength
	}
	end := lba + uint64(len(p)/w.dev.BlockSize())
	w.mu.Lock()
	for w.cov.overlaps(lba, end) && !w.closed {
		w.cond.Wait()
	}
	closed := w.closed
	w.mu.Unlock()
	if closed {
		return blockdev.ErrClosed
	}
	return w.dev.ReadAt(p, lba)
}

// Flush drains all journaled writes and flushes the backend.
func (w *WriteBackDevice) Flush() error {
	w.drain()
	w.mu.Lock()
	err := w.applyErr
	w.mu.Unlock()
	if err != nil {
		return err
	}
	return w.dev.Flush()
}

// Close drains outstanding writes, stops the appliers, and closes the
// backend.
func (w *WriteBackDevice) Close() error {
	w.drain()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	w.cond.Broadcast()
	w.wg.Wait()
	return w.dev.Close()
}

// Pending returns the number of journaled-but-unapplied writes. Coalesced
// writes count individually until their merged apply lands.
func (w *WriteBackDevice) Pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.pending
}

// drain blocks until every pending write has been applied.
func (w *WriteBackDevice) drain() {
	w.mu.Lock()
	for w.items > 0 && !w.closed {
		w.cond.Wait()
	}
	w.mu.Unlock()
}

// applyLoop is one of the parallel appliers: it pops ready items, writes
// them to the backend, and unblocks their dependents.
func (w *WriteBackDevice) applyLoop() {
	defer w.wg.Done()
	for {
		w.mu.Lock()
		for len(w.ready) == 0 && !w.closed {
			w.cond.Wait()
		}
		if len(w.ready) == 0 {
			w.mu.Unlock()
			return
		}
		item := w.ready[0]
		w.ready[0] = nil
		w.ready = w.ready[1:]
		item.dispatched = true
		if w.tail == item {
			w.tail = nil
		}
		w.mu.Unlock()

		err := w.dev.WriteAt(item.data, item.lba)
		for _, seq := range item.seqs {
			w.journal.Complete(seq, err)
		}

		w.mu.Lock()
		w.cov.clearOwned(item)
		w.items--
		w.pending -= len(item.seqs)
		for _, d := range item.dependents {
			d.ndeps--
			if d.ndeps == 0 {
				w.ready = append(w.ready, d)
			}
		}
		if err != nil && w.applyErr == nil {
			w.applyErr = err
		}
		w.mu.Unlock()
		item.data = nil
		item.dbuf.Release()
		w.cond.Broadcast()
	}
}
