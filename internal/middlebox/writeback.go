package middlebox

import (
	"sync"

	"repro/internal/blockdev"
)

// applyParallelism bounds concurrent backend applies. The relay forwards
// journaled writes as fast as the pseudo-client connection accepts them,
// like the prototype's kernel TCP stack; overlapping writes stay ordered.
const applyParallelism = 16

// WriteBackDevice implements the active-relay acknowledgement semantics as
// a device decorator: WriteAt journals the data to the non-volatile buffer
// and returns immediately (the pseudo-server then acknowledges the source),
// while background appliers push journaled writes to the backend. Writes to
// overlapping extents apply in arrival order; disjoint writes apply in
// parallel, matching the pipelining of the split TCP connections. Reads of
// ranges with pending writes wait for those writes to land, preserving
// read-your-writes consistency. Flush drains the journal before syncing the
// backend.
type WriteBackDevice struct {
	dev     blockdev.Device
	journal *Journal

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*wbItem // not yet dispatched, in arrival order
	inflight []*wbItem // dispatched, not yet completed
	closed   bool
	applyErr error // sticky: first backend failure stops early-acking
	wg       sync.WaitGroup
}

type wbItem struct {
	seq    uint64
	lba    uint64
	blocks uint64
	data   []byte
}

func itemsOverlap(a, b *wbItem) bool {
	return a.lba < b.lba+b.blocks && b.lba < a.lba+a.blocks
}

var _ blockdev.Device = (*WriteBackDevice)(nil)

// NewWriteBack wraps dev with active-relay write-back semantics using the
// given journal.
func NewWriteBack(dev blockdev.Device, journal *Journal) *WriteBackDevice {
	w := &WriteBackDevice{dev: dev, journal: journal}
	w.cond = sync.NewCond(&w.mu)
	for i := 0; i < applyParallelism; i++ {
		w.wg.Add(1)
		go w.applyLoop()
	}
	return w
}

// Journal returns the backing journal.
func (w *WriteBackDevice) Journal() *Journal { return w.journal }

// BlockSize implements blockdev.Device.
func (w *WriteBackDevice) BlockSize() int { return w.dev.BlockSize() }

// Blocks implements blockdev.Device.
func (w *WriteBackDevice) Blocks() uint64 { return w.dev.Blocks() }

// WriteAt journals the write and returns without waiting for the backend.
// When the journal is full or a previous apply failed, it falls back to a
// synchronous write (after draining, to preserve ordering).
func (w *WriteBackDevice) WriteAt(p []byte, lba uint64) error {
	if len(p) == 0 || len(p)%w.dev.BlockSize() != 0 {
		return blockdev.ErrBadLength
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return blockdev.ErrClosed
	}
	if w.applyErr != nil {
		err := w.applyErr
		w.mu.Unlock()
		return err
	}
	w.mu.Unlock()

	// Backpressure: when the NVRAM buffer is full, wait for appliers to
	// free space rather than collapsing the pipeline with a full drain —
	// the source then sees ack latency equal to one backend drain
	// interval, exactly the split-connection flow control of the paper.
	seq, err := w.journal.Append(lba, p)
	for err != nil {
		w.mu.Lock()
		if w.closed || w.applyErr != nil {
			ferr := w.applyErr
			w.mu.Unlock()
			if ferr != nil {
				return ferr
			}
			return blockdev.ErrClosed
		}
		if len(w.queue) == 0 && len(w.inflight) == 0 {
			// Nothing in flight and still no room: the write exceeds the
			// buffer entirely; write through synchronously.
			w.mu.Unlock()
			return w.dev.WriteAt(p, lba)
		}
		w.cond.Wait()
		w.mu.Unlock()
		seq, err = w.journal.Append(lba, p)
	}
	item := &wbItem{
		seq:    seq,
		lba:    lba,
		blocks: uint64(len(p) / w.dev.BlockSize()),
		data:   p,
	}
	w.mu.Lock()
	w.queue = append(w.queue, item)
	w.mu.Unlock()
	w.cond.Broadcast()
	return nil
}

// ReadAt waits for pending writes overlapping the extent, then reads from
// the backend.
func (w *WriteBackDevice) ReadAt(p []byte, lba uint64) error {
	if len(p) == 0 || len(p)%w.dev.BlockSize() != 0 {
		return blockdev.ErrBadLength
	}
	probe := &wbItem{lba: lba, blocks: uint64(len(p) / w.dev.BlockSize())}
	w.mu.Lock()
	for w.overlapsLocked(probe) && !w.closed {
		w.cond.Wait()
	}
	closed := w.closed
	w.mu.Unlock()
	if closed {
		return blockdev.ErrClosed
	}
	return w.dev.ReadAt(p, lba)
}

// Flush drains all journaled writes and flushes the backend.
func (w *WriteBackDevice) Flush() error {
	w.drain()
	w.mu.Lock()
	err := w.applyErr
	w.mu.Unlock()
	if err != nil {
		return err
	}
	return w.dev.Flush()
}

// Close drains outstanding writes, stops the appliers, and closes the
// backend.
func (w *WriteBackDevice) Close() error {
	w.drain()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	w.cond.Broadcast()
	w.wg.Wait()
	return w.dev.Close()
}

// Pending returns the number of journaled-but-unapplied writes.
func (w *WriteBackDevice) Pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.queue) + len(w.inflight)
}

// drain blocks until every queued write has been applied.
func (w *WriteBackDevice) drain() {
	w.mu.Lock()
	for (len(w.queue) > 0 || len(w.inflight) > 0) && !w.closed {
		w.cond.Wait()
	}
	w.mu.Unlock()
}

func (w *WriteBackDevice) overlapsLocked(probe *wbItem) bool {
	for _, it := range w.inflight {
		if itemsOverlap(it, probe) {
			return true
		}
	}
	for _, it := range w.queue {
		if itemsOverlap(it, probe) {
			return true
		}
	}
	return false
}

// nextDispatchableLocked returns the index of the first queued item not
// overlapping any in-flight item or earlier queued item (which would have
// to apply first), or -1.
func (w *WriteBackDevice) nextDispatchableLocked() int {
scan:
	for i, it := range w.queue {
		for _, inf := range w.inflight {
			if itemsOverlap(it, inf) {
				continue scan
			}
		}
		for _, prev := range w.queue[:i] {
			if itemsOverlap(it, prev) {
				continue scan
			}
		}
		return i
	}
	return -1
}

// applyLoop is one of the parallel appliers.
func (w *WriteBackDevice) applyLoop() {
	defer w.wg.Done()
	for {
		w.mu.Lock()
		idx := w.nextDispatchableLocked()
		for idx < 0 && !w.closed {
			w.cond.Wait()
			idx = w.nextDispatchableLocked()
		}
		if idx < 0 && w.closed {
			w.mu.Unlock()
			return
		}
		item := w.queue[idx]
		w.queue = append(w.queue[:idx], w.queue[idx+1:]...)
		w.inflight = append(w.inflight, item)
		w.mu.Unlock()

		err := w.dev.WriteAt(item.data, item.lba)
		w.journal.Complete(item.seq, err)

		w.mu.Lock()
		for i, inf := range w.inflight {
			if inf == item {
				w.inflight = append(w.inflight[:i], w.inflight[i+1:]...)
				break
			}
		}
		if err != nil && w.applyErr == nil {
			w.applyErr = err
		}
		w.mu.Unlock()
		w.cond.Broadcast()
	}
}
