package middlebox

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/blockdev"
	"repro/internal/bufpool"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/xerr"
)

// ErrBackpressure reports a write refused because the write-back journal
// sits over its high watermark: the relay stops early-acking and pushes the
// overload to the source (SCSI BUSY on the wire) instead of absorbing it
// into unbounded ack latency. Classed xerr.Overload — retry after backoff.
var ErrBackpressure = xerr.New(xerr.Overload, "middlebox: write-back journal over high watermark")

// applyParallelism bounds concurrent backend applies. The relay forwards
// journaled writes as fast as the pseudo-client connection accepts them,
// like the prototype's kernel TCP stack; overlapping writes stay ordered.
const applyParallelism = 16

// maxCoalescedBytes is the default cap on how large an adjacent-extent merge
// may grow. 256 KiB matches the default MaxBurstLength, so a coalesced apply
// is at most one burst — the paper's "several packets per copy" batching
// without unbounded latency for the first write in the run. The relay
// overrides it with the forward leg's actually negotiated burst window
// (SetMaxCoalesce).
const maxCoalescedBytes = 256 * 1024

// RecoveryConfig arms a WriteBackDevice with a backend-reopen path: when a
// journaled apply keeps failing, the device assumes the pseudo-client session
// is lost, reopens the backend through the hook, replays the journal, and
// resumes — the split-connection consistency story of Section III-B. A zero
// Reopen hook leaves the device in legacy mode, where the first backend
// failure sticks and stops early-acking.
type RecoveryConfig struct {
	// Reopen re-establishes the backend (dial, login, rebuild the service
	// chain) and returns a fresh device.
	Reopen func() (blockdev.Device, error)
	// MaxReopens bounds reopen attempts per outage (default 4). When
	// exhausted, the device fails terminally: parked writes complete with
	// the terminal error and the journal records each as a failure.
	MaxReopens int
	// MaxApplyTries bounds in-place apply attempts per item before the
	// backend is declared lost (default 2).
	MaxApplyTries int
	// BackoffBase/BackoffCap shape the reopen backoff (defaults 2ms/100ms).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Seed makes the backoff jitter deterministic.
	Seed int64
}

// WriteBackDevice implements the active-relay acknowledgement semantics as
// a device decorator: WriteAt journals the data to the non-volatile buffer
// and returns immediately (the pseudo-server then acknowledges the source),
// while background appliers push journaled writes to the backend. Writes to
// overlapping extents apply in arrival order; disjoint writes apply in
// parallel, matching the pipelining of the split TCP connections. Reads of
// ranges with pending writes wait for those writes to land, preserving
// read-your-writes consistency. Flush drains the journal before syncing the
// backend.
//
// Pending writes are indexed by a last-writer coverage map (see coverage):
// admission replaces the new extent's owners in one sorted-range splice and
// takes ordering edges only on those owners, so the dependency graph stays
// linear in the number of writes — the former implementation re-scanned the
// whole queue per dispatch, O(n²) with queue depth. When a write's dependency
// count reaches zero it moves to a ready FIFO the appliers drain. Small
// writes exactly adjacent to the undispatched tail write coalesce into one
// backend apply (see maxCoalescedBytes).
//
// With a RecoveryConfig, a backend loss parks the pipeline instead of
// sticking: new writes keep early-acking into the journal (the NVRAM absorbs
// the outage), a recovery goroutine reopens the backend and replays failed
// entries in sequence order, and the parked items then drain against the new
// device — their dependency edges already order them after every overlapping
// replayed write.
type WriteBackDevice struct {
	dev         blockdev.Device // current backend; swapped during recovery (under mu)
	bs          int             // backend geometry, fixed across reopens
	nblocks     uint64
	journal     Journal
	rec         RecoveryConfig
	maxTries    int
	backoff     *faults.Backoff
	maxCoalesce int // adjacent-merge cap in bytes (one wire burst)

	// Admission watermarks (0 = disabled): once journal usage reaches
	// wmHigh bytes, WriteAt refuses with ErrBackpressure until the appliers
	// drain usage back to wmLow (hysteresis, so the latch doesn't flap at
	// the boundary). Guarded by mu.
	wmHigh     int
	wmLow      int
	bpEngaged  bool
	gBP        *obs.Gauge
	mBPRejects *obs.Counter

	mu       sync.Mutex
	cond     *sync.Cond
	cov      coverage
	ready    []*wbItem // ndeps==0, not yet dispatched, FIFO
	tail     *wbItem   // most recently admitted undispatched item, if any
	items    int       // pending applies (admitted, not yet completed)
	inflight int       // dispatched applies not yet completed
	pending  int       // journaled writes not yet applied (≥ items with coalescing)
	closed   bool
	degraded bool  // backend lost; appliers parked, recovery running
	applyErr error // legacy: sticky first failure; recovery: terminal error
	wg       sync.WaitGroup
	recWG    sync.WaitGroup
}

// wbItem is one pending backend apply: the extent [lba, end) in blocks, the
// data to forward, and the journal seqs it carries (several after
// coalescing). data normally aliases the journal entry's stable copy (dbuf
// nil — the journal keeps the bytes alive until Complete); coalescing
// upgrades the item to its own pooled buffer (dbuf non-nil) because an
// aliased entry cannot grow.
type wbItem struct {
	lba, end uint64
	seqs     []uint64
	data     []byte
	dbuf     *bufpool.Buf

	ndeps      int       // block owners this write must apply after
	dependents []*wbItem // later writes waiting on this one
	dispatched bool

	// tctx is the admitting command's span context: the async backend apply
	// re-binds it so the forward leg's spans stay causally linked to the
	// command that early-acked. Coalesced items keep the first admitter's.
	tctx obs.SpanContext
}

// appendData grows the item's storage with p: an item still aliasing its
// journal entry upgrades to an owned pooled buffer first (the alias cannot
// grow), an owned buffer extends in place while its pool class has capacity.
func (it *wbItem) appendData(p []byte) {
	need := len(it.data) + len(p)
	if it.dbuf != nil && need <= cap(it.dbuf.B) {
		it.dbuf.B = it.dbuf.B[:need]
		copy(it.dbuf.B[need-len(p):], p)
		it.data = it.dbuf.B
		return
	}
	nb := bufpool.Get(need)
	copy(nb.B, it.data)
	copy(nb.B[len(it.data):], p)
	if it.dbuf != nil {
		it.dbuf.Release()
	}
	it.dbuf = nb
	it.data = nb.B
}

// release drops the item's data reference, returning owned storage to the
// pool (aliased journal storage is the journal's to reclaim on Complete).
func (it *wbItem) release() {
	it.data = nil
	if it.dbuf != nil {
		it.dbuf.Release()
		it.dbuf = nil
	}
}

var _ blockdev.Device = (*WriteBackDevice)(nil)

// NewWriteBack wraps dev with active-relay write-back semantics using the
// given journal. Without a recovery path, the first backend failure sticks.
func NewWriteBack(dev blockdev.Device, journal Journal) *WriteBackDevice {
	return NewWriteBackRecovering(dev, journal, RecoveryConfig{})
}

// NewWriteBackRecovering wraps dev like NewWriteBack and arms the recovery
// path when rc.Reopen is non-nil.
func NewWriteBackRecovering(dev blockdev.Device, journal Journal, rc RecoveryConfig) *WriteBackDevice {
	if rc.MaxReopens <= 0 {
		rc.MaxReopens = 4
	}
	if rc.MaxApplyTries <= 0 {
		rc.MaxApplyTries = 2
	}
	if rc.BackoffBase <= 0 {
		rc.BackoffBase = 2 * time.Millisecond
	}
	if rc.BackoffCap <= 0 {
		rc.BackoffCap = 100 * time.Millisecond
	}
	w := &WriteBackDevice{dev: dev, bs: dev.BlockSize(), nblocks: dev.Blocks(), journal: journal, rec: rc, maxTries: 1, maxCoalesce: maxCoalescedBytes}
	if rc.Reopen != nil {
		w.maxTries = rc.MaxApplyTries
		w.backoff = faults.NewBackoff(rc.BackoffBase, rc.BackoffCap, rc.Seed)
	}
	w.cond = sync.NewCond(&w.mu)
	for i := 0; i < applyParallelism; i++ {
		w.wg.Add(1)
		go w.applyLoop()
	}
	return w
}

// Journal returns the backing journal.
func (w *WriteBackDevice) Journal() Journal { return w.journal }

// SetMaxCoalesce caps adjacent-write coalescing at n bytes — the relay sets
// it to the forward leg's negotiated MaxBurstLength so one merged apply is at
// most one solicited burst. Non-positive n keeps the current cap. Call before
// the device carries traffic.
func (w *WriteBackDevice) SetMaxCoalesce(n int) {
	if n > 0 {
		w.mu.Lock()
		w.maxCoalesce = n
		w.mu.Unlock()
	}
}

// SetBackpressure arms journal admission control: writes are refused with
// ErrBackpressure while journaled-but-unapplied bytes sit at or above high,
// and admission resumes once the appliers drain usage to low (low defaults
// to high/2 when non-positive or not below high). gauge (1 while engaged)
// and rejects are optional observability hooks. Call before the device
// carries traffic.
func (w *WriteBackDevice) SetBackpressure(high, low int, gauge *obs.Gauge, rejects *obs.Counter) {
	if high <= 0 {
		return
	}
	if low <= 0 || low >= high {
		low = high / 2
	}
	w.mu.Lock()
	w.wmHigh, w.wmLow = high, low
	w.gBP, w.mBPRejects = gauge, rejects
	w.mu.Unlock()
}

// admitLocked runs the watermark hysteresis against current journal usage.
// Caller holds w.mu. It returns false when the write must be refused.
func (w *WriteBackDevice) admitLocked() bool {
	if w.wmHigh <= 0 {
		return true
	}
	used := w.journal.UsedBytes()
	switch {
	case w.bpEngaged && used > w.wmLow:
		w.mBPRejects.Inc()
		return false
	case w.bpEngaged:
		w.bpEngaged = false
		w.gBP.Set(0)
		obs.Default().Eventf("writeback", "backpressure released: journal drained to %d bytes (low watermark %d)", used, w.wmLow)
	case used >= w.wmHigh:
		w.bpEngaged = true
		w.gBP.Set(1)
		w.mBPRejects.Inc()
		obs.Default().Eventf("writeback", "backpressure engaged: journal at %d bytes (high watermark %d)", used, w.wmHigh)
		return false
	}
	return true
}

// BlockSize implements blockdev.Device.
func (w *WriteBackDevice) BlockSize() int { return w.bs }

// Blocks implements blockdev.Device.
func (w *WriteBackDevice) Blocks() uint64 { return w.nblocks }

// WriteAt journals the write and returns without waiting for the backend.
// The data is copied into pooled owned storage before return, so the caller
// may reuse p immediately (the blockdev.Device contract). When the journal
// is full it falls back to a synchronous write (after draining, to preserve
// ordering) — except while the backend is down, when it waits for recovery
// instead (the journal is the only safe place for the data).
func (w *WriteBackDevice) WriteAt(p []byte, lba uint64) error {
	bs := w.bs
	if len(p) == 0 || len(p)%bs != 0 {
		return blockdev.ErrBadLength
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return blockdev.ErrClosed
	}
	if w.applyErr != nil {
		err := w.applyErr
		w.mu.Unlock()
		return err
	}
	if !w.admitLocked() {
		w.mu.Unlock()
		return fmt.Errorf("%w (usage %d bytes)", ErrBackpressure, w.journal.UsedBytes())
	}
	w.mu.Unlock()

	// Backpressure: when the NVRAM buffer is full, wait for appliers to
	// free space rather than collapsing the pipeline with a full drain —
	// the source then sees ack latency equal to one backend drain
	// interval, exactly the split-connection flow control of the paper.
	seq, stable, err := w.journal.Append(lba, p)
	for err != nil {
		w.mu.Lock()
		if w.closed || w.applyErr != nil {
			ferr := w.applyErr
			w.mu.Unlock()
			if ferr != nil {
				return ferr
			}
			return blockdev.ErrClosed
		}
		if w.items == 0 && !w.degraded {
			// Nothing in flight and still no room: the write exceeds the
			// buffer entirely; write through synchronously.
			dev := w.dev
			w.mu.Unlock()
			return dev.WriteAt(p, lba)
		}
		w.cond.Wait()
		w.mu.Unlock()
		seq, stable, err = w.journal.Append(lba, p)
	}

	end := lba + uint64(len(p)/bs)
	w.mu.Lock()
	// Coalesce: append to the undispatched tail when the new extent starts
	// exactly where the tail ends, the merge stays within one burst, and
	// the new extent conflicts with nothing pending (so applying it with
	// the tail — possibly before writes admitted in between — cannot
	// reorder overlapping data).
	if t := w.tail; t != nil && !t.dispatched && t.end == lba &&
		len(t.data)+len(p) <= w.maxCoalesce && !w.cov.overlaps(lba, end) {
		t.appendData(p)
		t.seqs = append(t.seqs, seq)
		w.cov.paint(lba, end, t)
		t.end = end
		w.pending++
		w.mu.Unlock()
		return nil
	}

	// The item forwards straight out of the journal's stable copy — the
	// single copy Append already made is the only one on the early-ack
	// path. The journal keeps those bytes alive until Complete, which the
	// applier only calls after the backend write.
	item := &wbItem{lba: lba, end: end, seqs: []uint64{seq}, data: stable}
	if tc, ok := obs.Current(); ok {
		item.tctx = tc
	}
	// Arrival-order for conflicts: wait for the current last writer of every
	// block in the extent. Older overlapping writes are ordered before those
	// owners block by block, so transitivity orders them before this write
	// too — no edge needed.
	for _, o := range w.cov.paint(lba, end, item) {
		item.ndeps++
		o.dependents = append(o.dependents, item)
	}
	w.items++
	w.pending++
	w.tail = item
	if item.ndeps == 0 {
		w.ready = append(w.ready, item)
	}
	w.mu.Unlock()
	w.cond.Broadcast()
	return nil
}

// ReadAt waits for pending writes overlapping the extent (and for any
// backend recovery in progress), then reads from the backend.
func (w *WriteBackDevice) ReadAt(p []byte, lba uint64) error {
	if len(p) == 0 || len(p)%w.bs != 0 {
		return blockdev.ErrBadLength
	}
	end := lba + uint64(len(p)/w.bs)
	w.mu.Lock()
	for (w.cov.overlaps(lba, end) || w.degraded) && !w.closed {
		w.cond.Wait()
	}
	closed := w.closed
	dev := w.dev
	w.mu.Unlock()
	if closed {
		return blockdev.ErrClosed
	}
	return dev.ReadAt(p, lba)
}

// Flush drains all journaled writes and flushes the backend.
func (w *WriteBackDevice) Flush() error {
	w.drain()
	w.mu.Lock()
	err := w.applyErr
	dev := w.dev
	w.mu.Unlock()
	if err != nil {
		return err
	}
	return dev.Flush()
}

// Close drains outstanding writes, stops the appliers, and closes the
// backend.
func (w *WriteBackDevice) Close() error {
	w.drain()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	w.cond.Broadcast()
	w.wg.Wait()
	w.recWG.Wait()
	w.mu.Lock()
	dev := w.dev
	w.mu.Unlock()
	return dev.Close()
}

// Kill simulates the middle-box process dying mid-flight: the journal
// freezes first (no write acked or marked applied after this instant — the
// durability cut line recovery reasons from), then the appliers stop
// without draining and the backend session drops. Writes the appliers had
// already issued may still land on the backend; replaying their journal
// records is idempotent, so that race is harmless.
func (w *WriteBackDevice) Kill() {
	w.journal.Kill()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()
	w.cond.Broadcast()
	w.wg.Wait()
	w.recWG.Wait()
	w.mu.Lock()
	dev := w.dev
	w.mu.Unlock()
	_ = dev.Close()
}

// Pending returns the number of journaled-but-unapplied writes. Coalesced
// writes count individually until their merged apply lands.
func (w *WriteBackDevice) Pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.pending
}

// Degraded reports whether the device is currently riding out a backend
// outage on the journal.
func (w *WriteBackDevice) Degraded() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.degraded
}

// drain blocks until every pending write has been applied and any backend
// recovery has settled (swapped in a new device or turned terminal) — all
// dispatched items can complete as failed while the reopen is still in
// flight, so items alone is not the full picture.
func (w *WriteBackDevice) drain() {
	w.mu.Lock()
	for (w.items > 0 || w.degraded) && !w.closed {
		w.cond.Wait()
	}
	w.mu.Unlock()
}

// applyLoop is one of the parallel appliers: it pops ready items, writes
// them to the backend, and unblocks their dependents. While the device is
// degraded the appliers park; ready items wait for the recovered backend.
func (w *WriteBackDevice) applyLoop() {
	defer w.wg.Done()
	for {
		w.mu.Lock()
		for (len(w.ready) == 0 || w.degraded) && !w.closed {
			w.cond.Wait()
		}
		if w.closed {
			w.mu.Unlock()
			return
		}
		item := w.ready[0]
		w.ready[0] = nil
		w.ready = w.ready[1:]
		item.dispatched = true
		if w.tail == item {
			w.tail = nil
		}
		w.inflight++
		dev := w.dev
		w.mu.Unlock()

		// Re-bind the admitting command's trace context: the forward leg runs
		// after the early ack, on an applier goroutine, but its spans should
		// parent under the command's service span.
		prev, had := obs.Bind(item.tctx)
		err := dev.WriteAt(item.data, item.lba)
		for try := 1; err != nil && try < w.maxTries; try++ {
			err = dev.WriteAt(item.data, item.lba)
		}
		obs.Restore(prev, had)
		for _, seq := range item.seqs {
			w.journal.Complete(seq, err)
		}

		w.mu.Lock()
		w.cov.clearOwned(item)
		w.items--
		w.inflight--
		w.pending -= len(item.seqs)
		for _, d := range item.dependents {
			d.ndeps--
			if d.ndeps == 0 {
				w.ready = append(w.ready, d)
			}
		}
		if err != nil {
			if w.rec.Reopen == nil {
				if w.applyErr == nil {
					w.applyErr = err
				}
			} else if !w.degraded && w.applyErr == nil && !w.closed {
				// Backend declared lost: park the pipeline and recover.
				w.degraded = true
				w.recWG.Add(1)
				go w.recoverBackend()
			}
		}
		w.mu.Unlock()
		item.release()
		w.cond.Broadcast()
	}
}

// recoverBackend runs once per outage: it waits for in-flight applies to
// settle (so the journal is the complete picture of unapplied data), reopens
// the backend with capped backoff, replays failed entries in sequence order,
// and swaps the new device in. On exhaustion it fails the parked pipeline
// terminally.
func (w *WriteBackDevice) recoverBackend() {
	defer w.recWG.Done()
	w.mu.Lock()
	for w.inflight > 0 && !w.closed {
		w.cond.Wait()
	}
	if w.closed {
		w.mu.Unlock()
		return
	}
	old := w.dev
	w.mu.Unlock()
	_ = old.Close() // dead session; release its goroutines

	var lastErr error
	for attempt := 0; attempt < w.rec.MaxReopens; attempt++ {
		if attempt > 0 {
			time.Sleep(w.backoff.Delay(attempt - 1))
		}
		dev, err := w.rec.Reopen()
		if err != nil {
			lastErr = err
			continue
		}
		if err := w.replay(dev); err != nil {
			lastErr = err
			_ = dev.Close()
			continue
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			_ = dev.Close()
			return
		}
		w.dev = dev
		w.degraded = false
		w.mu.Unlock()
		w.cond.Broadcast()
		obs.Default().Eventf("writeback", "backend recovered after %d reopen attempt(s); journal replayed", attempt+1)
		return
	}

	terr := fmt.Errorf("middlebox: backend recovery failed after %d attempts: %w", w.rec.MaxReopens, lastErr)
	obs.Default().Eventf("writeback", "%v", terr)
	w.mu.Lock()
	if w.applyErr == nil {
		w.applyErr = terr
	}
	w.failParked(terr)
	w.degraded = false
	w.mu.Unlock()
	w.cond.Broadcast()
}

// replay pushes every StateFailed journal entry to dev in sequence order and
// reclaims its bytes by re-completing it. StateAcked entries stay journaled:
// they belong to parked items the appliers re-dispatch after the swap, and
// the dependency graph already orders them after every overlapping failed
// write (an item only dispatches once its overlapping predecessors applied,
// so a failed entry is always older than a parked one on the same blocks).
func (w *WriteBackDevice) replay(dev blockdev.Device) error {
	for _, e := range w.journal.Unapplied() {
		if e.State != StateFailed {
			continue
		}
		if err := dev.WriteAt(e.Data, e.LBA); err != nil {
			return fmt.Errorf("middlebox: replay seq %d (lba %d): %w", e.Seq, e.LBA, err)
		}
		w.journal.Complete(e.Seq, nil) // reclaims the failed entry's bytes
	}
	return nil
}

// failParked completes every undispatched item with err after recovery is
// exhausted, so drains terminate and the journal records each early-acked
// write that never reached the backend. Caller holds w.mu; inflight is zero.
func (w *WriteBackDevice) failParked(err error) {
	queue := append([]*wbItem(nil), w.ready...)
	seen := make(map[*wbItem]bool, len(queue))
	for _, it := range queue {
		seen[it] = true
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		for _, d := range it.dependents {
			if !seen[d] {
				seen[d] = true
				queue = append(queue, d)
			}
		}
		for _, seq := range it.seqs {
			w.journal.Complete(seq, err)
		}
		w.cov.clearOwned(it)
		w.items--
		w.pending -= len(it.seqs)
		it.release()
	}
	w.ready = w.ready[:0]
	w.tail = nil
}
