package middlebox

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/wal"
)

// TestPendingCounterMatchesScan drives a randomized append/complete/fail/
// replay workload and asserts after every step that the O(1) pending
// counter agrees with a full scan of the entry map.
func TestPendingCounterMatchesScan(t *testing.T) {
	j := NewJournal(0)
	rng := rand.New(rand.NewSource(7))
	var acked, failed []uint64
	applyErr := errors.New("backend down")
	for step := 0; step < 2000; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // append
			seq, _, err := j.Append(uint64(rng.Intn(1024))*8, []byte("pending-counter"))
			if err != nil {
				t.Fatalf("step %d: Append: %v", step, err)
			}
			acked = append(acked, seq)
		case op < 7 && len(acked) > 0: // complete success
			i := rng.Intn(len(acked))
			j.Complete(acked[i], nil)
			acked = append(acked[:i], acked[i+1:]...)
		case op < 9 && len(acked) > 0: // complete failure
			i := rng.Intn(len(acked))
			j.Complete(acked[i], applyErr)
			failed = append(failed, acked[i])
			acked = append(acked[:i], acked[i+1:]...)
		case len(failed) > 0: // replay a failed entry to success
			i := rng.Intn(len(failed))
			j.Complete(failed[i], nil)
			failed = append(failed[:i], failed[i+1:]...)
		}
		if got, want := j.Pending(), j.pendingScan(); got != want {
			t.Fatalf("step %d: Pending() = %d, scan = %d", step, got, want)
		}
		if want := len(acked); j.Pending() != want {
			t.Fatalf("step %d: Pending() = %d, model says %d", step, j.Pending(), want)
		}
	}
	// Double-completes and completes of unknown seqs must not skew the counter.
	j.Complete(999999, nil)
	j.Complete(999999, applyErr)
	for _, seq := range acked {
		j.Complete(seq, nil)
		j.Complete(seq, nil)
	}
	for _, seq := range failed {
		j.Complete(seq, nil)
	}
	if got, want := j.Pending(), j.pendingScan(); got != 0 || want != 0 {
		t.Fatalf("drained journal: Pending() = %d, scan = %d, want 0", got, want)
	}
}

// TestFailuresWindowBounded exercises the capped first/last failure ring:
// a long outage must not grow memory without limit, the earliest and the
// most recent failures must both survive, and the dropped count must make
// the arithmetic add up.
func TestFailuresWindowBounded(t *testing.T) {
	j := NewJournal(0)
	const total = 500
	for i := 0; i < total; i++ {
		seq, _, err := j.Append(uint64(i)*8, []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		j.Complete(seq, fmt.Errorf("outage failure #%d", i))
	}
	fails := j.Failures()
	if len(fails) > maxFailures {
		t.Fatalf("Failures() returned %d errors, cap is %d", len(fails), maxFailures)
	}
	if got, want := j.FailuresDropped(), total-maxFailures; got != want {
		t.Fatalf("FailuresDropped() = %d, want %d", got, want)
	}
	// Window shape: oldest failures first, newest failures last.
	if !strings.Contains(fails[0].Error(), "failure #0") {
		t.Errorf("first failure lost: %v", fails[0])
	}
	if !strings.Contains(fails[len(fails)-1].Error(), fmt.Sprintf("failure #%d", total-1)) {
		t.Errorf("latest failure lost: %v", fails[len(fails)-1])
	}
	// The recent half must be the contiguous most-recent failures in order.
	for i, f := range fails[maxFailures/2:] {
		want := fmt.Sprintf("failure #%d", total-maxFailures/2+i)
		if !strings.Contains(f.Error(), want) {
			t.Fatalf("recent window[%d] = %v, want %s", i, f, want)
		}
	}
}

// TestFailuresUnderCapKeepsAll verifies no dropping below the cap.
func TestFailuresUnderCapKeepsAll(t *testing.T) {
	j := NewJournal(0)
	for i := 0; i < maxFailures; i++ {
		seq, _, err := j.Append(uint64(i)*8, []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		j.Complete(seq, fmt.Errorf("failure #%d", i))
	}
	if got := len(j.Failures()); got != maxFailures {
		t.Fatalf("Failures() = %d errors, want all %d", got, maxFailures)
	}
	if got := j.FailuresDropped(); got != 0 {
		t.Fatalf("FailuresDropped() = %d below cap, want 0", got)
	}
}

// TestDurableJournalContract runs the durable implementation through the
// same lifecycle MemJournal covers and checks crash-visible state: appends
// survive a Kill and reopen; a clean Close deletes the WAL.
func TestDurableJournalContract(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	j, err := NewDurableJournal(dir, wal.Meta{Attrs: map[string]string{"iqn": "iqn.test:v"}}, 0, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1, _, err := j.Append(0, []byte("first"))
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := j.Append(512, []byte("second"))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := j.Pending(), 2; got != want {
		t.Fatalf("Pending = %d, want %d", got, want)
	}
	j.Complete(s1, nil)
	if got := j.Pending(); got != 1 {
		t.Fatalf("Pending after complete = %d, want 1", got)
	}
	if got := j.UsedBytes(); got != len("second") {
		t.Fatalf("UsedBytes = %d, want %d", got, len("second"))
	}
	un := j.Unapplied()
	if len(un) != 1 || un[0].Seq != s2 || string(un[0].Data) != "second" {
		t.Fatalf("Unapplied = %+v, want just seq %d", un, s2)
	}
	j.Kill()
	if _, _, err := j.Append(1024, []byte("dead")); !errors.Is(err, ErrJournalClosed) {
		t.Fatalf("Append after Kill: %v, want ErrJournalClosed", err)
	}

	// The WAL must hold exactly the uncommitted write.
	_, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("Open killed journal's WAL: %v", err)
	}
	if len(rec.Records) != 1 || rec.Records[0].Seq != s2 || string(rec.Records[0].Data) != "second" {
		t.Fatalf("WAL recovery = %+v, want the single unapplied write", rec.Records)
	}
	if rec.Meta.Attrs["iqn"] != "iqn.test:v" {
		t.Fatalf("meta lost: %+v", rec.Meta)
	}
}

func TestDurableJournalCleanCloseRemovesWAL(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	j, err := NewDurableJournal(dir, wal.Meta{}, 0, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq, _, err := j.Append(0, []byte("applied"))
	if err != nil {
		t.Fatal(err)
	}
	j.Complete(seq, nil)
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, _, err := wal.Open(dir, wal.Options{}); err == nil {
		t.Fatalf("clean Close left the WAL behind")
	}
}

func TestDurableJournalCapacityBackpressure(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	j, err := NewDurableJournal(dir, wal.Meta{}, 8, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	seq, _, err := j.Append(0, []byte("12345678"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := j.Append(8, []byte("x")); !errors.Is(err, ErrJournalFull) {
		t.Fatalf("over-capacity append: %v, want ErrJournalFull", err)
	}
	j.Complete(seq, nil)
	if _, _, err := j.Append(8, []byte("x")); err != nil {
		t.Fatalf("append after space freed: %v", err)
	}
}
