package splice

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/initiator"
	"repro/internal/netsim"
	"repro/internal/sdn"
	"repro/internal/target"
	"repro/internal/vswitch"
)

const volIQN = "iqn.2016-04.edu.purdue.storm:vol1"

// testbed is the Figure 1 topology: compute host (VM), gateway host,
// middle-box host, storage host.
type testbed struct {
	fabric  *netsim.Fabric
	plane   *Plane
	vm      *netsim.Endpoint
	gwHost  *netsim.Host
	mbHost  *netsim.Host
	stHost  *netsim.Host
	srv     *target.Server
	dev     *blockdev.MemDisk
	targets netsim.Addr
}

func newTestbed(t *testing.T) *testbed {
	t.Helper()
	model := netsim.Model{
		MTU:       8 * 1024,
		Bandwidth: 1 << 32,
		Latency:   map[netsim.HopKind]time.Duration{},
		PerPacket: map[netsim.HopKind]time.Duration{},
	}
	fabric := netsim.NewFabric(model)
	compute, err := fabric.AddHost("compute1", map[netsim.Network]string{
		netsim.StorageNet: "10.0.0.1", netsim.InstanceNet: "192.168.0.1",
	})
	if err != nil {
		t.Fatal(err)
	}
	gwHost, err := fabric.AddHost("gw1", map[netsim.Network]string{
		netsim.StorageNet: "10.0.0.2", netsim.InstanceNet: "192.168.0.2",
	})
	if err != nil {
		t.Fatal(err)
	}
	mbHost, err := fabric.AddHost("mbhost1", map[netsim.Network]string{
		netsim.StorageNet: "10.0.0.3", netsim.InstanceNet: "192.168.0.3",
	})
	if err != nil {
		t.Fatal(err)
	}
	stHost, err := fabric.AddHost("storage1", map[netsim.Network]string{
		netsim.StorageNet: "10.0.0.100",
	})
	if err != nil {
		t.Fatal(err)
	}

	plane := NewPlane(fabric, sdn.NewController())

	vm, err := compute.NewGuest("vm1", "192.168.10.5")
	if err != nil {
		t.Fatal(err)
	}

	dev, err := blockdev.NewMemDisk(512, 4096)
	if err != nil {
		t.Fatal(err)
	}
	srv := target.NewServer(target.WithLoginHook(func(info target.LoginInfo) {
		plane.Attributions().RecordLogin(info.TargetIQN, info.SourcePort)
	}))
	if err := srv.AddTarget(volIQN, dev); err != nil {
		t.Fatal(err)
	}
	tgtEP := stHost.NewEndpoint("tgtd")
	ln, err := tgtEP.Listen(netsim.StorageNet, 3260)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)

	return &testbed{
		fabric: fabric, plane: plane, vm: vm,
		gwHost: gwHost, mbHost: mbHost, stHost: stHost,
		srv: srv, dev: dev,
		targets: netsim.Addr{Net: netsim.StorageNet, IP: "10.0.0.100", Port: 3260},
	}
}

func (tb *testbed) deployment(chain ...sdn.MBSpec) *Deployment {
	return &Deployment{
		ID:        "tenantA/vol1",
		VM:        "vm1",
		VMHost:    "compute1",
		VolumeIQN: volIQN,
		TargetAddr: netsim.Addr{
			Net: netsim.StorageNet, IP: "10.0.0.100", Port: 3260,
		},
		Ingress: GatewaySpec{Name: "gw-in", Host: "gw1", InstanceIP: "192.168.0.10"},
		Egress:  GatewaySpec{Name: "gw-out", Host: "gw1", InstanceIP: "192.168.0.11"},
		Chain:   chain,
	}
}

// attach logs a session in through the plane's atomic attachment.
func (tb *testbed) attach(t *testing.T, d *Deployment) *initiator.Session {
	t.Helper()
	var sess *initiator.Session
	err := tb.plane.AtomicAttach(d, func() error {
		conn, err := tb.vm.DialAddr(d.TargetAddr)
		if err != nil {
			return err
		}
		s, err := initiator.Login(conn, initiator.Config{
			InitiatorIQN: "iqn.2016-04.edu.purdue.storm:vm1",
			TargetIQN:    volIQN,
			AttachedVM:   "vm1",
		})
		if err != nil {
			return err
		}
		sess = s
		return nil
	})
	if err != nil {
		t.Fatalf("AtomicAttach: %v", err)
	}
	t.Cleanup(func() { _ = sess.Close() })
	tb.plane.Attributions().RecordAttachment(d.VM, d.VolumeIQN)
	return sess
}

func TestLegacyDirectPath(t *testing.T) {
	tb := newTestbed(t)
	// Without any deployment/capture rule, the VM talks straight to the
	// target over the storage network.
	conn, err := tb.vm.DialAddr(tb.targets)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	sess, err := initiator.Login(conn, initiator.Config{
		InitiatorIQN: "iqn.x", TargetIQN: volIQN,
	})
	if err != nil {
		t.Fatalf("Login: %v", err)
	}
	defer sess.Close()
	want := bytes.Repeat([]byte{7}, 1024)
	if err := sess.Write(0, want, 512); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := sess.Read(0, 2, 512)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("legacy path corrupted data")
	}
	// Direct route must not traverse the gateway host.
	for _, h := range conn.Route().Hops {
		if h.Host == "gw1" || h.Host == "mbhost1" {
			t.Errorf("legacy route crosses %s", h.Host)
		}
	}
}

func TestSplicedPathThroughForwardMB(t *testing.T) {
	tb := newTestbed(t)
	d := tb.deployment(sdn.MBSpec{Name: "mb1", Host: "mbhost1", Mode: vswitch.ModeForward})
	if err := tb.plane.Deploy(d); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	sess := tb.attach(t, d)

	want := bytes.Repeat([]byte{0xEE}, 2048)
	if err := sess.Write(16, want, 512); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := sess.Read(16, 4, 512)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("spliced path corrupted data")
	}

	// The route must traverse gateway and middle-box hosts.
	route := sess.Conn().(*netsim.Conn).Route()
	seen := map[string]bool{}
	var forwardHops int
	for _, h := range route.Hops {
		seen[h.Host] = true
		if h.Kind == netsim.HopForward {
			forwardHops++
		}
	}
	if !seen["gw1"] || !seen["mbhost1"] {
		t.Errorf("route misses gateway or MB host: %+v", route.Hops)
	}
	// Ingress gateway + MB kernel forward + egress gateway.
	if forwardHops < 3 {
		t.Errorf("route has %d forward hops, want >= 3", forwardHops)
	}
	// The target must see the egress gateway's storage IP as the source.
	if route.SrcAsSeen.IP != "10.0.0.2" {
		t.Errorf("SrcAsSeen = %v, want egress host storage IP", route.SrcAsSeen)
	}
}

func TestAttributionAssembled(t *testing.T) {
	tb := newTestbed(t)
	d := tb.deployment()
	if err := tb.plane.Deploy(d); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	sess := tb.attach(t, d)
	defer sess.Close()
	b, ok := tb.plane.Attributions().ByIQN(volIQN)
	if !ok {
		t.Fatal("no attribution for volume IQN")
	}
	if b.VM != "vm1" {
		t.Errorf("binding VM = %q, want vm1", b.VM)
	}
	if b.SourcePort == 0 {
		t.Fatal("login did not expose the source port")
	}
	if !b.Complete() {
		t.Error("binding incomplete")
	}
	byPort, ok := tb.plane.Attributions().ByPort(b.SourcePort)
	if !ok || byPort.VM != "vm1" {
		t.Errorf("ByPort(%d) = %+v, %v", b.SourcePort, byPort, ok)
	}
}

func TestCaptureRuleRemovedAfterAttach(t *testing.T) {
	tb := newTestbed(t)
	d := tb.deployment()
	if err := tb.plane.Deploy(d); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	sess := tb.attach(t, d)
	defer sess.Close()
	if n := tb.plane.HostNAT("compute1").Len(); n != 0 {
		t.Errorf("%d NAT rules remain after attach, want 0", n)
	}
	// A new dial now takes the legacy path (no capture).
	conn, err := tb.vm.DialAddr(tb.targets)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	for _, h := range conn.Route().Hops {
		if h.Host == "gw1" {
			t.Error("post-attach dial still routed through the gateway")
		}
	}
	// The established session keeps working through its spliced route.
	if err := sess.Ping(); err != nil {
		t.Errorf("established session broken after rule removal: %v", err)
	}
}

func TestIsolationBlocksTenantDialsToGateways(t *testing.T) {
	tb := newTestbed(t)
	d := tb.deployment()
	if err := tb.plane.Deploy(d); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	_, err := tb.vm.Dial(netsim.InstanceNet, "192.168.0.10:3260")
	if !errors.Is(err, ErrIsolated) {
		t.Errorf("dial to ingress gateway: err = %v, want ErrIsolated", err)
	}
	_, err = tb.vm.Dial(netsim.InstanceNet, "192.168.0.11:3260")
	if !errors.Is(err, ErrIsolated) {
		t.Errorf("dial to egress gateway: err = %v, want ErrIsolated", err)
	}
}

func TestIsolationBlocksTenantDialsToMBs(t *testing.T) {
	tb := newTestbed(t)
	if err := tb.plane.RegisterMB(MBInfo{Name: "mb1", Host: "mbhost1", InstanceIP: "192.168.0.50"}); err != nil {
		t.Fatalf("RegisterMB: %v", err)
	}
	if _, err := tb.vm.Dial(netsim.InstanceNet, "192.168.0.50:13260"); !errors.Is(err, ErrIsolated) {
		t.Errorf("dial to MB: err = %v, want ErrIsolated", err)
	}
}

func TestUndeployRestoresLegacyRouting(t *testing.T) {
	tb := newTestbed(t)
	d := tb.deployment(sdn.MBSpec{Name: "mb1", Host: "mbhost1", Mode: vswitch.ModeForward})
	if err := tb.plane.Deploy(d); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	tb.plane.Undeploy(d.ID)
	if tb.plane.Deployment(d.ID) != nil {
		t.Error("deployment still present after Undeploy")
	}
	// The gateway IPs are unprotected again.
	if tb.plane.isProtected("192.168.0.10") {
		t.Error("ingress IP still protected after Undeploy")
	}
}

func TestDeployValidation(t *testing.T) {
	tb := newTestbed(t)
	bad := tb.deployment()
	bad.ID = ""
	if err := tb.plane.Deploy(bad); err == nil {
		t.Error("missing ID: want error")
	}
	bad = tb.deployment()
	bad.Ingress.InstanceIP = ""
	if err := tb.plane.Deploy(bad); err == nil {
		t.Error("missing gateway IP: want error")
	}
	bad = tb.deployment()
	bad.TargetAddr = netsim.Addr{}
	if err := tb.plane.Deploy(bad); err == nil {
		t.Error("missing target: want error")
	}
	// Duplicate deployment and gateway IP conflicts.
	good := tb.deployment()
	if err := tb.plane.Deploy(good); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	if err := tb.plane.Deploy(tb.deployment()); err == nil {
		t.Error("duplicate ID: want error")
	}
	conflict := tb.deployment()
	conflict.ID = "other"
	if err := tb.plane.Deploy(conflict); err == nil {
		t.Error("conflicting gateway IPs: want error")
	}
}

func TestConcurrentAttachDifferentVolumes(t *testing.T) {
	// Two volumes on the same compute host attach concurrently; the atomic
	// attach serializes the capture windows so each flow lands on its own
	// deployment's gateways.
	tb := newTestbed(t)
	dev2, err := blockdev.NewMemDisk(512, 1024)
	if err != nil {
		t.Fatal(err)
	}
	const vol2IQN = "iqn.2016-04.edu.purdue.storm:vol2"
	if err := tb.srv.AddTarget(vol2IQN, dev2); err != nil {
		t.Fatal(err)
	}

	d1 := tb.deployment()
	d2 := tb.deployment()
	d2.ID = "tenantA/vol2"
	d2.VolumeIQN = vol2IQN
	d2.Ingress = GatewaySpec{Name: "gw-in2", Host: "gw1", InstanceIP: "192.168.0.12"}
	d2.Egress = GatewaySpec{Name: "gw-out2", Host: "gw1", InstanceIP: "192.168.0.13"}
	if err := tb.plane.Deploy(d1); err != nil {
		t.Fatalf("Deploy d1: %v", err)
	}
	if err := tb.plane.Deploy(d2); err != nil {
		t.Fatalf("Deploy d2: %v", err)
	}

	type result struct {
		sess *initiator.Session
		err  error
	}
	results := make(chan result, 2)
	for _, d := range []*Deployment{d1, d2} {
		d := d
		go func() {
			var sess *initiator.Session
			err := tb.plane.AtomicAttach(d, func() error {
				conn, err := tb.vm.DialAddr(d.TargetAddr)
				if err != nil {
					return err
				}
				s, err := initiator.Login(conn, initiator.Config{
					InitiatorIQN: "iqn.vm1", TargetIQN: d.VolumeIQN,
				})
				if err != nil {
					return err
				}
				sess = s
				return nil
			})
			results <- result{sess, err}
		}()
	}
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("concurrent attach: %v", r.err)
		}
		if err := r.sess.Ping(); err != nil {
			t.Errorf("ping after concurrent attach: %v", err)
		}
		_ = r.sess.Close()
	}
}

func TestUpdateChainLiveScaling(t *testing.T) {
	tb := newTestbed(t)
	d := tb.deployment()
	if err := tb.plane.Deploy(d); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	sess := tb.attach(t, d)
	route1 := sess.Conn().(*netsim.Conn).Route()
	crossesMB := func(r *netsim.Route) bool {
		for _, h := range r.Hops {
			if h.Host == "mbhost1" {
				return true
			}
		}
		return false
	}
	if crossesMB(route1) {
		t.Error("empty chain route crosses the MB host")
	}
	// Add a middle-box on the live path; a re-attach picks it up.
	if err := tb.plane.UpdateChain(d.ID, []sdn.MBSpec{
		{Name: "mb1", Host: "mbhost1", Mode: vswitch.ModeForward},
	}); err != nil {
		t.Fatalf("UpdateChain: %v", err)
	}
	sess2 := tb.attach(t, d)
	route2 := sess2.Conn().(*netsim.Conn).Route()
	if !crossesMB(route2) {
		t.Error("updated chain route does not cross the MB host")
	}
	if err := sess2.Ping(); err != nil {
		t.Errorf("ping through updated chain: %v", err)
	}
}

func TestRelayTerminationRouting(t *testing.T) {
	// A terminate-mode MB receives the connection with NextHop metadata;
	// its onward dial resumes the chain and reaches the target.
	tb := newTestbed(t)
	mbGuest, err := tb.mbHost.NewGuest("mb1", "192.168.0.50")
	if err != nil {
		t.Fatal(err)
	}
	relayAddr := netsim.Addr{Net: netsim.InstanceNet, IP: "192.168.0.50", Port: 13260}
	relayLn, err := mbGuest.ListenAddr(relayAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer relayLn.Close()
	if err := tb.plane.RegisterMB(MBInfo{Name: "mb1", Host: "mbhost1", InstanceIP: "192.168.0.50"}); err != nil {
		t.Fatal(err)
	}
	d := tb.deployment(sdn.MBSpec{
		Name: "mb1", Host: "mbhost1", Mode: vswitch.ModeTerminate, RelayAddr: relayAddr,
	})
	if err := tb.plane.Deploy(d); err != nil {
		t.Fatalf("Deploy: %v", err)
	}

	// Byte-splicing relay.
	go func() {
		c, err := relayLn.Accept()
		if err != nil {
			return
		}
		front := c.(*netsim.Conn)
		next := front.Route().NextHop
		back, err := mbGuest.DialAddr(next)
		if err != nil {
			t.Errorf("relay onward dial: %v", err)
			front.Close()
			return
		}
		go func() {
			_, _ = io.Copy(back, front)
			back.Close()
		}()
		_, _ = io.Copy(front, back)
		front.Close()
	}()

	sess := tb.attach(t, d)
	want := bytes.Repeat([]byte{0x5A}, 1024)
	if err := sess.Write(8, want, 512); err != nil {
		t.Fatalf("Write through relay: %v", err)
	}
	got, err := sess.Read(8, 2, 512)
	if err != nil {
		t.Fatalf("Read through relay: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("relay path corrupted data")
	}
	// Front connection terminates at the relay with gateway masquerading.
	route := sess.Conn().(*netsim.Conn).Route()
	if route.Terminate != relayAddr {
		t.Errorf("Terminate = %v, want relay", route.Terminate)
	}
	if route.SrcAsSeen.IP != "192.168.0.10" {
		t.Errorf("relay sees src %v, want ingress gateway IP", route.SrcAsSeen)
	}
	if route.NextHop.IP != "192.168.0.11" {
		t.Errorf("NextHop = %v, want egress gateway", route.NextHop)
	}
}

func TestAttributionsTable(t *testing.T) {
	a := NewAttributions()
	a.RecordAttachment("vm1", "iqn.vol1")
	if b, ok := a.ByIQN("iqn.vol1"); !ok || b.Complete() {
		t.Errorf("partial binding: %+v %v", b, ok)
	}
	a.RecordLogin("iqn.vol1", 40001)
	b, ok := a.ByIQN("iqn.vol1")
	if !ok || !b.Complete() || b.SourcePort != 40001 {
		t.Errorf("binding = %+v", b)
	}
	// Re-login with a new port supersedes the old one.
	a.RecordLogin("iqn.vol1", 40002)
	if _, ok := a.ByPort(40001); ok {
		t.Error("stale port still resolves")
	}
	if b, ok := a.ByPort(40002); !ok || b.VM != "vm1" {
		t.Errorf("ByPort(40002) = %+v, %v", b, ok)
	}
	// Login before attachment also assembles.
	a.RecordLogin("iqn.vol2", 40010)
	a.RecordAttachment("vm2", "iqn.vol2")
	if b, ok := a.ByIQN("iqn.vol2"); !ok || !b.Complete() {
		t.Errorf("reverse-order binding = %+v", b)
	}
	if got := a.ByVM("vm1"); len(got) != 1 {
		t.Errorf("ByVM(vm1) = %v", got)
	}
	if a.Len() != 2 {
		t.Errorf("Len = %d", a.Len())
	}
	a.RemoveAttachment("iqn.vol1")
	if _, ok := a.ByIQN("iqn.vol1"); ok {
		t.Error("binding survives RemoveAttachment")
	}
	if _, ok := a.ByPort(40002); ok {
		t.Error("port index survives RemoveAttachment")
	}
	a.RecordLogin("iqn.volX", 0) // ignored
	if _, ok := a.ByIQN("iqn.volX"); ok {
		t.Error("zero port login recorded")
	}
}

// TestAtomicAttachLockPruning churns attachments across many hosts and
// checks the per-host attach-lock registry drains back to empty — it must
// not grow one entry per VM host forever.
func TestAtomicAttachLockPruning(t *testing.T) {
	tb := newTestbed(t)

	// Sequential churn on one host.
	for i := 0; i < 50; i++ {
		d := tb.deployment()
		d.ID = fmt.Sprintf("seq%d/vol", i)
		if err := tb.plane.AtomicAttach(d, func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	}

	// Concurrent churn: several goroutines per host across several hosts, so
	// the refcount path (second arrival while the first still holds the lock)
	// is exercised under -race.
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				d := tb.deployment()
				d.ID = fmt.Sprintf("conc%d-%d/vol", g, j)
				d.VMHost = fmt.Sprintf("churnhost%d", g%4)
				if err := tb.plane.AtomicAttach(d, func() error { return nil }); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if n := tb.plane.attachLockCount(); n != 0 {
		t.Fatalf("attach-lock registry leaked %d entries after churn", n)
	}
}
