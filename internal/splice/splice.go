// Package splice implements StorM's network splicing (Section III-A): the
// forwarding plane that selectively brings a tenant VM's storage flow from
// the storage network into the instance network, through a pair of storage
// gateways and an SDN-steered middle-box chain, and back to the storage
// server — plus connection attribution and the atomic volume-attachment
// protocol.
//
// The plane installs itself as the fabric's RouteFunc. Flows without
// matching NAT rules follow the legacy direct path; flows captured during
// an atomic attach traverse ingress gateway -> middle-box chain -> egress
// gateway -> target, with IP masquerading hiding storage-network addresses
// from the instance network exactly as in Figure 3.
package splice

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/nat"
	"repro/internal/netsim"
	"repro/internal/sdn"
	"repro/internal/vswitch"
)

// iSCSI well-known port, used by gateway translation rules.
const iscsiPort = 3260

// ErrIsolated reports a tenant VM dialing a protected middle-box or
// gateway address directly (Section II-C's isolation guarantee).
var ErrIsolated = errors.New("splice: destination is isolated from tenant VMs")

// GatewaySpec places one storage gateway: a host with NICs on both networks
// and an address inside the tenant's isolated instance network space.
type GatewaySpec struct {
	Name       string
	Host       string
	InstanceIP string
}

// Deployment wires one VM's volume through a middle-box chain.
type Deployment struct {
	// ID uniquely names the deployment; chain rules derive from it.
	ID string
	// VM names the tenant VM endpoint whose flow is spliced.
	VM string
	// VMHost is the compute host running the VM.
	VMHost string
	// VolumeIQN is the volume's target name (for attribution).
	VolumeIQN string
	// TargetAddr is the storage server's address on the storage network.
	TargetAddr netsim.Addr
	// Ingress and Egress are the deployment's gateway pair.
	Ingress GatewaySpec
	Egress  GatewaySpec
	// Chain is the ordered middle-box list.
	Chain []sdn.MBSpec
}

// MBInfo registers a middle-box VM with the plane so relay-originated
// onward dials resume the chain walk at the right station.
type MBInfo struct {
	// Name is the station name (must match the chain's MBSpec.Name).
	Name string
	// Host is the physical host of the middle-box VM.
	Host string
	// InstanceIP is the MB's address in the tenant network space.
	InstanceIP string
}

// attachLock serializes atomic attachments on one compute host. refs counts
// in-flight attachments so the registry entry can be pruned when the last
// one releases — host churn cannot grow the map without bound.
type attachLock struct {
	mu   sync.Mutex
	refs int
}

// Plane is the StorM forwarding plane.
type Plane struct {
	fabric *netsim.Fabric
	ctrl   *sdn.Controller

	mu          sync.RWMutex
	hostNAT     map[string]*nat.Table
	deployments map[string]*Deployment // by ID
	byIngressIP map[string]*Deployment
	byEgressIP  map[string]*Deployment
	mbs         map[string]*MBInfo // by endpoint (station) name
	protected   map[string]bool    // instance-net IPs tenants may not dial
	attrib      *Attributions

	attachMu    sync.Mutex
	attachLocks map[string]*attachLock // by VM host, pruned at zero refs
}

// NewPlane creates the plane and installs it as the fabric's forwarding
// plane.
func NewPlane(fabric *netsim.Fabric, ctrl *sdn.Controller) *Plane {
	p := &Plane{
		fabric:      fabric,
		ctrl:        ctrl,
		hostNAT:     make(map[string]*nat.Table),
		attachLocks: make(map[string]*attachLock),
		deployments: make(map[string]*Deployment),
		byIngressIP: make(map[string]*Deployment),
		byEgressIP:  make(map[string]*Deployment),
		mbs:         make(map[string]*MBInfo),
		protected:   make(map[string]bool),
		attrib:      NewAttributions(),
	}
	fabric.SetRoute(p.Route)
	return p
}

// Controller returns the SDN controller the plane steers with.
func (p *Plane) Controller() *sdn.Controller { return p.ctrl }

// Attributions returns the connection attribution table.
func (p *Plane) Attributions() *Attributions { return p.attrib }

// HostNAT returns (creating on demand) the NAT table of a compute host.
func (p *Plane) HostNAT(host string) *nat.Table {
	p.mu.RLock()
	tbl := p.hostNAT[host]
	p.mu.RUnlock()
	if tbl != nil {
		return tbl
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if tbl = p.hostNAT[host]; tbl == nil {
		tbl = nat.NewTable()
		p.hostNAT[host] = tbl
	}
	return tbl
}

// RegisterMB registers a middle-box VM and protects its address from
// direct tenant access.
func (p *Plane) RegisterMB(info MBInfo) error {
	if info.Name == "" || info.Host == "" {
		return fmt.Errorf("splice: middle-box registration needs name and host")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.mbs[info.Name]; ok {
		return fmt.Errorf("splice: middle-box %q already registered", info.Name)
	}
	cp := info
	p.mbs[info.Name] = &cp
	if info.InstanceIP != "" {
		p.protected[info.InstanceIP] = true
	}
	return nil
}

// UnregisterMB removes a middle-box registration and releases its protected
// address — the scale-down teardown counterpart of RegisterMB. Unknown names
// are a no-op. Established connections through the instance keep flowing
// (routes resolve at dial time); the orchestrator only calls this once the
// instance has drained.
func (p *Plane) UnregisterMB(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	info, ok := p.mbs[name]
	if !ok {
		return
	}
	delete(p.mbs, name)
	if info.InstanceIP != "" {
		delete(p.protected, info.InstanceIP)
	}
}

// Deploy installs a deployment: the gateway pair joins the protected set
// and the chain's flow rules are pushed to the virtual switches.
func (p *Plane) Deploy(d *Deployment) error {
	if d.ID == "" || d.VMHost == "" {
		return fmt.Errorf("splice: deployment needs ID and VM host")
	}
	if d.Ingress.Host == "" || d.Ingress.InstanceIP == "" || d.Egress.Host == "" || d.Egress.InstanceIP == "" {
		return fmt.Errorf("splice: deployment %q needs fully-specified gateways", d.ID)
	}
	if d.TargetAddr.IsZero() {
		return fmt.Errorf("splice: deployment %q missing target address", d.ID)
	}
	ch := &sdn.Chain{
		ID:          d.ID,
		Selector:    vswitch.Match{DstIP: d.Egress.InstanceIP, DstPort: iscsiPort},
		IngressHost: d.Ingress.Host,
		MBs:         d.Chain,
	}
	if err := p.ctrl.InstallChain(ch); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.deployments[d.ID]; ok {
		p.ctrl.RemoveChain(d.ID)
		return fmt.Errorf("splice: deployment %q already exists", d.ID)
	}
	if other, ok := p.byIngressIP[d.Ingress.InstanceIP]; ok {
		p.ctrl.RemoveChain(d.ID)
		return fmt.Errorf("splice: ingress IP %s already used by deployment %q", d.Ingress.InstanceIP, other.ID)
	}
	if other, ok := p.byEgressIP[d.Egress.InstanceIP]; ok {
		p.ctrl.RemoveChain(d.ID)
		return fmt.Errorf("splice: egress IP %s already used by deployment %q", d.Egress.InstanceIP, other.ID)
	}
	cp := *d
	cp.Chain = append([]sdn.MBSpec(nil), d.Chain...)
	p.deployments[d.ID] = &cp
	p.byIngressIP[d.Ingress.InstanceIP] = &cp
	p.byEgressIP[d.Egress.InstanceIP] = &cp
	p.protected[d.Ingress.InstanceIP] = true
	p.protected[d.Egress.InstanceIP] = true
	return nil
}

// Undeploy removes the deployment and its chain rules. Established
// connections keep flowing (routes are resolved at dial time).
func (p *Plane) Undeploy(id string) {
	p.mu.Lock()
	d, ok := p.deployments[id]
	if ok {
		delete(p.deployments, id)
		delete(p.byIngressIP, d.Ingress.InstanceIP)
		delete(p.byEgressIP, d.Egress.InstanceIP)
		delete(p.protected, d.Ingress.InstanceIP)
		delete(p.protected, d.Egress.InstanceIP)
	}
	p.mu.Unlock()
	if ok {
		p.ctrl.RemoveChain(id)
	}
}

// Deployment returns a copy of the named deployment, or nil.
func (p *Plane) Deployment(id string) *Deployment {
	p.mu.RLock()
	defer p.mu.RUnlock()
	d, ok := p.deployments[id]
	if !ok {
		return nil
	}
	cp := *d
	cp.Chain = append([]sdn.MBSpec(nil), d.Chain...)
	return &cp
}

// UpdateChain replaces a live deployment's middle-box chain (on-demand
// scaling). New connections follow the new chain immediately.
func (p *Plane) UpdateChain(id string, mbs []sdn.MBSpec) error {
	p.mu.Lock()
	d, ok := p.deployments[id]
	if ok {
		d.Chain = append([]sdn.MBSpec(nil), mbs...)
	}
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("splice: unknown deployment %q", id)
	}
	return p.ctrl.UpdateChain(id, mbs)
}

// AtomicAttach runs attach() with the deployment's capture rule installed
// on the VM's compute host, holding the host's attachment mutex so that
// concurrent attachments of other volumes are never mis-captured — the
// paper's atomic attachment operation for the 3-tuple ambiguity.
func (p *Plane) AtomicAttach(d *Deployment, attach func() error) error {
	p.attachMu.Lock()
	lock := p.attachLocks[d.VMHost]
	if lock == nil {
		lock = &attachLock{}
		p.attachLocks[d.VMHost] = lock
	}
	lock.refs++
	p.attachMu.Unlock()
	defer func() {
		p.attachMu.Lock()
		lock.refs--
		if lock.refs == 0 {
			delete(p.attachLocks, d.VMHost)
		}
		p.attachMu.Unlock()
	}()

	lock.mu.Lock()
	defer lock.mu.Unlock()

	tbl := p.HostNAT(d.VMHost)
	rule := &nat.Rule{
		ID:       "attach/" + d.ID,
		Priority: 100,
		Match: nat.Match{
			Net:     netsim.StorageNet,
			DstIP:   d.TargetAddr.IP,
			DstPort: d.TargetAddr.Port,
		},
		Action: nat.Redirect(d.Ingress.InstanceIP, iscsiPort),
	}
	if err := tbl.Add(rule); err != nil {
		return fmt.Errorf("splice: install capture rule: %w", err)
	}
	defer tbl.Remove(rule.ID)
	return attach()
}

// attachLockCount reports how many per-host attachment locks are live
// (tests: the registry must drain back to empty after attach churn).
func (p *Plane) attachLockCount() int {
	p.attachMu.Lock()
	defer p.attachMu.Unlock()
	return len(p.attachLocks)
}
