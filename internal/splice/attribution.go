package splice

import (
	"fmt"
	"sync"
)

// Binding is one attributed storage connection: the mapping chain
// VM -> virtual device (IQN) -> TCP source port that Section III-A's
// connection attribution assembles from the hypervisor's attachment records
// and the modified iSCSI login session.
type Binding struct {
	// VM names the tenant VM owning the connection.
	VM string
	// VolumeIQN is the virtual block device attached to the VM.
	VolumeIQN string
	// SourcePort is the TCP source port of the iSCSI connection (0 until
	// the login exposes it).
	SourcePort int
}

// Complete reports whether both halves of the attribution are known.
func (b Binding) Complete() bool {
	return b.VM != "" && b.VolumeIQN != "" && b.SourcePort != 0
}

// String renders the binding.
func (b Binding) String() string {
	return fmt.Sprintf("%s <-> %s (port %d)", b.VM, b.VolumeIQN, b.SourcePort)
}

// Attributions is the platform's connection attribution table.
type Attributions struct {
	mu     sync.Mutex
	byIQN  map[string]*Binding
	byPort map[int]*Binding
}

// NewAttributions returns an empty table.
func NewAttributions() *Attributions {
	return &Attributions{
		byIQN:  make(map[string]*Binding),
		byPort: make(map[int]*Binding),
	}
}

// RecordAttachment registers the hypervisor-side half: VM <-> IQN. It is
// called when the cloud attaches a virtual block device to a VM.
func (a *Attributions) RecordAttachment(vm, iqn string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b, ok := a.byIQN[iqn]
	if !ok {
		b = &Binding{VolumeIQN: iqn}
		a.byIQN[iqn] = b
	}
	b.VM = vm
}

// RecordLogin registers the connection-side half: IQN <-> source port, as
// exposed by the modified iSCSI Login Session code.
func (a *Attributions) RecordLogin(iqn string, sourcePort int) {
	if sourcePort == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	b, ok := a.byIQN[iqn]
	if !ok {
		b = &Binding{VolumeIQN: iqn}
		a.byIQN[iqn] = b
	}
	if b.SourcePort != 0 {
		delete(a.byPort, b.SourcePort)
	}
	b.SourcePort = sourcePort
	a.byPort[sourcePort] = b
}

// RemoveAttachment drops the binding for an IQN (volume detach).
func (a *Attributions) RemoveAttachment(iqn string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if b, ok := a.byIQN[iqn]; ok {
		if b.SourcePort != 0 {
			delete(a.byPort, b.SourcePort)
		}
		delete(a.byIQN, iqn)
	}
}

// ByIQN returns the binding for a volume, if known.
func (a *Attributions) ByIQN(iqn string) (Binding, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if b, ok := a.byIQN[iqn]; ok {
		return *b, true
	}
	return Binding{}, false
}

// ByPort resolves a TCP source port to its owning VM and volume — the
// query that lets the platform distinguish one VM's storage traffic from
// another's on the shared host connection.
func (a *Attributions) ByPort(port int) (Binding, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if b, ok := a.byPort[port]; ok {
		return *b, true
	}
	return Binding{}, false
}

// ByVM returns all bindings of one VM.
func (a *Attributions) ByVM(vm string) []Binding {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []Binding
	for _, b := range a.byIQN {
		if b.VM == vm {
			out = append(out, *b)
		}
	}
	return out
}

// Len returns the number of known bindings.
func (a *Attributions) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.byIQN)
}
