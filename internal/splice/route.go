package splice

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sdn"
	"repro/internal/vswitch"
)

// Route is the plane's netsim.RouteFunc: the data-plane decision for every
// new flow.
func (p *Plane) Route(f *netsim.Fabric, src *netsim.Endpoint, srcAddr, dst netsim.Addr) (*netsim.Route, error) {
	// Isolation: tenant VMs may not dial middle-boxes or gateways directly.
	if src.Guest() && p.isProtected(dst.IP) && !p.isMB(src.Name()) {
		return nil, fmt.Errorf("%w: %v from %s", ErrIsolated, dst, src.Name())
	}

	// A relay middle-box dialing onward resumes its chain walk.
	if mb := p.mbInfo(src.Name()); mb != nil {
		if dep := p.depByEgressIP(dst.IP); dep != nil {
			return p.routeFromStation(dep, srcAddr, dst, mb.Host, mb.Name, src)
		}
	}

	// Compute-host NAT: the attach-window capture rule brings the flow
	// into the instance network.
	flow := netsim.Flow{
		Net:     dst.Net,
		SrcIP:   srcAddr.IP,
		SrcPort: srcAddr.Port,
		DstIP:   dst.IP,
		DstPort: dst.Port,
	}
	tbl := p.HostNAT(src.Host().Name())
	translated, _, captured := tbl.Apply(flow)
	if !captured {
		return netsim.DirectRoute(f, src, srcAddr, dst)
	}
	dep := p.depByIngressIP(translated.DstIP)
	if dep == nil {
		return nil, fmt.Errorf("splice: capture rule points at unknown ingress %s", translated.DstIP)
	}

	// VM -> ingress gateway host, plus the gateway's routing work.
	hops := netsim.PathHops(f, src.Host().Name(), src.Guest(), dep.Ingress.Host, false)
	hops = append(hops, netsim.Hop{Kind: netsim.HopForward, Host: dep.Ingress.Host, Stage: obs.StageGatewayIngress})
	return p.walkChain(dep, srcAddr, dst, dep.Ingress.Host, sdn.IngressStation, hops)
}

// routeFromStation resumes the chain at a middle-box station for a relay's
// onward dial.
func (p *Plane) routeFromStation(dep *Deployment, srcAddr, dst netsim.Addr, host, station string, src *netsim.Endpoint) (*netsim.Route, error) {
	// Out of the relay guest onto its host's switch.
	hops := []netsim.Hop{
		{Kind: netsim.HopVirtio, Host: host},
		{Kind: netsim.HopSwitch, Host: host},
	}
	return p.walkChain(dep, srcAddr, dst, host, station, hops)
}

// walkChain follows the deployment's steering rules from (host, station),
// accumulating hops, and terminates either at a relay middle-box or at the
// storage target behind the egress gateway.
func (p *Plane) walkChain(dep *Deployment, srcAddr, dialedDst netsim.Addr, host, station string, hops []netsim.Hop) (*netsim.Route, error) {
	// The flow as seen inside the instance network after ingress
	// masquerading: src is the ingress gateway (VM port preserved), dst is
	// the egress gateway.
	instFlow := netsim.Flow{
		Net:     netsim.InstanceNet,
		SrcIP:   dep.Ingress.InstanceIP,
		SrcPort: srcAddr.Port,
		DstIP:   dep.Egress.InstanceIP,
		DstPort: iscsiPort,
	}
	cur := host
	steps := p.ctrl.Walk(instFlow, host, station)
	for _, st := range steps {
		switch st.MB.Mode {
		case vswitch.ModeForward:
			if st.MB.Host != cur {
				hops = append(hops, netsim.Hop{Kind: netsim.HopWire})
			}
			fwd := netsim.ForwardHops(st.MB.Host)
			for i := range fwd {
				if fwd[i].Kind == netsim.HopForward {
					fwd[i].Stage = obs.StageMBForward
				}
			}
			hops = append(hops, fwd...)
			cur = st.MB.Host
		case vswitch.ModeTerminate:
			if st.MB.Host != cur {
				hops = append(hops,
					netsim.Hop{Kind: netsim.HopWire},
					netsim.Hop{Kind: netsim.HopSwitch, Host: st.MB.Host})
			}
			hops = append(hops, netsim.Hop{Kind: netsim.HopVirtio, Host: st.MB.Host})
			return &netsim.Route{
				Terminate: st.MB.RelayAddr,
				SrcAsSeen: netsim.Addr{Net: netsim.InstanceNet, IP: dep.Ingress.InstanceIP, Port: srcAddr.Port},
				DialedDst: dialedDst,
				NextHop:   netsim.Addr{Net: netsim.InstanceNet, IP: dep.Egress.InstanceIP, Port: iscsiPort},
				Hops:      hops,
			}, nil
		default:
			return nil, fmt.Errorf("splice: chain %q has unknown steering mode %v", dep.ID, st.MB.Mode)
		}
	}

	// End of chain: egress gateway, then the storage network to the target.
	if dep.Egress.Host != cur {
		hops = append(hops,
			netsim.Hop{Kind: netsim.HopWire},
			netsim.Hop{Kind: netsim.HopSwitch, Host: dep.Egress.Host})
	}
	hops = append(hops, netsim.Hop{Kind: netsim.HopForward, Host: dep.Egress.Host, Stage: obs.StageGatewayEgress})
	targetHost := p.fabric.HostByIP(netsim.StorageNet, dep.TargetAddr.IP)
	if targetHost == nil {
		return nil, fmt.Errorf("splice: deployment %q target %v is on no host", dep.ID, dep.TargetAddr)
	}
	if targetHost.Name() != dep.Egress.Host {
		hops = append(hops,
			netsim.Hop{Kind: netsim.HopWire},
			netsim.Hop{Kind: netsim.HopSwitch, Host: targetHost.Name()})
	}
	egressHost := p.fabric.Host(dep.Egress.Host)
	egressIP := ""
	if egressHost != nil {
		egressIP = egressHost.IP(netsim.StorageNet)
	}
	return &netsim.Route{
		Terminate: dep.TargetAddr,
		SrcAsSeen: netsim.Addr{Net: netsim.StorageNet, IP: egressIP, Port: srcAddr.Port},
		DialedDst: dialedDst,
		Hops:      hops,
	}, nil
}

func (p *Plane) isProtected(ip string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.protected[ip]
}

func (p *Plane) isMB(name string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	_, ok := p.mbs[name]
	return ok
}

func (p *Plane) mbInfo(name string) *MBInfo {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.mbs[name]
}

func (p *Plane) depByIngressIP(ip string) *Deployment {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.byIngressIP[ip]
}

func (p *Plane) depByEgressIP(ip string) *Deployment {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.byEgressIP[ip]
}
