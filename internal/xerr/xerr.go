// Package xerr is the data-path error taxonomy. Every error that crosses a
// storage-stack boundary (WAL, CAS, middle-box journal/relay, replicate)
// carries one of four classes so callers pick a recovery strategy from the
// class instead of string-matching messages:
//
//	Transient — momentary failure; retry with backoff is appropriate.
//	Overload  — the component is up but over its admission watermark;
//	            shed load / surface queue-full (SCSI BUSY) and retry later.
//	Exhausted — a bounded resource (WAL segments, CAS chunk slots) is gone;
//	            retrying won't help until space is reclaimed or released.
//	Terminal  — the operation can never succeed against this endpoint
//	            (draining relay, closed box); fail fast, don't burn backoff.
//
// Classes ride along the normal error chain: Wrap preserves errors.Is /
// errors.As against the underlying sentinel, and Classify walks the chain so
// a class survives any number of fmt.Errorf("%w") hops.
package xerr

import (
	"errors"
	"fmt"
)

// Class partitions data-path errors by the recovery strategy they demand.
type Class int

const (
	// Unknown is the zero class: the error carries no taxonomy tag.
	Unknown Class = iota
	// Transient failures are worth an in-place retry with backoff.
	Transient
	// Overload means admission control refused the work; back off and
	// resubmit, or surface queue-full to the initiator.
	Overload
	// Exhausted means a bounded resource ran out; retry only after reclaim.
	Exhausted
	// Terminal means the operation cannot succeed against this endpoint.
	Terminal
)

// String names the class for logs and gauges.
func (c Class) String() string {
	switch c {
	case Transient:
		return "transient"
	case Overload:
		return "overload"
	case Exhausted:
		return "exhausted"
	case Terminal:
		return "terminal"
	default:
		return "unknown"
	}
}

// classed tags an underlying error with a Class while keeping the chain
// intact for errors.Is / errors.As.
type classed struct {
	class Class
	err   error
}

func (e *classed) Error() string { return e.err.Error() }
func (e *classed) Unwrap() error { return e.err }

// Class exposes the tag to Classify via errors.As.
func (e *classed) Class() Class { return e.class }

// New builds a classed sentinel error, the taxonomy analogue of errors.New.
func New(c Class, msg string) error {
	return &classed{class: c, err: errors.New(msg)}
}

// Errorf builds a classed formatted error; %w verbs work as in fmt.Errorf.
func Errorf(c Class, format string, args ...any) error {
	return &classed{class: c, err: fmt.Errorf(format, args...)}
}

// Wrap tags err with class c without obscuring it: errors.Is(Wrap(c, err), err)
// holds. Wrapping nil returns nil.
func Wrap(c Class, err error) error {
	if err == nil {
		return nil
	}
	return &classed{class: c, err: err}
}

// classer is the interface Classify looks for along the chain. Any error
// type with a Class() method participates, not just this package's wrapper.
type classer interface{ Class() Class }

// Classify walks err's chain and returns the first taxonomy class found, or
// Unknown when no link carries one.
func Classify(err error) Class {
	var c classer
	if errors.As(err, &c) {
		return c.Class()
	}
	return Unknown
}

// Is reports whether err carries exactly class c.
func Is(err error, c Class) bool { return Classify(err) == c }

// Retryable reports whether an immediate-ish retry can help: transient and
// overload errors are retryable (with backoff), exhausted and terminal are
// not — exhausted needs reclaim first, terminal never succeeds.
func Retryable(err error) bool {
	switch Classify(err) {
	case Transient, Overload:
		return true
	default:
		return false
	}
}

// IsTerminal reports whether err is classed Terminal — the caller should
// fail fast instead of spending its retry budget.
func IsTerminal(err error) bool { return Classify(err) == Terminal }
