package xerr

import (
	"errors"
	"fmt"
	"testing"
)

func TestClassifyWalksWrappedChains(t *testing.T) {
	base := errors.New("disk went away")
	tagged := Wrap(Exhausted, base)
	// A class must survive any number of fmt.Errorf("%w") hops.
	deep := fmt.Errorf("relay: %w", fmt.Errorf("journal: %w", tagged))
	if got := Classify(deep); got != Exhausted {
		t.Fatalf("Classify(deep) = %v, want Exhausted", got)
	}
	if !errors.Is(deep, base) {
		t.Fatal("wrapping lost the underlying sentinel")
	}
}

func TestClassifyUnknown(t *testing.T) {
	if got := Classify(errors.New("plain")); got != Unknown {
		t.Fatalf("Classify(plain) = %v, want Unknown", got)
	}
	if got := Classify(nil); got != Unknown {
		t.Fatalf("Classify(nil) = %v, want Unknown", got)
	}
}

func TestWrapNil(t *testing.T) {
	if Wrap(Transient, nil) != nil {
		t.Fatal("Wrap(nil) must be nil")
	}
}

func TestRetryable(t *testing.T) {
	cases := []struct {
		class Class
		want  bool
	}{
		{Transient, true},
		{Overload, true},
		{Exhausted, false},
		{Terminal, false},
		{Unknown, false},
	}
	for _, c := range cases {
		err := New(c.class, "x")
		if c.class == Unknown {
			err = errors.New("x")
		}
		if got := Retryable(err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.class, got, c.want)
		}
	}
}

func TestIsTerminal(t *testing.T) {
	if !IsTerminal(New(Terminal, "draining")) {
		t.Fatal("terminal error not detected")
	}
	if IsTerminal(New(Overload, "busy")) {
		t.Fatal("overload misread as terminal")
	}
}

func TestErrorfPreservesVerbWrapping(t *testing.T) {
	base := errors.New("inner")
	err := Errorf(Overload, "queue full: %w", base)
	if !errors.Is(err, base) {
		t.Fatal("Errorf lost %w semantics")
	}
	if Classify(err) != Overload {
		t.Fatal("Errorf lost its class")
	}
}

func TestInnermostClassDoesNotOverrideOuter(t *testing.T) {
	// The nearest (outermost) class wins — a caller re-classing an error
	// changes how its own callers treat it.
	inner := New(Transient, "flaky")
	outer := Wrap(Terminal, fmt.Errorf("gave up after retries: %w", inner))
	if got := Classify(outer); got != Terminal {
		t.Fatalf("Classify = %v, want outermost Terminal", got)
	}
}

func TestClassString(t *testing.T) {
	want := map[Class]string{
		Unknown: "unknown", Transient: "transient", Overload: "overload",
		Exhausted: "exhausted", Terminal: "terminal",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}
