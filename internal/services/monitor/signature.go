package monitor

import (
	"strings"
	"sync"

	"repro/internal/semantic"
)

// Signature is a known-malware access pattern: a set of path fragments
// that, once all observed on one volume, identify the malware. Section
// V-B1: "the revealed file access patterns of malware can then be used by
// the middle-box for future detection of the same malware."
type Signature struct {
	// Name identifies the malware (e.g. "HEUR:Backdoor.Linux.Ganiw.a").
	Name string
	// Fragments are path substrings; the signature fires when every
	// fragment has been seen in a reconstructed write/create/rename event.
	Fragments []string
}

// SignatureMatch reports a completed signature.
type SignatureMatch struct {
	Signature string
	// Evidence maps each fragment to the first event path that matched it.
	Evidence map[string]string
}

// signatureState tracks per-signature progress.
type signatureState struct {
	sig      Signature
	matched  map[string]string // fragment -> first matching path
	reported bool
}

// detector evaluates signatures against the event stream.
type detector struct {
	mu      sync.Mutex
	states  []*signatureState
	matches []SignatureMatch
	onMatch func(SignatureMatch)
}

// AddSignature registers a malware signature on the monitor.
func (m *Monitor) AddSignature(sig Signature) {
	if len(sig.Fragments) == 0 {
		return
	}
	m.det.mu.Lock()
	defer m.det.mu.Unlock()
	m.det.states = append(m.det.states, &signatureState{
		sig:     sig,
		matched: make(map[string]string, len(sig.Fragments)),
	})
}

// OnSignatureMatch registers a callback fired when a signature completes.
func (m *Monitor) OnSignatureMatch(fn func(SignatureMatch)) {
	m.det.mu.Lock()
	defer m.det.mu.Unlock()
	m.det.onMatch = fn
}

// SignatureMatches returns the signatures detected so far.
func (m *Monitor) SignatureMatches() []SignatureMatch {
	m.det.mu.Lock()
	defer m.det.mu.Unlock()
	return append([]SignatureMatch(nil), m.det.matches...)
}

// observe feeds one reconstructed event into the detector. Only mutating
// namespace/data operations count as evidence (reads of system files are
// benign).
func (d *detector) observe(e semantic.Event) {
	switch e.Type {
	case semantic.EvWrite, semantic.EvCreate, semantic.EvRename:
	default:
		return
	}
	d.mu.Lock()
	var fired []SignatureMatch
	for _, st := range d.states {
		if st.reported {
			continue
		}
		for _, frag := range st.sig.Fragments {
			if _, done := st.matched[frag]; done {
				continue
			}
			if strings.Contains(e.Path, frag) {
				st.matched[frag] = e.Path
			}
		}
		if len(st.matched) == len(st.sig.Fragments) {
			st.reported = true
			evidence := make(map[string]string, len(st.matched))
			for k, v := range st.matched {
				evidence[k] = v
			}
			fired = append(fired, SignatureMatch{Signature: st.sig.Name, Evidence: evidence})
		}
	}
	d.matches = append(d.matches, fired...)
	cb := d.onMatch
	d.mu.Unlock()
	if cb != nil {
		for _, mt := range fired {
			cb(mt)
		}
	}
}

// GaniwSignature is the Table III backdoor's installation footprint,
// expressed as a detection signature.
func GaniwSignature() Signature {
	return Signature{
		Name: "HEUR:Backdoor.Linux.Ganiw.a",
		Fragments: []string{
			"/etc/init.d/DbSecuritySpt",
			"S97DbSecuritySpt",
			"/usr/bin/bsd-port/getty",
			"/etc/init.d/selinux",
		},
	}
}
