// Package monitor implements the storage access monitor case study
// (Section V-B1): a tenant-defined middle-box service that reconstructs
// high-level file operations from intercepted block traffic and logs or
// alerts on accesses to watched files and directories. Its engine runs the
// paper's three phases — Classification (which block class was touched),
// Update (fold metadata writes into the live system view), and Analysis
// (match reconstructed operations against tenant watch rules).
package monitor

import (
	"strings"
	"sync"

	"repro/internal/blockdev"
	"repro/internal/extfs"
	"repro/internal/middlebox"
	"repro/internal/semantic"
)

// Alert reports a watched access.
type Alert struct {
	// Rule is the watch prefix that fired.
	Rule string
	// Event is the reconstructed operation.
	Event semantic.Event
}

// Monitor is the monitoring engine.
type Monitor struct {
	rec *semantic.Reconstructor
	det detector

	mu      sync.Mutex
	watches []string
	alerts  []Alert
	onAlert func(Alert)
}

// New builds a monitor from the initial system view supplied by the
// platform at volume-attach time.
func New(view *extfs.View) *Monitor {
	m := &Monitor{rec: semantic.New(view)}
	m.rec.OnEvent(m.analyze)
	return m
}

// Reconstructor exposes the underlying semantics engine.
func (m *Monitor) Reconstructor() *semantic.Reconstructor { return m.rec }

// Watch adds an alert rule: any reconstructed operation whose path starts
// with prefix raises an alert.
func (m *Monitor) Watch(prefix string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.watches = append(m.watches, prefix)
}

// OnAlert registers a callback invoked for each alert (the tenant's
// "directly notified on any access" option).
func (m *Monitor) OnAlert(fn func(Alert)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onAlert = fn
}

// Alerts returns the alerts raised so far.
func (m *Monitor) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Alert(nil), m.alerts...)
}

// Log returns the full reconstructed access log (the tenant's periodic
// retrieval option).
func (m *Monitor) Log() []semantic.Event {
	return m.rec.Events()
}

// LogSince returns log entries newer than the given sequence number, so
// tenants can poll incrementally.
func (m *Monitor) LogSince(seq uint64) []semantic.Event {
	return m.rec.EventsSince(seq)
}

// analyze is the Analysis phase.
func (m *Monitor) analyze(e semantic.Event) {
	m.det.observe(e)
	m.mu.Lock()
	var fired []Alert
	for _, w := range m.watches {
		if strings.HasPrefix(e.Path, w) || (e.OldPath != "" && strings.HasPrefix(e.OldPath, w)) {
			fired = append(fired, Alert{Rule: w, Event: e})
		}
	}
	m.alerts = append(m.alerts, fired...)
	cb := m.onAlert
	m.mu.Unlock()
	if cb != nil {
		for _, a := range fired {
			cb(a)
		}
	}
}

// Service returns the middle-box service factory installing the monitor's
// tap on the relay's device stack.
func (m *Monitor) Service() middlebox.ServiceFactory {
	return func(backend blockdev.Device) (blockdev.Device, error) {
		return &tapDevice{dev: backend, mon: m}, nil
	}
}

// tapDevice feeds every access through the reconstructor.
type tapDevice struct {
	dev blockdev.Device
	mon *Monitor
}

var _ blockdev.Device = (*tapDevice)(nil)

func (d *tapDevice) BlockSize() int { return d.dev.BlockSize() }
func (d *tapDevice) Blocks() uint64 { return d.dev.Blocks() }

func (d *tapDevice) ReadAt(p []byte, lba uint64) error {
	if err := d.dev.ReadAt(p, lba); err != nil {
		return err
	}
	d.mon.rec.OnAccess(false, lba, nil, len(p))
	return nil
}

func (d *tapDevice) WriteAt(p []byte, lba uint64) error {
	if err := d.dev.WriteAt(p, lba); err != nil {
		return err
	}
	d.mon.rec.OnAccess(true, lba, p, len(p))
	return nil
}

func (d *tapDevice) Flush() error { return d.dev.Flush() }
func (d *tapDevice) Close() error { return d.dev.Close() }
