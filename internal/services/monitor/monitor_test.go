package monitor

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/extfs"
	"repro/internal/semantic"
)

// setup builds a monitored volume holding /mnt/box with sensitive files.
func setup(t *testing.T) (*extfs.FS, *Monitor) {
	t.Helper()
	disk, err := blockdev.NewMemDisk(512, 131072)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := extfs.Mkfs(disk, extfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/mnt/box/secrets"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/mnt/box/secrets/key.pem", bytes.Repeat([]byte{1}, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/mnt/box/public.txt", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	view, err := fs.Dump()
	if err != nil {
		t.Fatal(err)
	}
	mon := New(view)
	// Re-mount through the monitor's tap, as the middle-box observes.
	tapped, err := mon.Service()(disk)
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := extfs.Mount(tapped)
	if err != nil {
		t.Fatal(err)
	}
	return fs2, mon
}

func TestWatchedFileAccessRaisesAlert(t *testing.T) {
	fs, mon := setup(t)
	mon.Watch("/mnt/box/secrets")
	if _, err := fs.ReadFile("/mnt/box/secrets/key.pem"); err != nil {
		t.Fatal(err)
	}
	alerts := mon.Alerts()
	if len(alerts) == 0 {
		t.Fatal("no alert for watched file read")
	}
	found := false
	for _, a := range alerts {
		if a.Rule == "/mnt/box/secrets" && strings.Contains(a.Event.Path, "key.pem") {
			found = true
		}
	}
	if !found {
		t.Errorf("alerts = %+v", alerts)
	}
}

func TestUnwatchedAccessSilent(t *testing.T) {
	fs, mon := setup(t)
	mon.Watch("/mnt/box/secrets")
	if _, err := fs.ReadFile("/mnt/box/public.txt"); err != nil {
		t.Fatal(err)
	}
	for _, a := range mon.Alerts() {
		if strings.Contains(a.Event.Path, "public.txt") {
			t.Errorf("unwatched file alerted: %+v", a)
		}
	}
}

func TestAlertCallback(t *testing.T) {
	fs, mon := setup(t)
	mon.Watch("/mnt/box/secrets")
	var got []Alert
	mon.OnAlert(func(a Alert) { got = append(got, a) })
	if err := fs.WriteAt("/mnt/box/secrets/key.pem", bytes.Repeat([]byte{2}, 4096), 0); err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Error("callback never fired for watched write")
	}
}

func TestDeleteOfWatchedFileAlerts(t *testing.T) {
	fs, mon := setup(t)
	mon.Watch("/mnt/box/secrets")
	if err := fs.Remove("/mnt/box/secrets/key.pem"); err != nil {
		t.Fatal(err)
	}
	var deleted bool
	for _, a := range mon.Alerts() {
		if a.Event.Type == semantic.EvDelete {
			deleted = true
		}
	}
	if !deleted {
		t.Errorf("no delete alert; log:\n%s", renderLog(mon))
	}
}

func TestRenameOutOfWatchedTreeAlerts(t *testing.T) {
	fs, mon := setup(t)
	mon.Watch("/mnt/box/secrets")
	if err := fs.Rename("/mnt/box/secrets/key.pem", "/mnt/box/stolen.pem"); err != nil {
		t.Fatal(err)
	}
	var renamed bool
	for _, a := range mon.Alerts() {
		if a.Event.Type == semantic.EvRename && a.Event.OldPath == "/mnt/box/secrets/key.pem" {
			renamed = true
		}
	}
	if !renamed {
		t.Errorf("rename out of watched tree not alerted; log:\n%s", renderLog(mon))
	}
}

func TestAccessLogAvailable(t *testing.T) {
	fs, mon := setup(t)
	if _, err := fs.ReadDir("/mnt/box"); err != nil {
		t.Fatal(err)
	}
	if len(mon.Log()) == 0 {
		t.Error("empty access log after directory listing")
	}
}

func TestMonitorObservesMalwareStyleInstall(t *testing.T) {
	// The Table III flavour: a "malware" drops startup scripts and
	// replaces system tools; the monitor sees every step.
	fs, mon := setup(t)
	mon.Watch("/etc")
	mon.Watch("/bin")
	for _, p := range []string{"/etc/init.d", "/etc/rc3.d", "/bin", "/usr/bin/bsd-port"} {
		if err := fs.MkdirAll(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.WriteFile("/etc/init.d/DbSecuritySpt", []byte("#!/bin/bash\n/tmp/malware")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/bin/netstat", bytes.Repeat([]byte{0x7F}, 8192)); err != nil {
		t.Fatal(err)
	}
	var sawInit, sawTool bool
	for _, a := range mon.Alerts() {
		if strings.Contains(a.Event.Path, "DbSecuritySpt") {
			sawInit = true
		}
		if strings.Contains(a.Event.Path, "netstat") {
			sawTool = true
		}
	}
	if !sawInit || !sawTool {
		t.Errorf("malware footprint incomplete: init=%v tool=%v\n%s", sawInit, sawTool, renderLog(mon))
	}
}

func renderLog(m *Monitor) string {
	var b strings.Builder
	for _, e := range m.Log() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func TestSignatureDetection(t *testing.T) {
	fs, mon := setup(t)
	mon.AddSignature(Signature{
		Name:      "test-backdoor",
		Fragments: []string{"DbSecuritySpt", "bsd-port/getty"},
	})
	var matched []SignatureMatch
	mon.OnSignatureMatch(func(m SignatureMatch) { matched = append(matched, m) })

	for _, d := range []string{"/etc/init.d", "/usr/bin/bsd-port"} {
		if err := fs.MkdirAll(d); err != nil {
			t.Fatal(err)
		}
	}
	// First fragment alone must not fire.
	if err := fs.WriteFile("/etc/init.d/DbSecuritySpt", []byte("#!")); err != nil {
		t.Fatal(err)
	}
	if len(mon.SignatureMatches()) != 0 {
		t.Fatal("signature fired on partial evidence")
	}
	// Completing the pattern fires exactly once.
	if err := fs.WriteFile("/usr/bin/bsd-port/getty", bytes.Repeat([]byte{1}, 512)); err != nil {
		t.Fatal(err)
	}
	got := mon.SignatureMatches()
	if len(got) != 1 || got[0].Signature != "test-backdoor" {
		t.Fatalf("matches = %+v", got)
	}
	if len(got[0].Evidence) != 2 {
		t.Errorf("evidence = %+v", got[0].Evidence)
	}
	if len(matched) != 1 {
		t.Errorf("callback fired %d times", len(matched))
	}
	// Re-touching the files must not re-fire.
	if err := fs.WriteFile("/usr/bin/bsd-port/getty", bytes.Repeat([]byte{2}, 512)); err != nil {
		t.Fatal(err)
	}
	if len(mon.SignatureMatches()) != 1 {
		t.Error("signature re-fired")
	}
}

func TestSignatureIgnoresReads(t *testing.T) {
	fs, mon := setup(t)
	mon.AddSignature(Signature{Name: "read-only", Fragments: []string{"key.pem"}})
	if _, err := fs.ReadFile("/mnt/box/secrets/key.pem"); err != nil {
		t.Fatal(err)
	}
	if len(mon.SignatureMatches()) != 0 {
		t.Error("signature fired on a read")
	}
	// Empty signatures are ignored.
	mon.AddSignature(Signature{Name: "empty"})
}

func TestGaniwSignatureShipsWithTableIIIFragments(t *testing.T) {
	sig := GaniwSignature()
	if sig.Name == "" || len(sig.Fragments) < 4 {
		t.Errorf("GaniwSignature = %+v", sig)
	}
}
