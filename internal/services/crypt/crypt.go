// Package crypt implements the data encryption case study (Section V-B2):
// transparent per-sector AES-256 encryption of the tenant's volume, the
// dm-crypt analogue. The same device decorator serves both deployments the
// paper compares — inside the encryption middle-box and inside the tenant
// VM — differing only in where its CPU cost is charged and whether the
// cipher work blocks the application's I/O path.
package crypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/blockdev"
	"repro/internal/metrics"
	"repro/internal/middlebox"
	"repro/internal/simtime"
)

// KeySize is the AES-256 key length.
const KeySize = 32

// Cipher encrypts and decrypts fixed-size sectors with AES-256 in CTR mode
// using an ESSIV-style per-sector IV (IV = AES_{sha256(key)}(sector)), so
// identical plaintext in different sectors yields different ciphertext —
// the construction dm-crypt uses.
type Cipher struct {
	data cipher.Block
	iv   cipher.Block
}

// NewCipher builds a cipher from a 32-byte key.
func NewCipher(key []byte) (*Cipher, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("crypt: key must be %d bytes, got %d", KeySize, len(key))
	}
	data, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	salt := sha256.Sum256(key)
	ivb, err := aes.NewCipher(salt[:])
	if err != nil {
		return nil, err
	}
	return &Cipher{data: data, iv: ivb}, nil
}

// sectorIV derives the ESSIV for a sector.
func (c *Cipher) sectorIV(sector uint64) [aes.BlockSize]byte {
	var plain, iv [aes.BlockSize]byte
	binary.LittleEndian.PutUint64(plain[:8], sector)
	c.iv.Encrypt(iv[:], plain[:])
	return iv
}

// XORSector transforms one sector in place; CTR mode makes encryption and
// decryption the same operation.
func (c *Cipher) XORSector(buf []byte, sector uint64) {
	iv := c.sectorIV(sector)
	stream := cipher.NewCTR(c.data, iv[:])
	stream.XORKeyStream(buf, buf)
}

// Transform encrypts/decrypts a run of sectors starting at sector.
func (c *Cipher) Transform(buf []byte, sector uint64, sectorSize int) {
	for off := 0; off < len(buf); off += sectorSize {
		end := off + sectorSize
		if end > len(buf) {
			end = len(buf)
		}
		c.XORSector(buf[off:end], sector)
		sector++
	}
}

// CostModel charges the cipher's CPU work. The real AES runs regardless
// (data is genuinely transformed); the model adds the scaled-down service
// time the testbed's dm-crypt would spend, so CPU accounting and latency
// behave like the paper's measurements.
type CostModel struct {
	// PerKiB is the modelled cipher cost per KiB of data.
	PerKiB time.Duration
	// CPU receives the charges (nil disables accounting).
	CPU *metrics.CPUAccount
	// Component names the charged component ("cipher" by default).
	Component string
}

// DefaultCostModel mirrors the calibration in EXPERIMENTS.md.
func DefaultCostModel(cpu *metrics.CPUAccount) CostModel {
	return CostModel{PerKiB: 500 * time.Nanosecond, CPU: cpu}
}

func (m CostModel) charge(n int) {
	if m.PerKiB <= 0 || n <= 0 {
		return
	}
	d := time.Duration(int64(m.PerKiB) * int64(n) / 1024)
	if d <= 0 {
		return
	}
	simtime.Sleep(d)
	if m.CPU != nil {
		comp := m.Component
		if comp == "" {
			comp = "cipher"
		}
		m.CPU.Charge(comp, d)
	}
}

// Device is the encrypting device decorator.
type Device struct {
	dev    blockdev.Device
	cipher *Cipher
	cost   CostModel
}

var _ blockdev.Device = (*Device)(nil)

// NewDevice wraps dev with transparent encryption.
func NewDevice(dev blockdev.Device, key []byte, cost CostModel) (*Device, error) {
	c, err := NewCipher(key)
	if err != nil {
		return nil, err
	}
	return &Device{dev: dev, cipher: c, cost: cost}, nil
}

// BlockSize implements blockdev.Device.
func (d *Device) BlockSize() int { return d.dev.BlockSize() }

// Blocks implements blockdev.Device.
func (d *Device) Blocks() uint64 { return d.dev.Blocks() }

// ReadAt implements blockdev.Device, decrypting after the read.
func (d *Device) ReadAt(p []byte, lba uint64) error {
	if err := d.dev.ReadAt(p, lba); err != nil {
		return err
	}
	d.cost.charge(len(p))
	d.cipher.Transform(p, lba, d.dev.BlockSize())
	return nil
}

// WriteAt implements blockdev.Device, encrypting before the write. The
// caller's buffer is not modified.
func (d *Device) WriteAt(p []byte, lba uint64) error {
	enc := append([]byte(nil), p...)
	d.cost.charge(len(p))
	d.cipher.Transform(enc, lba, d.dev.BlockSize())
	return d.dev.WriteAt(enc, lba)
}

// Flush implements blockdev.Device.
func (d *Device) Flush() error { return d.dev.Flush() }

// Close implements blockdev.Device.
func (d *Device) Close() error { return d.dev.Close() }

// Service returns the middle-box service factory for the encryption
// middle-box.
func Service(key []byte, cost CostModel) middlebox.ServiceFactory {
	return func(backend blockdev.Device) (blockdev.Device, error) {
		return NewDevice(backend, key, cost)
	}
}
