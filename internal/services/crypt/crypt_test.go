package crypt

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/blockdev"
	"repro/internal/metrics"
)

func testKey() []byte {
	key := make([]byte, KeySize)
	for i := range key {
		key[i] = byte(i*7 + 3)
	}
	return key
}

func TestNewCipherKeyValidation(t *testing.T) {
	if _, err := NewCipher(make([]byte, 16)); err == nil {
		t.Error("short key: want error")
	}
	if _, err := NewCipher(testKey()); err != nil {
		t.Errorf("NewCipher: %v", err)
	}
}

func TestCipherInvolutive(t *testing.T) {
	c, err := NewCipher(testKey())
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte("secret! "), 64)
	buf := append([]byte(nil), want...)
	c.Transform(buf, 100, 512)
	if bytes.Equal(buf, want) {
		t.Fatal("Transform did not change the data")
	}
	c.Transform(buf, 100, 512)
	if !bytes.Equal(buf, want) {
		t.Error("double Transform is not identity")
	}
}

func TestCipherSectorDependence(t *testing.T) {
	c, err := NewCipher(testKey())
	if err != nil {
		t.Fatal(err)
	}
	a := bytes.Repeat([]byte{0}, 512)
	b := bytes.Repeat([]byte{0}, 512)
	c.XORSector(a, 1)
	c.XORSector(b, 2)
	if bytes.Equal(a, b) {
		t.Error("identical plaintext in different sectors encrypts identically (ESSIV broken)")
	}
}

func TestCipherRoundTripProperty(t *testing.T) {
	c, err := NewCipher(testKey())
	if err != nil {
		t.Fatal(err)
	}
	f := func(data []byte, sector uint64) bool {
		if len(data) == 0 {
			return true
		}
		buf := append([]byte(nil), data...)
		c.Transform(buf, sector, 512)
		c.Transform(buf, sector, 512)
		return bytes.Equal(buf, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeviceTransparency(t *testing.T) {
	disk, err := blockdev.NewMemDisk(512, 128)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewDevice(disk, testKey(), CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte("plaintext"), 114)[:1024]
	if err := dev.WriteAt(want, 8); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, 1024)
	if err := dev.ReadAt(got, 8); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("decrypted data differs from plaintext")
	}
	// The backing device must hold ciphertext.
	raw := make([]byte, 1024)
	if err := disk.ReadAt(raw, 8); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(raw, want) {
		t.Error("backing device holds plaintext")
	}
	if bytes.Contains(raw, []byte("plaintext")) {
		t.Error("plaintext fragments leak to the backing device")
	}
}

func TestDeviceDoesNotMutateCallerBuffer(t *testing.T) {
	disk, _ := blockdev.NewMemDisk(512, 16)
	dev, err := NewDevice(disk, testKey(), CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	buf := bytes.Repeat([]byte{0x55}, 512)
	orig := append([]byte(nil), buf...)
	if err := dev.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, orig) {
		t.Error("WriteAt mutated the caller's buffer")
	}
}

func TestWrongKeyReadsGarbage(t *testing.T) {
	disk, _ := blockdev.NewMemDisk(512, 16)
	dev1, err := NewDevice(disk, testKey(), CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{1}, 512)
	if err := dev1.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}
	otherKey := testKey()
	otherKey[0] ^= 0xFF
	dev2, err := NewDevice(disk, otherKey, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if err := dev2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, want) {
		t.Error("wrong key decrypted successfully")
	}
}

func TestCostModelCharges(t *testing.T) {
	cpu := metrics.NewCPUAccount()
	m := CostModel{PerKiB: time.Millisecond, CPU: cpu}
	start := time.Now()
	m.charge(4096)
	if el := time.Since(start); el < 3*time.Millisecond {
		t.Errorf("charge slept %v, want ~4ms", el)
	}
	if cpu.Busy("cipher") < 3*time.Millisecond {
		t.Errorf("CPU charged %v", cpu.Busy("cipher"))
	}
	// Named component.
	m2 := CostModel{PerKiB: time.Millisecond, CPU: cpu, Component: "dm-crypt"}
	m2.charge(1024)
	if cpu.Busy("dm-crypt") == 0 {
		t.Error("component name ignored")
	}
	// Zero model is free.
	CostModel{}.charge(1 << 20)
}

func TestServiceFactory(t *testing.T) {
	disk, _ := blockdev.NewMemDisk(512, 16)
	f := Service(testKey(), CostModel{})
	dev, err := f(disk)
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	if err := dev.WriteAt(make([]byte, 512), 0); err != nil {
		t.Fatal(err)
	}
	if err := dev.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
	// Bad key fails at build time.
	if _, err := Service([]byte("short"), CostModel{})(disk); err == nil {
		t.Error("short key: want error")
	}
}
