// Package replica implements the data reliability case study (Section
// V-B3): a tenant-defined replica dispatch service. Writes are copied to
// every replica volume in a strictly identical order; reads alternate over
// the available replicas, aggregating their throughput; an unresponsive
// replica is evicted from future operations and its unfinished reads are
// re-served from another active replica.
package replica

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/blockdev"
	"repro/internal/middlebox"
)

// ErrAllReplicasFailed reports that no replica remains to serve I/O.
var ErrAllReplicasFailed = errors.New("replica: all replicas failed")

// State describes one replica's health.
type State struct {
	Name  string
	Alive bool
	// LastErr is the error that evicted the replica.
	LastErr error
	// Reads/Writes count operations served.
	Reads  int64
	Writes int64
}

type member struct {
	name    string
	dev     blockdev.Device
	alive   bool
	lastErr error
	reads   int64
	writes  int64
}

// Dispatcher is the replica fan-out device.
type Dispatcher struct {
	mu        sync.Mutex
	members   []*member
	next      int
	onEvict   func(name string, err error)
	onReadmit func(name string)

	// writeMu serializes writes so every replica sees one order. Flush and
	// Close take it too: a sync or teardown concurrent with an in-flight
	// fan-out must not observe a replica the write hasn't reached yet.
	writeMu sync.Mutex
}

var _ blockdev.Device = (*Dispatcher)(nil)

// New builds a dispatcher over the given replicas (at least one). All
// replicas must share the primary's geometry.
func New(primary blockdev.Device, extras ...NamedDevice) (*Dispatcher, error) {
	if primary == nil {
		return nil, errors.New("replica: primary device required")
	}
	d := &Dispatcher{}
	d.members = append(d.members, &member{name: "primary", dev: primary, alive: true})
	for _, e := range extras {
		if e.Dev.BlockSize() != primary.BlockSize() || e.Dev.Blocks() != primary.Blocks() {
			return nil, fmt.Errorf("replica: %q geometry %d/%d differs from primary %d/%d",
				e.Name, e.Dev.BlockSize(), e.Dev.Blocks(), primary.BlockSize(), primary.Blocks())
		}
		d.members = append(d.members, &member{name: e.Name, dev: e.Dev, alive: true})
	}
	return d, nil
}

// NamedDevice pairs a replica volume with a diagnostic name.
type NamedDevice struct {
	Name string
	Dev  blockdev.Device
}

// OnEvict registers a callback fired when a replica is removed.
func (d *Dispatcher) OnEvict(fn func(name string, err error)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.onEvict = fn
}

// OnReadmit registers a callback fired when an evicted replica rejoins
// after resync.
func (d *Dispatcher) OnReadmit(fn func(name string)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.onReadmit = fn
}

// States returns each replica's health and counters.
func (d *Dispatcher) States() []State {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]State, len(d.members))
	for i, m := range d.members {
		out[i] = State{Name: m.name, Alive: m.alive, LastErr: m.lastErr, Reads: m.reads, Writes: m.writes}
	}
	return out
}

// AliveCount returns the number of serving replicas.
func (d *Dispatcher) AliveCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, m := range d.members {
		if m.alive {
			n++
		}
	}
	return n
}

// evict removes a replica from future operations.
func (d *Dispatcher) evict(m *member, err error) {
	d.mu.Lock()
	already := !m.alive
	m.alive = false
	m.lastErr = err
	cb := d.onEvict
	d.mu.Unlock()
	if !already && cb != nil {
		cb(m.name, err)
	}
}

// BlockSize implements blockdev.Device.
func (d *Dispatcher) BlockSize() int { return d.members[0].dev.BlockSize() }

// Blocks implements blockdev.Device.
func (d *Dispatcher) Blocks() uint64 { return d.members[0].dev.Blocks() }

// WriteAt copies the write to every live replica. Failing replicas are
// evicted; the write succeeds while at least one replica holds it. The
// write lock guarantees the same sequence ordering on all volumes.
func (d *Dispatcher) WriteAt(p []byte, lba uint64) error {
	d.writeMu.Lock()
	defer d.writeMu.Unlock()

	live := d.liveMembers()
	if len(live) == 0 {
		return ErrAllReplicasFailed
	}
	// Fan out in parallel; ordering across commands is preserved by the
	// write lock, so each replica sees the identical sequence.
	var wg sync.WaitGroup
	errs := make([]error, len(live))
	for i, m := range live {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			errs[i] = m.dev.WriteAt(p, lba)
		}(i, m)
	}
	wg.Wait()
	ok := 0
	for i, m := range live {
		if errs[i] != nil {
			d.evict(m, errs[i])
			continue
		}
		d.mu.Lock()
		m.writes++
		d.mu.Unlock()
		ok++
	}
	if ok == 0 {
		return fmt.Errorf("%w: last error: %v", ErrAllReplicasFailed, errs[0])
	}
	return nil
}

// ReadAt serves the read from one replica, chosen round-robin; on failure
// the replica is evicted and the read retries on the next one — the
// unfinished read re-served from an active replica.
func (d *Dispatcher) ReadAt(p []byte, lba uint64) error {
	for {
		m := d.pick()
		if m == nil {
			return ErrAllReplicasFailed
		}
		err := m.dev.ReadAt(p, lba)
		if err == nil {
			d.mu.Lock()
			m.reads++
			d.mu.Unlock()
			return nil
		}
		d.evict(m, err)
	}
}

// pick returns the next live replica round-robin.
func (d *Dispatcher) pick() *member {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.members)
	for i := 0; i < n; i++ {
		m := d.members[(d.next+i)%n]
		if m.alive {
			d.next = (d.next + i + 1) % n
			return m
		}
	}
	return nil
}

func (d *Dispatcher) liveMembers() []*member {
	d.mu.Lock()
	defer d.mu.Unlock()
	var live []*member
	for _, m := range d.members {
		if m.alive {
			live = append(live, m)
		}
	}
	return live
}

// Flush syncs all live replicas. It holds the write lock so a sync cannot
// slip between a fan-out's landing on one replica and another — every
// replica is synced at the same write boundary.
func (d *Dispatcher) Flush() error {
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	live := d.liveMembers()
	if len(live) == 0 {
		return ErrAllReplicasFailed
	}
	ok := 0
	for _, m := range live {
		if err := m.dev.Flush(); err != nil {
			d.evict(m, err)
			continue
		}
		ok++
	}
	if ok == 0 {
		return ErrAllReplicasFailed
	}
	return nil
}

// Close closes every replica, reporting the first error. The write lock
// orders it after any in-flight fan-out.
func (d *Dispatcher) Close() error {
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	d.mu.Lock()
	members := append([]*member(nil), d.members...)
	d.mu.Unlock()
	var first error
	for _, m := range members {
		if err := m.dev.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// resyncChunkBlocks is the copy-from-live granularity during re-admission.
const resyncChunkBlocks = 64

// Probe checks every evicted replica once and re-admits those that respond,
// after resynchronizing their content from a live replica — Figure 13's
// one-way eviction turned into full membership recovery. It returns the
// number of replicas re-admitted. Callers drive it from a health-probe
// loop or a deterministic fault schedule.
func (d *Dispatcher) Probe() int {
	d.mu.Lock()
	var dead []*member
	for _, m := range d.members {
		if !m.alive {
			dead = append(dead, m)
		}
	}
	d.mu.Unlock()
	readmitted := 0
	for _, m := range dead {
		if d.tryReadmit(m) {
			readmitted++
		}
	}
	return readmitted
}

// StartProbing runs Probe every interval until the returned stop function
// is called (the background health prober for production wiring; tests call
// Probe directly from fault schedules).
func (d *Dispatcher) StartProbing(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				d.Probe()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// tryReadmit probes one evicted replica and, when it responds, copies the
// full content from a live replica before marking it alive. The write lock
// is held across the copy and the re-admission, so the resynced replica
// rejoins exactly at a write boundary and never misses or reorders a write.
func (d *Dispatcher) tryReadmit(m *member) bool {
	bs := d.BlockSize()
	scratch := make([]byte, bs)
	if err := m.dev.ReadAt(scratch, 0); err != nil {
		return false // still down
	}
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	src := d.pick()
	if src == nil || src == m {
		return false
	}
	blocks := d.Blocks()
	buf := make([]byte, resyncChunkBlocks*bs)
	for lba := uint64(0); lba < blocks; lba += resyncChunkBlocks {
		n := uint64(resyncChunkBlocks)
		if rem := blocks - lba; rem < n {
			n = rem
		}
		p := buf[:n*uint64(bs)]
		if err := src.dev.ReadAt(p, lba); err != nil {
			return false
		}
		if err := m.dev.WriteAt(p, lba); err != nil {
			return false
		}
	}
	d.mu.Lock()
	m.alive = true
	m.lastErr = nil
	cb := d.onReadmit
	d.mu.Unlock()
	if cb != nil {
		cb(m.name)
	}
	return true
}

// Service returns the middle-box service factory: the relay's backend
// becomes the primary and extras are the replica volumes attached to the
// middle-box.
func Service(extras ...NamedDevice) middlebox.ServiceFactory {
	return func(backend blockdev.Device) (blockdev.Device, error) {
		return New(backend, extras...)
	}
}
