package replica

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/blockdev"
)

func disks(t *testing.T, n int) []*blockdev.MemDisk {
	t.Helper()
	out := make([]*blockdev.MemDisk, n)
	for i := range out {
		d, err := blockdev.NewMemDisk(512, 256)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = d
	}
	return out
}

func dispatcher(t *testing.T, ds []*blockdev.MemDisk) *Dispatcher {
	t.Helper()
	var extras []NamedDevice
	for i, d := range ds[1:] {
		extras = append(extras, NamedDevice{Name: fmt.Sprintf("replica%d", i+1), Dev: d})
	}
	disp, err := New(ds[0], extras...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return disp
}

func TestWriteFansOutToAllReplicas(t *testing.T) {
	ds := disks(t, 3)
	disp := dispatcher(t, ds)
	want := bytes.Repeat([]byte{0xEF}, 1024)
	if err := disp.WriteAt(want, 10); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	for i, d := range ds {
		got := make([]byte, 1024)
		if err := d.ReadAt(got, 10); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("replica %d missing the write", i)
		}
	}
}

func TestReadsRoundRobin(t *testing.T) {
	ds := disks(t, 3)
	disp := dispatcher(t, ds)
	if err := disp.WriteAt(make([]byte, 512), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	for i := 0; i < 9; i++ {
		if err := disp.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range disp.States() {
		if s.Reads != 3 {
			t.Errorf("replica %s served %d reads, want 3 (round robin)", s.Name, s.Reads)
		}
	}
}

func TestReplicaFailureEvictsAndContinues(t *testing.T) {
	prim, err := blockdev.NewMemDisk(512, 256)
	if err != nil {
		t.Fatal(err)
	}
	r2raw, _ := blockdev.NewMemDisk(512, 256)
	r2 := blockdev.NewFaultDisk(r2raw)
	r3, _ := blockdev.NewMemDisk(512, 256)
	disp, err := New(prim,
		NamedDevice{Name: "r2", Dev: r2},
		NamedDevice{Name: "r3", Dev: r3})
	if err != nil {
		t.Fatal(err)
	}
	var evicted []string
	disp.OnEvict(func(name string, err error) { evicted = append(evicted, name) })

	want := bytes.Repeat([]byte{7}, 512)
	if err := disp.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}
	// Fail r2 (the paper's injected error at the 60th second).
	r2.Trip(errors.New("iscsi connection closed"))
	// Reads keep succeeding; eventually r2 is hit and evicted.
	buf := make([]byte, 512)
	for i := 0; i < 6; i++ {
		if err := disp.ReadAt(buf, 0); err != nil {
			t.Fatalf("ReadAt during failure: %v", err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatal("read served stale data")
		}
	}
	if disp.AliveCount() != 2 {
		t.Errorf("AliveCount = %d, want 2", disp.AliveCount())
	}
	if len(evicted) != 1 || evicted[0] != "r2" {
		t.Errorf("evicted = %v, want [r2]", evicted)
	}
	// Writes continue on the remaining replicas.
	if err := disp.WriteAt(want, 5); err != nil {
		t.Errorf("WriteAt after eviction: %v", err)
	}
	states := disp.States()
	for _, s := range states {
		if s.Name == "r2" {
			if s.Alive || s.LastErr == nil {
				t.Errorf("r2 state = %+v", s)
			}
		}
	}
}

func TestAllReplicasFailed(t *testing.T) {
	raw, _ := blockdev.NewMemDisk(512, 16)
	fd := blockdev.NewFaultDisk(raw)
	disp, err := New(fd)
	if err != nil {
		t.Fatal(err)
	}
	fd.Trip(errors.New("gone"))
	if err := disp.ReadAt(make([]byte, 512), 0); !errors.Is(err, ErrAllReplicasFailed) {
		t.Errorf("ReadAt err = %v, want ErrAllReplicasFailed", err)
	}
	if err := disp.WriteAt(make([]byte, 512), 0); !errors.Is(err, ErrAllReplicasFailed) {
		t.Errorf("WriteAt err = %v, want ErrAllReplicasFailed", err)
	}
	if err := disp.Flush(); !errors.Is(err, ErrAllReplicasFailed) {
		t.Errorf("Flush err = %v, want ErrAllReplicasFailed", err)
	}
}

func TestGeometryMismatchRejected(t *testing.T) {
	a, _ := blockdev.NewMemDisk(512, 256)
	b, _ := blockdev.NewMemDisk(512, 128)
	if _, err := New(a, NamedDevice{Name: "b", Dev: b}); err == nil {
		t.Error("geometry mismatch: want error")
	}
	if _, err := New(nil); err == nil {
		t.Error("nil primary: want error")
	}
}

func TestConcurrentWritesStayConsistent(t *testing.T) {
	// Property: after concurrent writes to distinct blocks, all replicas
	// hold identical content.
	ds := disks(t, 3)
	disp := dispatcher(t, ds)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				data := bytes.Repeat([]byte{byte(g*32 + i)}, 512)
				if err := disp.WriteAt(data, uint64(g*16+i%16)); err != nil {
					t.Errorf("WriteAt: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Byte-identical replicas.
	for lba := uint64(0); lba < 128; lba++ {
		ref := make([]byte, 512)
		if err := ds[0].ReadAt(ref, lba); err != nil {
			t.Fatal(err)
		}
		for i, d := range ds[1:] {
			got := make([]byte, 512)
			if err := d.ReadAt(got, lba); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, ref) {
				t.Fatalf("replica %d diverges at lba %d", i+1, lba)
			}
		}
	}
}

func TestReplicaConsistencyProperty(t *testing.T) {
	// Property: any sequential op sequence leaves replicas identical and
	// reads always return the latest write.
	type op struct {
		LBA  uint8
		Fill byte
	}
	f := func(ops []op) bool {
		a, _ := blockdev.NewMemDisk(64, 64)
		b, _ := blockdev.NewMemDisk(64, 64)
		c, _ := blockdev.NewMemDisk(64, 64)
		disp, err := New(a, NamedDevice{Name: "b", Dev: b}, NamedDevice{Name: "c", Dev: c})
		if err != nil {
			return false
		}
		model := make(map[uint64]byte)
		for _, o := range ops {
			lba := uint64(o.LBA % 64)
			if err := disp.WriteAt(bytes.Repeat([]byte{o.Fill}, 64), lba); err != nil {
				return false
			}
			model[lba] = o.Fill
		}
		buf := make([]byte, 64)
		for lba, fill := range model {
			// Each read may hit a different replica; all must agree.
			for i := 0; i < 3; i++ {
				if err := disp.ReadAt(buf, lba); err != nil {
					return false
				}
				if buf[0] != fill {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestServiceFactoryBuildsDispatcher(t *testing.T) {
	backend, _ := blockdev.NewMemDisk(512, 64)
	r2, _ := blockdev.NewMemDisk(512, 64)
	dev, err := Service(NamedDevice{Name: "r2", Dev: r2})(backend)
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	if err := dev.WriteAt(make([]byte, 512), 0); err != nil {
		t.Fatal(err)
	}
	if err := dev.Flush(); err != nil {
		t.Fatal(err)
	}
	if dev.BlockSize() != 512 || dev.Blocks() != 64 {
		t.Error("geometry delegation wrong")
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
}
