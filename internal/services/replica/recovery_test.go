package replica

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/faults"
	"repro/internal/testutil"
)

// gateDev wraps a device so a test can hold a write in flight and observe
// whether Flush overlaps it.
type gateDev struct {
	blockdev.Device
	started          chan struct{}
	release          chan struct{}
	inFlight         atomic.Int32
	flushDuringWrite atomic.Bool
}

func (d *gateDev) WriteAt(p []byte, lba uint64) error {
	d.inFlight.Add(1)
	select {
	case d.started <- struct{}{}:
	default:
	}
	<-d.release
	err := d.Device.WriteAt(p, lba)
	d.inFlight.Add(-1)
	return err
}

func (d *gateDev) Flush() error {
	if d.inFlight.Load() != 0 {
		d.flushDuringWrite.Store(true)
	}
	return d.Device.Flush()
}

// TestFlushSerializesWithWrites is the regression test for the missing
// write lock in Flush: a sync racing an in-flight fan-out must not reach a
// replica before the write lands on it.
func TestFlushSerializesWithWrites(t *testing.T) {
	ds := disks(t, 2)
	gate := &gateDev{Device: ds[1], started: make(chan struct{}, 1), release: make(chan struct{})}
	disp, err := New(ds[0], NamedDevice{Name: "gated", Dev: gate})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := disp.WriteAt(make([]byte, 512), 0); err != nil {
			t.Errorf("WriteAt: %v", err)
		}
	}()
	<-gate.started
	go func() {
		defer wg.Done()
		if err := disp.Flush(); err != nil {
			t.Errorf("Flush: %v", err)
		}
	}()
	// Give the Flush goroutine time to hit the write lock (with the bug it
	// instead reaches the gated replica while the write is parked there).
	time.Sleep(5 * time.Millisecond)
	close(gate.release)
	wg.Wait()
	if gate.flushDuringWrite.Load() {
		t.Fatal("Flush reached a replica while a fan-out write was still in flight")
	}
}

// TestConcurrentFlushAndWrites lets -race arbitrate: writers, flushers, and
// closers all exercising the dispatcher at once.
func TestConcurrentFlushAndWrites(t *testing.T) {
	ds := disks(t, 3)
	disp := dispatcher(t, ds)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			p := bytes.Repeat([]byte{byte(g + 1)}, 512)
			for i := 0; i < 50; i++ {
				if err := disp.WriteAt(p, uint64(g*8+i%8)); err != nil {
					t.Errorf("WriteAt: %v", err)
					return
				}
			}
		}(g)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := disp.Flush(); err != nil {
					t.Errorf("Flush: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestEvictedReplicaReadmitsAfterResync is the Figure 13 kill/heal chaos
// scenario at the service level: a replica dies mid-workload (evicted),
// heals, and a probe re-admits it after copy-from-live resync; at the end it
// must be byte-identical to the primary. Fault timing is schedule-driven —
// the clock ticks once per completed write.
func TestEvictedReplicaReadmitsAfterResync(t *testing.T) {
	ds := disks(t, 3)
	fd := blockdev.NewFaultDisk(ds[2])
	disp, err := New(ds[0],
		NamedDevice{Name: "replica1", Dev: ds[1]},
		NamedDevice{Name: "replica2", Dev: fd})
	if err != nil {
		t.Fatal(err)
	}
	var readmitted atomic.Int32
	disp.OnReadmit(func(name string) {
		if name == "replica2" {
			readmitted.Add(1)
		}
	})

	wantErr := errors.New("replica2 host down")
	sched := faults.NewSchedule()
	sched.At(10, "kill-replica2", func() { fd.Trip(wantErr) })
	sched.At(25, "heal-replica2", func() {
		fd.Heal()
		if n := disp.Probe(); n != 1 {
			t.Errorf("Probe re-admitted %d replicas, want 1", n)
		}
	})

	const n = 40
	for i := 0; i < n; i++ {
		p := make([]byte, 512)
		for k := range p {
			p[k] = byte(i*13 + k)
		}
		if err := disp.WriteAt(p, uint64(i%64)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		sched.Step()
		switch {
		case sched.Now() == 11 && disp.AliveCount() != 2:
			t.Fatalf("replica2 not evicted after kill: alive=%d", disp.AliveCount())
		case sched.Now() == 26 && disp.AliveCount() != 3:
			t.Fatalf("replica2 not re-admitted after heal: alive=%d", disp.AliveCount())
		}
	}
	if err := disp.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := readmitted.Load(); got != 1 {
		t.Fatalf("OnReadmit fired %d times, want 1", got)
	}

	// The healed replica must be byte-identical to the primary — including
	// the writes it missed while evicted (covered by resync) and the ones
	// after re-admission (covered by fan-out).
	pri := make([]byte, 512)
	rep := make([]byte, 512)
	for lba := uint64(0); lba < ds[0].Blocks(); lba++ {
		if err := ds[0].ReadAt(pri, lba); err != nil {
			t.Fatal(err)
		}
		if err := ds[2].ReadAt(rep, lba); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pri, rep) {
			t.Fatalf("replica2 diverges from primary at lba %d after re-admission", lba)
		}
	}
}

// TestProbeKeepsDeadReplicaEvicted: a probe against a still-failing replica
// must not re-admit it.
func TestProbeKeepsDeadReplicaEvicted(t *testing.T) {
	ds := disks(t, 2)
	fd := blockdev.NewFaultDisk(ds[1])
	disp, err := New(ds[0], NamedDevice{Name: "replica1", Dev: fd})
	if err != nil {
		t.Fatal(err)
	}
	fd.Trip(errors.New("down"))
	if err := disp.WriteAt(make([]byte, 512), 0); err != nil {
		t.Fatalf("WriteAt with one live replica: %v", err)
	}
	if disp.AliveCount() != 1 {
		t.Fatalf("alive = %d, want 1", disp.AliveCount())
	}
	if n := disp.Probe(); n != 0 {
		t.Fatalf("Probe re-admitted %d, want 0", n)
	}
	if disp.AliveCount() != 1 {
		t.Fatal("dead replica re-admitted without heal")
	}
	// StartProbing drives the same path in the background; it must notice
	// the heal eventually.
	stop := disp.StartProbing(time.Millisecond)
	defer stop()
	fd.Heal()
	testutil.WaitFor(t, 5*time.Second, "background prober to re-admit the healed replica",
		func() bool { return disp.AliveCount() == 2 })
}
