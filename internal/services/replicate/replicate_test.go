package replicate

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/cas"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/testutil"
)

const (
	testBS     = 512
	testBlocks = 256 // 128 KiB primary
	testChunk  = 4096
	testSlots  = (testBlocks*testBS + testChunk - 1) / testChunk
)

// faultBackend wraps a cas backend with a toggleable write fault, the
// injection point for eviction tests.
type faultBackend struct {
	cas.Backend
	mu   sync.Mutex
	fail error
}

func (f *faultBackend) setFail(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fail = err
}

func (f *faultBackend) PutChunk(id cas.ID, data []byte) error {
	f.mu.Lock()
	err := f.fail
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.Backend.PutChunk(id, data)
}

func (f *faultBackend) SetMapping(slot uint64, id cas.ID) error {
	f.mu.Lock()
	err := f.fail
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.Backend.SetMapping(slot, id)
}

func memStores(t *testing.T, n int) []NamedStore {
	t.Helper()
	out := make([]NamedStore, n)
	for i := range out {
		s, err := cas.Open(cas.NewMemBackend(testSlots), testChunk, testSlots)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = NamedStore{Name: fmt.Sprintf("backend%d", i), Store: s}
	}
	return out
}

func newBox(t *testing.T, dir string, stores []NamedStore, quorum int) *Box {
	t.Helper()
	disk, err := blockdev.NewMemDisk(testBS, testBlocks)
	if err != nil {
		t.Fatal(err)
	}
	return newBoxOn(t, dir, disk, stores, quorum)
}

func newBoxOn(t *testing.T, dir string, primary blockdev.Device, stores []NamedStore, quorum int) *Box {
	t.Helper()
	b, err := New(Config{
		Name:          "t0",
		Quorum:        quorum,
		ChunkSize:     testChunk,
		WALDir:        dir,
		HedgeDelay:    200 * time.Millisecond,
		ProbeInterval: 10 * time.Millisecond,
		Obs:           obs.NewRegistry(),
	}, primary, stores)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return b
}

// waitDrained waits until every journaled write is quorum-committed AND
// every backend (not just a quorum) has applied its queue.
func waitDrained(t *testing.T, b *Box) {
	t.Helper()
	testutil.WaitFor(t, 5*time.Second, "box to drain", b.Drained)
}

// primaryHash computes the primary's logical content hash the same way a
// backend's LogicalHash does (chunk-sized frames, tail zero-padded).
func primaryHash(t *testing.T, b *Box) cas.ID {
	t.Helper()
	s, err := cas.Open(cas.NewMemBackend(testSlots), testChunk, testSlots)
	if err != nil {
		t.Fatal(err)
	}
	for slot := uint64(0); slot < testSlots; slot++ {
		data, err := b.snapshotChunk(slot)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Write(slot, data); err != nil {
			t.Fatal(err)
		}
	}
	h, err := s.LogicalHash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func writeBlocks(t *testing.T, b *Box, rng *rand.Rand, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		p := make([]byte, testBS*(1+rng.Intn(4)))
		rng.Read(p)
		lba := uint64(rng.Intn(testBlocks - len(p)/testBS))
		if err := b.WriteAt(p, lba); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
}

func TestFanOutConverges(t *testing.T) {
	stores := memStores(t, 3)
	b := newBox(t, t.TempDir(), stores, 2)
	defer b.Close()
	rng := rand.New(rand.NewSource(1))
	writeBlocks(t, b, rng, 50)
	waitDrained(t, b)
	want := primaryHash(t, b)
	for _, ns := range stores {
		got, err := ns.Store.LogicalHash()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("backend %s diverged from primary", ns.Name)
		}
	}
	if p := b.log.Pending(); p != 0 {
		t.Fatalf("journal still holds %d uncommitted records", p)
	}
}

func TestReadBackAndGeometry(t *testing.T) {
	stores := memStores(t, 2)
	b := newBox(t, t.TempDir(), stores, 1)
	defer b.Close()
	if b.BlockSize() != testBS || b.Blocks() != testBlocks {
		t.Fatalf("geometry = %d/%d", b.BlockSize(), b.Blocks())
	}
	p := bytes.Repeat([]byte{0xAB}, testBS)
	if err := b.WriteAt(p, 7); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, testBS)
	if err := b.ReadAt(got, 7); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p) {
		t.Fatal("read-back mismatch")
	}
	if err := b.WriteAt(p[:100], 0); !errors.Is(err, blockdev.ErrBadLength) {
		t.Fatalf("short write err = %v", err)
	}
	if err := b.WriteAt(p, testBlocks); !errors.Is(err, blockdev.ErrOutOfRange) {
		t.Fatalf("out-of-range err = %v", err)
	}
	if err := b.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
}

func TestDedupAcrossBackends(t *testing.T) {
	stores := memStores(t, 2)
	b := newBox(t, t.TempDir(), stores, 2)
	defer b.Close()
	chunk := bytes.Repeat([]byte{0x5A}, testChunk)
	// The same content at 4 different chunk-aligned offsets: one stored
	// chunk, three dedup hits per backend.
	for i := 0; i < 4; i++ {
		if err := b.WriteAt(chunk, uint64(i*testChunk/testBS)); err != nil {
			t.Fatal(err)
		}
	}
	waitDrained(t, b)
	for _, ns := range stores {
		st := ns.Store.Stats()
		if st.LiveChunks != 1 {
			t.Fatalf("%s live chunks = %d, want 1", ns.Name, st.LiveChunks)
		}
		if st.DedupHits < 3 {
			t.Fatalf("%s dedup hits = %d, want ≥ 3", ns.Name, st.DedupHits)
		}
	}
}

func TestEvictionAndResyncReadmits(t *testing.T) {
	fb := &faultBackend{Backend: cas.NewMemBackend(testSlots)}
	flaky, err := cas.Open(fb, testChunk, testSlots)
	if err != nil {
		t.Fatal(err)
	}
	stores := append(memStores(t, 2), NamedStore{Name: "flaky", Store: flaky})
	b := newBox(t, t.TempDir(), stores, 2)
	defer b.Close()

	rng := rand.New(rand.NewSource(2))
	writeBlocks(t, b, rng, 10)
	waitDrained(t, b)

	fb.setFail(errors.New("injected"))
	writeBlocks(t, b, rng, 10)
	waitDrained(t, b)
	testutil.WaitFor(t, 2*time.Second, "flaky backend eviction", func() bool { return !b.targets[2].Healthy() })

	// Heal; the prober must resync and readmit.
	fb.setFail(nil)
	testutil.WaitFor(t, 2*time.Second, "flaky backend readmission", b.targets[2].Healthy)
	writeBlocks(t, b, rng, 5)
	waitDrained(t, b)
	want := primaryHash(t, b)
	got, err := flaky.LogicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("readmitted backend diverged from primary")
	}
}

func TestHedgedReturnBelowQuorum(t *testing.T) {
	// Both backends fail: writes can't reach quorum 2 but must still
	// return within the hedge delay, leaving the journal record pending.
	fb1 := &faultBackend{Backend: cas.NewMemBackend(testSlots)}
	fb2 := &faultBackend{Backend: cas.NewMemBackend(testSlots)}
	s1, err := cas.Open(fb1, testChunk, testSlots)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := cas.Open(fb2, testChunk, testSlots)
	if err != nil {
		t.Fatal(err)
	}
	fb1.setFail(errors.New("down"))
	fb2.setFail(errors.New("down"))
	stores := []NamedStore{{Name: "a", Store: s1}, {Name: "b", Store: s2}}
	b := newBox(t, t.TempDir(), stores, 2)
	defer b.Close()

	p := bytes.Repeat([]byte{1}, testBS)
	start := time.Now()
	if err := b.WriteAt(p, 0); err != nil {
		t.Fatalf("hedged write failed hard: %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("hedged write blocked past the hedge delay")
	}
	if b.Pending() == 0 {
		t.Fatal("below-quorum write should stay pending")
	}
	// Heal both: the prober resyncs, retro-acks, and the pending record
	// commits.
	fb1.setFail(nil)
	fb2.setFail(nil)
	waitDrained(t, b)
	if p := b.log.Pending(); p != 0 {
		t.Fatalf("journal still holds %d records after heal", p)
	}
}

// TestCrashKillRecoveryConverges is the acceptance crash test: the box is
// killed mid-dispatch at seed-chosen write indices and stages, rebuilt
// over the same journal and backends, and the journal replay must drive
// every backend to content-hash equality with a no-crash baseline.
func TestCrashKillRecoveryConverges(t *testing.T) {
	const writes = 40
	// Baseline: the same seeded workload, no crash.
	baseStores := memStores(t, 3)
	baseBox := newBox(t, t.TempDir(), baseStores, 2)
	writeBlocks(t, baseBox, rand.New(rand.NewSource(77)), writes)
	waitDrained(t, baseBox)
	baseline, err := baseStores[0].Store.LogicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if err := baseBox.Close(); err != nil {
		t.Fatal(err)
	}

	for _, seed := range []int64{1, 42, 1337} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			killIdx := faults.CrashPoint(seed, 1, writes-1)
			stage := StageAppended
			if seed%2 == 0 {
				stage = StagePrimary
			}
			dir := t.TempDir()
			disk, err := blockdev.NewMemDisk(testBS, testBlocks)
			if err != nil {
				t.Fatal(err)
			}
			stores := memStores(t, 3)
			box := newBoxOn(t, dir, disk, stores, 2)
			var appended uint64
			box.SetKillHook(func(seq uint64, st string) bool {
				if st != stage {
					return false
				}
				appended++
				return appended == killIdx
			})

			rng := rand.New(rand.NewSource(77))
			killed := -1
			for i := 0; i < writes; i++ {
				p := make([]byte, testBS*(1+rng.Intn(4)))
				rng.Read(p)
				lba := uint64(rng.Intn(testBlocks - len(p)/testBS))
				err := box.WriteAt(p, lba)
				if errors.Is(err, ErrKilled) {
					killed = i
					break
				}
				if err != nil {
					t.Fatalf("write %d: %v", i, err)
				}
			}
			if killed < 0 {
				t.Fatalf("kill hook never fired (killIdx=%d stage=%s)", killIdx, stage)
			}

			// Recover: same journal dir, same primary device, same stores.
			box2 := newBoxOn(t, dir, disk, stores, 2)
			if box2.Replayed() == 0 {
				t.Fatal("recovery replayed nothing despite a mid-dispatch kill")
			}
			// Resume the workload, re-issuing the killed write: replay
			// already applied it, and re-application is idempotent.
			rng = rand.New(rand.NewSource(77))
			for i := 0; i < writes; i++ {
				p := make([]byte, testBS*(1+rng.Intn(4)))
				rng.Read(p)
				lba := uint64(rng.Intn(testBlocks - len(p)/testBS))
				if i < killed {
					continue // already applied pre-crash
				}
				if err := box2.WriteAt(p, lba); err != nil {
					t.Fatalf("resumed write %d: %v", i, err)
				}
			}
			waitDrained(t, box2)
			want := primaryHash(t, box2)
			if want != baseline {
				t.Fatal("recovered primary diverged from no-crash baseline")
			}
			for _, ns := range stores {
				got, err := ns.Store.LogicalHash()
				if err != nil {
					t.Fatal(err)
				}
				if got != baseline {
					t.Fatalf("backend %s diverged from no-crash baseline after recovery", ns.Name)
				}
			}
			if err := box2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestKillThenIORefused(t *testing.T) {
	stores := memStores(t, 2)
	b := newBox(t, t.TempDir(), stores, 1)
	b.Kill()
	p := make([]byte, testBS)
	if err := b.WriteAt(p, 0); !errors.Is(err, ErrKilled) {
		t.Fatalf("write after kill = %v", err)
	}
	if err := b.ReadAt(p, 0); !errors.Is(err, ErrKilled) {
		t.Fatalf("read after kill = %v", err)
	}
	if !b.Killed() {
		t.Fatal("Killed() = false")
	}
	// Close after Kill is a no-op, not a double-free.
	if err := b.Close(); err != nil {
		t.Fatalf("close after kill: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	disk, err := blockdev.NewMemDisk(testBS, testBlocks)
	if err != nil {
		t.Fatal(err)
	}
	stores := memStores(t, 2)
	cases := []Config{
		{Name: "x", Quorum: 0, ChunkSize: testChunk, WALDir: t.TempDir()},
		{Name: "x", Quorum: 3, ChunkSize: testChunk, WALDir: t.TempDir()},
		{Name: "x", Quorum: 1, ChunkSize: 1000, WALDir: t.TempDir()},
		{Name: "x", Quorum: 1, ChunkSize: testChunk},
	}
	for i, cfg := range cases {
		cfg.Obs = obs.NewRegistry()
		if _, err := New(cfg, disk, stores); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestConcurrentWritersUnderRace(t *testing.T) {
	stores := memStores(t, 3)
	b := newBox(t, t.TempDir(), stores, 2)
	defer b.Close()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 25; i++ {
				p := make([]byte, testBS)
				rng.Read(p)
				if err := b.WriteAt(p, uint64(rng.Intn(testBlocks))); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	waitDrained(t, b)
	want := primaryHash(t, b)
	for _, ns := range stores {
		got, err := ns.Store.LogicalHash()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("backend %s diverged under concurrency", ns.Name)
		}
	}
}
