// Package replicate implements the content-addressed replication service:
// a stateful middle-box that intercepts tenant writes, addresses the
// affected chunks by content hash (dedup via internal/cas), and fans each
// update out to N content-addressed backends with per-backend health
// probes, hedged waits, and quorum acknowledgement.
//
// The dispatch queue is WAL-backed (internal/wal): a write is appended to
// the journal before it touches the primary or any backend, and its commit
// record is written only once a quorum of backends acknowledges the chunk
// update. A replication box that dies mid-dispatch therefore recovers
// exactly like the relay does — reopen the journal, replay the
// uncommitted records to the primary and every backend, and resume —
// closing the PR-5 follow-up.
package replicate

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blockdev"
	"repro/internal/cas"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/wal"
	"repro/internal/xerr"
)

// Errors.
var (
	// ErrKilled reports I/O against a box frozen by Kill.
	ErrKilled = errors.New("replicate: box killed")
	// ErrClosed reports I/O against a closed box.
	ErrClosed = errors.New("replicate: box closed")
	// ErrBusy reports a write refused by admission control: the pending
	// dispatch queue crossed its high watermark and has not yet drained back
	// below the low one. Classed Overload — the iSCSI front maps it to SCSI
	// BUSY and the initiator retries.
	ErrBusy = xerr.New(xerr.Overload, "replicate: dispatch queue over high watermark")
	// ErrDegraded reports a write fast-failed because fewer backends are
	// healthy than even the degraded-quorum policy tolerates. Classed
	// Transient: the probe machinery is actively reconverging backends, so
	// a backed-off retry is the right response.
	ErrDegraded = xerr.New(xerr.Transient, "replicate: insufficient healthy backends for quorum")
)

// Circuit-breaker states, exposed per backend via the
// replicate.<box>.<backend>.breaker_state gauge.
const (
	BreakerClosed   = 0 // backend healthy, taking dispatch
	BreakerHalfOpen = 1 // probe in flight, deciding whether to readmit
	BreakerOpen     = 2 // backend cut off, awaiting a successful probe
)

// Config parameterizes a replication box.
type Config struct {
	// Name labels the box's obs series (replicate.<name>.*) and events —
	// the middle-box instance name in production wiring.
	Name string
	// Quorum is the number of backend acknowledgements a write waits for
	// before its journal record commits. 1 ≤ Quorum ≤ len(backends).
	Quorum int
	// ChunkSize is the content-addressing granularity in bytes; must be a
	// multiple of the primary's block size. Default 4096.
	ChunkSize int
	// WALDir is the dispatch journal directory (required). An existing
	// journal is replayed before the box serves I/O.
	WALDir string
	// SyncWindow is the journal's group-commit window.
	SyncWindow time.Duration
	// HedgeDelay bounds how long a write waits for its quorum before
	// returning anyway (the record stays uncommitted and is re-driven by
	// the retry machinery). Default 2ms.
	HedgeDelay time.Duration
	// ProbeInterval paces the health probe / resync loop over evicted
	// backends. Default 50ms.
	ProbeInterval time.Duration
	// QueueHighWatermark bounds the pending (journaled, not yet
	// quorum-committed) dispatch queue: a write arriving with the queue at
	// or above it gets ErrBusy until the queue drains to QueueLowWatermark.
	// Default 1024.
	QueueHighWatermark int
	// QueueLowWatermark is where engaged backpressure releases (hysteresis,
	// so admission doesn't flap at the boundary). Default half the high
	// watermark.
	QueueLowWatermark int
	// BreakerThreshold is the consecutive per-backend failure (or
	// over-deadline apply) count that trips its circuit breaker. Failed
	// applies are retried inline with jittered backoff until the threshold
	// exhausts. Default 3.
	BreakerThreshold int
	// DegradedQuorum, when > 0, lets writes proceed at a reduced quorum
	// while breakers are open: a write finding fewer than Quorum healthy
	// backends succeeds with the survivors' acks as long as at least
	// DegradedQuorum remain, and fast-fails with ErrDegraded below that.
	// 0 keeps the legacy behavior (hedged return, asynchronous catch-up).
	DegradedQuorum int
	// ApplyTimeout, when > 0, treats a backend apply slower than this as a
	// breaker-relevant failure even though it succeeded — the slow-backend
	// brownout detector. Half-open probes must also beat it to close the
	// breaker. 0 disables latency tripping.
	ApplyTimeout time.Duration
	// WALQuota, when set, bounds the dispatch journal's on-disk bytes (see
	// wal.Options.Quota) — the deterministic ENOSPC injection the overload
	// experiments drive WAL-full scenarios with.
	WALQuota wal.Quota
	// Seed fixes the retry backoff jitter sequence. Default 1.
	Seed int64
	// Obs receives the box's metrics and events (default obs.Default()).
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.ChunkSize == 0 {
		c.ChunkSize = 4096
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = 2 * time.Millisecond
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 50 * time.Millisecond
	}
	if c.QueueHighWatermark <= 0 {
		c.QueueHighWatermark = 1024
	}
	if c.QueueLowWatermark <= 0 || c.QueueLowWatermark >= c.QueueHighWatermark {
		c.QueueLowWatermark = c.QueueHighWatermark / 2
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Obs == nil {
		c.Obs = obs.Default()
	}
	return c
}

// NamedStore pairs a content-addressed backend with a diagnostic name.
type NamedStore struct {
	Name  string
	Store *cas.Store
}

// chunkUpdate is one chunk's post-write content snapshot, taken from the
// primary under the write lock so every backend applies identical bytes.
type chunkUpdate struct {
	slot uint64
	data []byte
}

// job is one journaled write's fan-out unit.
type job struct {
	seq    uint64
	chunks []chunkUpdate
	quorum int // acks needed to commit; may sit below Config.Quorum in degraded mode

	mu    sync.Mutex
	acked map[*Target]bool
	done  chan struct{} // closed when acks reach quorum
}

// Target is one content-addressed backend of the box. It satisfies the
// scrub service's Replica interface, so a scrubber can be pointed straight
// at Box.Targets().
type Target struct {
	box   *Box
	name  string
	store *cas.Store
	queue chan *job

	// enq/done count jobs handed to and finished by this target's worker
	// (enq bumped before the channel send, done after the apply or skip),
	// so enq == done means nothing is queued or in flight.
	enq  atomic.Uint64
	done atomic.Uint64

	// guarded by box.mu
	alive   bool
	lastErr error

	// slowStreak counts consecutive over-deadline applies; owned by the
	// target's worker goroutine.
	slowStreak int

	gBreaker *obs.Gauge   // breaker_state: BreakerClosed/HalfOpen/Open
	mProbes  *obs.Counter // half-open probe attempts
}

// BreakerState returns the backend's current breaker gauge value.
func (t *Target) BreakerState() int64 { return t.gBreaker.Value() }

// Name returns the backend's diagnostic name.
func (t *Target) Name() string { return t.name }

// Store exposes the backend's CAS store (stats, verification).
func (t *Target) Store() *cas.Store { return t.store }

// Healthy reports whether the backend is serving.
func (t *Target) Healthy() bool {
	t.box.mu.Lock()
	defer t.box.mu.Unlock()
	return t.alive
}

// IDAt returns the chunk ID the backend maps at slot.
func (t *Target) IDAt(slot uint64) cas.ID { return t.store.IDAt(slot) }

// ReadChunk returns the backend's content at slot (verified).
func (t *Target) ReadChunk(slot uint64) ([]byte, error) {
	buf := make([]byte, t.store.ChunkSize())
	if err := t.store.Read(slot, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// WriteChunk force-overwrites the backend's content at slot (scrub
// repair) — it must reach the stored bytes even when the slot's mapping is
// already correct, which is exactly the corrupted-chunk case.
func (t *Target) WriteChunk(slot uint64, data []byte) error {
	return t.store.Repair(slot, data)
}

// Box is the replication middle-box device: blockdev.Device over the
// primary, with journaled content-addressed fan-out to the backends.
type Box struct {
	cfg     Config
	primary blockdev.Device
	log     *wal.Log
	slots   uint64 // primary size in chunks
	bpc     uint64 // blocks per chunk

	mu         sync.Mutex // targets' health, pending jobs, lifecycle flags
	writeMu    sync.Mutex // serializes append→apply→snapshot→enqueue
	targets    []*Target
	pending    map[uint64]*job
	overloaded bool // admission latched shut until pending drains to the low watermark
	killed     bool
	closed     bool

	backoff *faults.Backoff // jittered spacing for inline apply retries

	stop     chan struct{}
	workerWG sync.WaitGroup
	proberWG sync.WaitGroup

	replayed int

	// killAfter, when non-nil, is consulted after each journal append (and
	// again after the primary apply) with the record's seq and a stage tag;
	// returning true freezes the box at that point, simulating a process
	// death mid-dispatch for the crash-recovery tests.
	killAfter func(seq uint64, stage string) bool

	mDispatch, mDedup, mQuorumMiss, mHedged, mReplays *obs.Counter
	mBytesLogical, mBytesStored                       *obs.Counter
	mBPRejects, mDegraded                             *obs.Counter
	gPending, gAlive, gBackpressure                   *obs.Gauge
}

var _ blockdev.Device = (*Box)(nil)

// Kill-point stage tags consulted through Config's kill hook.
const (
	StageAppended = "appended" // journal record durable, nothing applied
	StagePrimary  = "primary"  // primary updated, backends not enqueued
)

// New builds a replication box over primary with the given backends. Every
// backend store must use cfg.ChunkSize chunks and cover the primary. If
// cfg.WALDir holds a journal from a previous life, its uncommitted records
// are replayed — to the primary and to every backend — before the box
// accepts I/O; Replayed reports how many.
func New(cfg Config, primary blockdev.Device, backends []NamedStore) (*Box, error) {
	cfg = cfg.withDefaults()
	if primary == nil {
		return nil, errors.New("replicate: primary device required")
	}
	if cfg.WALDir == "" {
		return nil, errors.New("replicate: WALDir required (the dispatch queue is journal-backed)")
	}
	if len(backends) == 0 {
		return nil, errors.New("replicate: at least one backend required")
	}
	if cfg.Quorum < 1 || cfg.Quorum > len(backends) {
		return nil, fmt.Errorf("replicate: quorum %d outside [1,%d]", cfg.Quorum, len(backends))
	}
	bs := primary.BlockSize()
	if cfg.ChunkSize%bs != 0 {
		return nil, fmt.Errorf("replicate: chunk size %d not a multiple of block size %d", cfg.ChunkSize, bs)
	}
	bpc := uint64(cfg.ChunkSize / bs)
	slots := (primary.Blocks() + bpc - 1) / bpc
	b := &Box{
		cfg:     cfg,
		primary: primary,
		slots:   slots,
		bpc:     bpc,
		pending: make(map[uint64]*job),
		stop:    make(chan struct{}),
		backoff: faults.NewBackoff(time.Millisecond, 50*time.Millisecond, cfg.Seed),
	}
	if cfg.DegradedQuorum > cfg.Quorum {
		return nil, fmt.Errorf("replicate: degraded quorum %d above quorum %d", cfg.DegradedQuorum, cfg.Quorum)
	}
	for _, nb := range backends {
		if nb.Store.ChunkSize() != cfg.ChunkSize {
			return nil, fmt.Errorf("replicate: backend %q chunk size %d, want %d", nb.Name, nb.Store.ChunkSize(), cfg.ChunkSize)
		}
		if nb.Store.Slots() < slots {
			return nil, fmt.Errorf("replicate: backend %q has %d slots, primary needs %d", nb.Name, nb.Store.Slots(), slots)
		}
		b.targets = append(b.targets, &Target{
			box:   b,
			name:  nb.Name,
			store: nb.Store,
			queue: make(chan *job, 256),
			alive: true,
		})
	}
	b.initMetrics()

	walOpts := wal.Options{SyncWindow: cfg.SyncWindow, Quota: cfg.WALQuota}
	log, rec, err := wal.Open(cfg.WALDir, walOpts)
	switch {
	case errors.Is(err, wal.ErrNoSegments):
		log, err = wal.Create(cfg.WALDir, wal.Meta{Attrs: map[string]string{"service": "replicate", "box": cfg.Name}}, walOpts)
		if err != nil {
			return nil, fmt.Errorf("replicate: create journal: %w", err)
		}
	case err != nil:
		return nil, fmt.Errorf("replicate: open journal: %w", err)
	default:
		b.log = log
		if err := b.replay(rec); err != nil {
			_ = log.Close()
			return nil, err
		}
	}
	b.log = log

	for _, t := range b.targets {
		b.workerWG.Add(1)
		go b.worker(t)
	}
	b.proberWG.Add(1)
	go b.prober()
	b.gAlive.Set(int64(len(b.targets)))
	return b, nil
}

// replay applies a recovered journal's uncommitted records — in sequence
// order to the primary, then chunk-aligned to every backend — and commits
// them. Replay is synchronous and unconditional on all backends (not just
// a quorum): recovery is the moment to reconverge stragglers.
func (b *Box) replay(rec *wal.Recovery) error {
	for _, r := range rec.Records {
		if err := b.primary.WriteAt(r.Data, r.LBA); err != nil {
			return fmt.Errorf("replicate: replay seq %d to primary: %w", r.Seq, err)
		}
	}
	// Snapshot each touched chunk once, after all records landed.
	touched := make(map[uint64]bool)
	for _, r := range rec.Records {
		first := r.LBA / b.bpc
		last := (r.LBA + uint64(len(r.Data))/uint64(b.primary.BlockSize()) - 1) / b.bpc
		for s := first; s <= last; s++ {
			touched[s] = true
		}
	}
	for slot := range touched {
		data, err := b.snapshotChunk(slot)
		if err != nil {
			return err
		}
		for _, t := range b.targets {
			if _, err := t.store.Write(slot, data); err != nil {
				return fmt.Errorf("replicate: replay slot %d to %s: %w", slot, t.name, err)
			}
		}
	}
	for _, r := range rec.Records {
		if err := b.log.Commit(r.Seq); err != nil {
			return fmt.Errorf("replicate: commit replayed seq %d: %w", r.Seq, err)
		}
	}
	b.replayed = len(rec.Records)
	if b.replayed > 0 {
		b.mReplays.Add(int64(b.replayed))
		b.cfg.Obs.Eventf("replicate", "box %s replayed %d journaled writes across %d chunks", b.cfg.Name, b.replayed, len(touched))
	}
	return nil
}

// Replayed reports how many journal records the box replayed at open.
func (b *Box) Replayed() int { return b.replayed }

// Pending reports the number of journaled writes not yet quorum-committed.
func (b *Box) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending)
}

// Drained reports whether every dispatched job has been fully processed:
// nothing below quorum, nothing queued, nothing in flight on any backend.
// Benches and tests use it to wait for full (not just quorum) convergence.
func (b *Box) Drained() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.pending) != 0 {
		return false
	}
	for _, t := range b.targets {
		if t.enq.Load() != t.done.Load() {
			return false
		}
	}
	return true
}

// Targets returns the box's backends (for scrub wiring and tests).
func (b *Box) Targets() []*Target { return b.targets }

// SetKillHook installs the crash-test hook; see Box.killAfter.
func (b *Box) SetKillHook(fn func(seq uint64, stage string) bool) { b.killAfter = fn }

func (b *Box) initMetrics() {
	p := "replicate." + b.cfg.Name + "."
	r := b.cfg.Obs
	b.mDispatch = r.Counter(p + "dispatches")
	b.mDedup = r.Counter(p + "dedup_hits")
	b.mQuorumMiss = r.Counter(p + "quorum_misses")
	b.mHedged = r.Counter(p + "hedged")
	b.mReplays = r.Counter(p + "replays")
	b.mBytesLogical = r.Counter(p + "bytes_logical")
	b.mBytesStored = r.Counter(p + "bytes_stored")
	b.mBPRejects = r.Counter("backpressure." + b.cfg.Name + ".rejects")
	b.mDegraded = r.Counter(p + "degraded_writes")
	b.gPending = r.Gauge(p + "pending")
	b.gAlive = r.Gauge(p + "backends_alive")
	b.gBackpressure = r.Gauge("backpressure." + b.cfg.Name + ".engaged")
	for _, t := range b.targets {
		t.gBreaker = r.Gauge(p + t.name + ".breaker_state")
		t.mProbes = r.Counter(p + t.name + ".breaker_probes")
	}
}

// BlockSize implements blockdev.Device.
func (b *Box) BlockSize() int { return b.primary.BlockSize() }

// Blocks implements blockdev.Device.
func (b *Box) Blocks() uint64 { return b.primary.Blocks() }

// ReadAt serves reads from the primary.
func (b *Box) ReadAt(p []byte, lba uint64) error {
	if err := b.ioErr(); err != nil {
		return err
	}
	return b.primary.ReadAt(p, lba)
}

// admit is WriteAt's admission control, run before the write journals or
// touches the primary so a refused write leaves no partial state. It
// enforces the pending-queue watermarks (with hysteresis: once engaged,
// backpressure holds until the queue drains to the low watermark) and
// resolves the write's effective quorum against the healthy backend count —
// reduced to the survivors when DegradedQuorum allows, typed fast-fail when
// even that floor can't be met.
func (b *Box) admit() (quorum int, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	depth := len(b.pending)
	if b.overloaded {
		if depth > b.cfg.QueueLowWatermark {
			b.mBPRejects.Inc()
			return 0, fmt.Errorf("%w: %d pending, watermark %d/%d", ErrBusy, depth, b.cfg.QueueHighWatermark, b.cfg.QueueLowWatermark)
		}
		b.overloaded = false
		b.gBackpressure.Set(0)
		b.cfg.Obs.Eventf("replicate", "box %s backpressure released at %d pending", b.cfg.Name, depth)
	} else if depth >= b.cfg.QueueHighWatermark {
		b.overloaded = true
		b.gBackpressure.Set(1)
		b.mBPRejects.Inc()
		b.cfg.Obs.Eventf("replicate", "box %s backpressure engaged at %d pending", b.cfg.Name, depth)
		return 0, fmt.Errorf("%w: %d pending, watermark %d/%d", ErrBusy, depth, b.cfg.QueueHighWatermark, b.cfg.QueueLowWatermark)
	}

	alive := 0
	for _, t := range b.targets {
		if t.alive {
			alive++
		}
	}
	quorum = b.cfg.Quorum
	if alive < quorum && b.cfg.DegradedQuorum > 0 {
		if alive < b.cfg.DegradedQuorum {
			return 0, fmt.Errorf("%w: %d healthy, degraded floor %d", ErrDegraded, alive, b.cfg.DegradedQuorum)
		}
		quorum = alive
		b.mDegraded.Inc()
	}
	return quorum, nil
}

func (b *Box) ioErr() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.killed {
		return ErrKilled
	}
	if b.closed {
		return ErrClosed
	}
	return nil
}

// snapshotChunk reads chunk slot's full content from the primary. The tail
// chunk of a primary whose size is not chunk-aligned is zero-padded.
func (b *Box) snapshotChunk(slot uint64) ([]byte, error) {
	bs := uint64(b.primary.BlockSize())
	data := make([]byte, b.cfg.ChunkSize)
	first := slot * b.bpc
	n := b.bpc
	if rem := b.primary.Blocks() - first; rem < n {
		n = rem
	}
	if err := b.primary.ReadAt(data[:n*bs], first); err != nil {
		return nil, fmt.Errorf("replicate: snapshot chunk %d: %w", slot, err)
	}
	return data, nil
}

// WriteAt journals the write, applies it to the primary, snapshots the
// affected chunks, and fans the snapshots out to every live backend. It
// returns once a quorum of backends acknowledges — or after HedgeDelay,
// in which case the journal record stays uncommitted (counted as a quorum
// miss) and the box's retry machinery re-drives it: stragglers are caught
// up by the resync prober, and a crash before quorum replays the record.
func (b *Box) WriteAt(p []byte, lba uint64) error {
	if err := b.ioErr(); err != nil {
		return err
	}
	bs := uint64(b.BlockSize())
	if len(p) == 0 || uint64(len(p))%bs != 0 {
		return blockdev.ErrBadLength
	}
	nblocks := uint64(len(p)) / bs
	if lba+nblocks > b.Blocks() {
		return blockdev.ErrOutOfRange
	}
	quorum, err := b.admit()
	if err != nil {
		return err
	}

	b.writeMu.Lock()
	seq, err := b.log.Append(lba, p)
	if err != nil {
		b.writeMu.Unlock()
		if ioErr := b.ioErr(); errors.Is(err, wal.ErrClosed) && ioErr != nil {
			return ioErr
		}
		return fmt.Errorf("replicate: journal append: %w", err)
	}
	if b.killAfter != nil && b.killAfter(seq, StageAppended) {
		b.freezeLocked()
		b.writeMu.Unlock()
		return ErrKilled
	}
	if err := b.primary.WriteAt(p, lba); err != nil {
		b.writeMu.Unlock()
		return err
	}
	if b.killAfter != nil && b.killAfter(seq, StagePrimary) {
		b.freezeLocked()
		b.writeMu.Unlock()
		return ErrKilled
	}

	first := lba / b.bpc
	last := (lba + nblocks - 1) / b.bpc
	j := &job{
		seq:    seq,
		quorum: quorum,
		acked:  make(map[*Target]bool),
		done:   make(chan struct{}),
	}
	for slot := first; slot <= last; slot++ {
		data, err := b.snapshotChunk(slot)
		if err != nil {
			b.writeMu.Unlock()
			return err
		}
		j.chunks = append(j.chunks, chunkUpdate{slot: slot, data: data})
	}

	b.mu.Lock()
	b.pending[seq] = j
	b.gPending.Set(int64(len(b.pending)))
	live := make([]*Target, 0, len(b.targets))
	for _, t := range b.targets {
		if t.alive {
			live = append(live, t)
		}
	}
	b.mu.Unlock()
	for _, t := range live {
		t.enq.Add(1)
		select {
		case t.queue <- j:
		case <-b.stop:
			t.done.Add(1)
			b.writeMu.Unlock()
			return ErrKilled
		default:
			// The backend's queue is full: it can't keep up with the write
			// rate. Cut it off (breaker opens) instead of blocking the write
			// path behind it — resync reconverges it once it recovers.
			t.done.Add(1)
			b.evict(t, xerr.Errorf(xerr.Overload, "replicate: backend %s dispatch queue full", t.name))
		}
	}
	b.writeMu.Unlock()

	b.mDispatch.Inc()
	b.mBytesLogical.Add(int64(len(p)))

	hedge := time.NewTimer(b.cfg.HedgeDelay)
	defer hedge.Stop()
	select {
	case <-j.done:
		return nil
	case <-hedge.C:
		// Hedged return: the write is durable in the journal and applied
		// to the primary; the backends converge asynchronously.
		b.mHedged.Inc()
		b.mQuorumMiss.Inc()
		return nil
	case <-b.stop:
		return nil
	}
}

// worker drains one backend's dispatch queue in order.
func (b *Box) worker(t *Target) {
	defer b.workerWG.Done()
	for {
		select {
		case <-b.stop:
			return
		case j := <-t.queue:
			b.mu.Lock()
			alive := t.alive
			b.mu.Unlock()
			if !alive {
				t.done.Add(1) // resync will reconverge this backend
				continue
			}
			start := time.Now()
			err := b.applyJob(t, j)
			elapsed := time.Since(start)
			if err != nil {
				// Inline retry budget: BreakerThreshold consecutive failed
				// attempts (jitter-backed) before the breaker trips. Errors
				// classed terminal or exhausted skip the budget — retrying
				// a full or closed store can't help.
				for attempt := 0; attempt+1 < b.cfg.BreakerThreshold && err != nil && xerr.Classify(err) != xerr.Exhausted && !xerr.IsTerminal(err); attempt++ {
					time.Sleep(b.backoff.Delay(attempt))
					err = b.applyJob(t, j)
				}
				if err != nil {
					t.done.Add(1)
					b.evict(t, err)
					continue
				}
			}
			if b.cfg.ApplyTimeout > 0 && elapsed > b.cfg.ApplyTimeout {
				t.slowStreak++
				if t.slowStreak >= b.cfg.BreakerThreshold {
					// The apply landed, so it still acks — but the backend is
					// consistently over deadline: open its breaker so the
					// healthy path stops paying for it.
					streak := t.slowStreak
					t.slowStreak = 0
					b.ack(j, t)
					t.done.Add(1)
					b.evict(t, xerr.Errorf(xerr.Overload,
						"replicate: backend %s slow: %d consecutive applies over %v (last %v)",
						t.name, streak, b.cfg.ApplyTimeout, elapsed))
					continue
				}
			} else {
				t.slowStreak = 0
			}
			b.ack(j, t)
			t.done.Add(1)
		}
	}
}

// applyJob writes the job's chunk snapshots into the target's CAS store.
func (b *Box) applyJob(t *Target, j *job) error {
	for _, cu := range j.chunks {
		dup, err := t.store.Write(cu.slot, cu.data)
		if err != nil {
			return err
		}
		if dup {
			b.mDedup.Inc()
		} else {
			b.mBytesStored.Add(int64(len(cu.data)))
		}
	}
	return nil
}

// ack records one backend's acknowledgement; the quorum-crossing ack
// commits the journal record and releases the waiting writer.
func (b *Box) ack(j *job, t *Target) {
	j.mu.Lock()
	if j.acked[t] {
		j.mu.Unlock()
		return
	}
	j.acked[t] = true
	n := len(j.acked)
	if n == j.quorum {
		close(j.done)
	}
	j.mu.Unlock()
	if n != j.quorum {
		return
	}
	b.mu.Lock()
	if !b.killed && !b.closed {
		_ = b.log.Commit(j.seq)
	}
	delete(b.pending, j.seq)
	b.gPending.Set(int64(len(b.pending)))
	b.mu.Unlock()
}

// evict marks a backend unhealthy and opens its circuit breaker.
func (b *Box) evict(t *Target, err error) {
	b.mu.Lock()
	already := !t.alive
	t.alive = false
	t.lastErr = err
	alive := 0
	for _, x := range b.targets {
		if x.alive {
			alive++
		}
	}
	b.mu.Unlock()
	if !already {
		b.gAlive.Set(int64(alive))
		t.gBreaker.Set(BreakerOpen)
		b.cfg.Obs.Eventf("replicate", "box %s breaker open for backend %s (%s): %v",
			b.cfg.Name, t.name, xerr.Classify(err), err)
	}
}

// BreakerOpen reports whether any backend's breaker is open or half-open —
// the signal the scrubber pauses on and the orchestrator surfaces.
func (b *Box) BreakerOpen() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, t := range b.targets {
		if !t.alive {
			return true
		}
	}
	return false
}

// Backpressured reports whether dispatch-queue backpressure is currently
// engaged (pending depth crossed the high watermark and has not yet
// drained to the low one) — the admission-side overload signal the
// orchestrator surfaces alongside BreakerOpen.
func (b *Box) Backpressured() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.overloaded
}

// prober periodically resyncs evicted backends from the primary and
// re-admits them; a re-admitted backend retro-acks every pending job (its
// content now includes them), which can push a stalled write over quorum.
func (b *Box) prober() {
	defer b.proberWG.Done()
	tick := time.NewTicker(b.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-tick.C:
			b.Probe()
		}
	}
}

// Probe runs the half-open cycle over every open breaker: a cheap
// single-chunk probe (outside the write lock) decides whether the backend
// is worth resyncing, and a successful resync closes the breaker and
// re-admits it. Returns the number re-admitted. Tests drive it directly.
func (b *Box) Probe() int {
	b.mu.Lock()
	var dead []*Target
	for _, t := range b.targets {
		if !t.alive {
			dead = append(dead, t)
		}
	}
	b.mu.Unlock()
	n := 0
	for _, t := range dead {
		t.gBreaker.Set(BreakerHalfOpen)
		if !b.probeTarget(t) {
			t.gBreaker.Set(BreakerOpen)
			continue
		}
		if b.resync(t) {
			n++
		} else {
			t.gBreaker.Set(BreakerOpen)
		}
	}
	return n
}

// probeTarget is the half-open trial: one chunk written to the dead backend
// without the write lock, judged against ApplyTimeout. A backend that fails
// (or crawls through) the probe keeps its breaker open without the box
// paying for a full resync behind writeMu.
func (b *Box) probeTarget(t *Target) bool {
	t.mProbes.Inc()
	data, err := b.snapshotChunk(0)
	if err != nil {
		return false
	}
	start := time.Now()
	if _, err := t.store.Write(0, data); err != nil {
		return false
	}
	return b.cfg.ApplyTimeout <= 0 || time.Since(start) <= b.cfg.ApplyTimeout
}

// resync reconverges one backend to the primary's content chunk by chunk
// (skipping chunks whose content hash already matches), then re-admits it.
// The write lock is held throughout so the backend rejoins exactly at a
// write boundary.
func (b *Box) resync(t *Target) bool {
	b.writeMu.Lock()
	defer b.writeMu.Unlock()
	for slot := uint64(0); slot < b.slots; slot++ {
		data, err := b.snapshotChunk(slot)
		if err != nil {
			return false
		}
		if t.store.IDAt(slot) == cas.Sum(data) {
			continue
		}
		if _, err := t.store.Write(slot, data); err != nil {
			return false
		}
	}
	b.mu.Lock()
	t.alive = true
	t.lastErr = nil
	alive := 0
	for _, x := range b.targets {
		if x.alive {
			alive++
		}
	}
	pend := make([]*job, 0, len(b.pending))
	for _, j := range b.pending {
		pend = append(pend, j)
	}
	b.mu.Unlock()
	b.gAlive.Set(int64(alive))
	t.gBreaker.Set(BreakerClosed)
	b.cfg.Obs.Eventf("replicate", "box %s breaker closed: backend %s readmitted after resync", b.cfg.Name, t.name)
	for _, j := range pend {
		b.ack(j, t)
	}
	return true
}

// Flush syncs the primary and the journal.
func (b *Box) Flush() error {
	if err := b.ioErr(); err != nil {
		return err
	}
	if err := b.primary.Flush(); err != nil {
		return err
	}
	return b.log.Sync()
}

// freezeLocked marks the box killed and freezes the journal. Callers hold
// writeMu. Killing an already-closed box (a reconnect built a successor
// before the relay crashed) only marks it: the stop channel is closed and
// the journal released.
func (b *Box) freezeLocked() {
	b.mu.Lock()
	if b.killed || b.closed {
		b.killed = true
		b.mu.Unlock()
		return
	}
	b.killed = true
	b.mu.Unlock()
	close(b.stop)
	b.log.Kill()
}

// Kill freezes the box without flushing — the crash-test half of the
// kill/replay cycle (the relay's Relay.Kill calls it for replicate
// services in its chain). The journal directory survives for the next New.
func (b *Box) Kill() {
	b.writeMu.Lock()
	defer b.writeMu.Unlock()
	b.freezeLocked()
	b.workerWG.Wait()
	b.proberWG.Wait()
}

// Killed reports whether the box was frozen by Kill.
func (b *Box) Killed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.killed
}

// Close shuts the box down cleanly: stop dispatch, close the journal
// (leaving it for a later Open) and the primary. Backend stores are NOT
// closed — their lifetime belongs to whoever attached them.
func (b *Box) Close() error {
	b.writeMu.Lock()
	b.mu.Lock()
	if b.closed || b.killed {
		b.mu.Unlock()
		b.writeMu.Unlock()
		return nil
	}
	b.closed = true
	b.mu.Unlock()
	close(b.stop)
	b.writeMu.Unlock()
	b.workerWG.Wait()
	b.proberWG.Wait()
	err := b.log.Close()
	if cerr := b.primary.Close(); err == nil {
		err = cerr
	}
	return err
}
