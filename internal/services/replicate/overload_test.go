package replicate

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/cas"
	"repro/internal/obs"
	"repro/internal/testutil"
	"repro/internal/xerr"
)

// TestBreakerTripHalfOpenClose walks the full breaker cycle against a
// failing backend: consecutive apply failures exhaust the inline retry
// budget and open the breaker, half-open probes fail while the fault holds,
// and a successful probe + resync closes it again.
func TestBreakerTripHalfOpenClose(t *testing.T) {
	fb := &faultBackend{Backend: cas.NewMemBackend(testSlots)}
	flaky, err := cas.Open(fb, testChunk, testSlots)
	if err != nil {
		t.Fatal(err)
	}
	stores := append(memStores(t, 2), NamedStore{Name: "flaky", Store: flaky})
	disk, err := blockdev.NewMemDisk(testBS, testBlocks)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	b, err := New(Config{
		Name: "brk", Quorum: 2, ChunkSize: testChunk, WALDir: t.TempDir(),
		HedgeDelay: 200 * time.Millisecond, ProbeInterval: time.Hour, // probe manually
		BreakerThreshold: 3, Obs: reg,
	}, disk, stores)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	victim := b.targets[2]
	if victim.BreakerState() != BreakerClosed {
		t.Fatalf("initial breaker state = %d", victim.BreakerState())
	}

	fb.setFail(errors.New("injected"))
	rng := rand.New(rand.NewSource(3))
	writeBlocks(t, b, rng, 5)
	testutil.WaitFor(t, 2*time.Second, "breaker to open", func() bool {
		return victim.BreakerState() == BreakerOpen
	})
	if !b.BreakerOpen() {
		t.Fatal("BreakerOpen() = false with an open breaker")
	}

	// Half-open probe against the still-failing backend must not readmit.
	if n := b.Probe(); n != 0 {
		t.Fatalf("probe readmitted %d against a failing backend", n)
	}
	if victim.BreakerState() != BreakerOpen {
		t.Fatalf("breaker state after failed probe = %d, want open", victim.BreakerState())
	}
	if reg.Counter("replicate.brk.flaky.breaker_probes").Value() == 0 {
		t.Fatal("half-open probe not counted")
	}

	// Heal: the next probe closes the breaker via resync.
	fb.setFail(nil)
	if n := b.Probe(); n != 1 {
		t.Fatalf("probe after heal readmitted %d, want 1", n)
	}
	if victim.BreakerState() != BreakerClosed {
		t.Fatalf("breaker state after heal = %d, want closed", victim.BreakerState())
	}
	writeBlocks(t, b, rng, 5)
	waitDrained(t, b)
	want := primaryHash(t, b)
	got, err := flaky.LogicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("backend diverged after breaker cycle")
	}
}

// TestWatermarkBackpressure pins the admission contract: pending depth at
// the high watermark refuses writes with typed ErrBusy, and the latch only
// releases once the queue drains to the low watermark.
func TestWatermarkBackpressure(t *testing.T) {
	// Both backends fail so nothing commits: every write stays pending.
	fb1 := &faultBackend{Backend: cas.NewMemBackend(testSlots)}
	fb2 := &faultBackend{Backend: cas.NewMemBackend(testSlots)}
	s1, err := cas.Open(fb1, testChunk, testSlots)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := cas.Open(fb2, testChunk, testSlots)
	if err != nil {
		t.Fatal(err)
	}
	fb1.setFail(errors.New("down"))
	fb2.setFail(errors.New("down"))
	reg := obs.NewRegistry()
	disk, err := blockdev.NewMemDisk(testBS, testBlocks)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{
		Name: "bp", Quorum: 2, ChunkSize: testChunk, WALDir: t.TempDir(),
		HedgeDelay: time.Millisecond, ProbeInterval: time.Hour,
		QueueHighWatermark: 8, QueueLowWatermark: 2, Obs: reg,
	}, disk, []NamedStore{{Name: "a", Store: s1}, {Name: "b", Store: s2}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	p := bytes.Repeat([]byte{1}, testBS)
	var busy error
	for i := 0; i < 64 && busy == nil; i++ {
		if err := b.WriteAt(p, uint64(i%testBlocks)); err != nil {
			busy = err
		}
	}
	if busy == nil {
		t.Fatal("watermark never engaged")
	}
	if !errors.Is(busy, ErrBusy) {
		t.Fatalf("overloaded write: got %v, want ErrBusy", busy)
	}
	if xerr.Classify(busy) != xerr.Overload {
		t.Fatalf("ErrBusy classed %v, want Overload", xerr.Classify(busy))
	}
	if !xerr.Retryable(busy) {
		t.Fatal("overload must be retryable")
	}
	if reg.Gauge("backpressure.bp.engaged").Value() != 1 {
		t.Fatal("backpressure gauge not engaged")
	}
	if reg.Counter("backpressure.bp.rejects").Value() == 0 {
		t.Fatal("reject counter did not move")
	}
	// Still above the low watermark: admission stays shut even though the
	// depth is below the high one (hysteresis).
	if err := b.WriteAt(p, 0); !errors.Is(err, ErrBusy) {
		t.Fatalf("write while latched: %v, want ErrBusy", err)
	}

	// Heal the backends; pending drains via retro-ack and the latch opens.
	fb1.setFail(nil)
	fb2.setFail(nil)
	b.Probe()
	waitDrained(t, b)
	if err := b.WriteAt(p, 0); err != nil {
		t.Fatalf("write after drain: %v", err)
	}
	if reg.Gauge("backpressure.bp.engaged").Value() != 0 {
		t.Fatal("backpressure gauge still engaged after drain")
	}
}

// TestDegradedQuorumPolicy: with DegradedQuorum set, writes proceed on the
// survivors when a breaker is open, and fast-fail typed once the healthy
// count drops below the floor.
func TestDegradedQuorumPolicy(t *testing.T) {
	fbs := make([]*faultBackend, 3)
	var stores []NamedStore
	for i := range fbs {
		fbs[i] = &faultBackend{Backend: cas.NewMemBackend(testSlots)}
		s, err := cas.Open(fbs[i], testChunk, testSlots)
		if err != nil {
			t.Fatal(err)
		}
		stores = append(stores, NamedStore{Name: fmt.Sprintf("be%d", i), Store: s})
	}
	disk, err := blockdev.NewMemDisk(testBS, testBlocks)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	b, err := New(Config{
		Name: "dq", Quorum: 3, DegradedQuorum: 2, ChunkSize: testChunk,
		WALDir: t.TempDir(), HedgeDelay: 100 * time.Millisecond,
		ProbeInterval: time.Hour, BreakerThreshold: 1, Obs: reg,
	}, disk, stores)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	p := bytes.Repeat([]byte{7}, testBS)
	if err := b.WriteAt(p, 0); err != nil {
		t.Fatal(err)
	}
	waitDrained(t, b)

	// One backend down: 2 survivors ≥ floor 2, so writes proceed at the
	// reduced quorum without waiting out the hedge.
	fbs[2].setFail(errors.New("down"))
	writeBlocks(t, b, rand.New(rand.NewSource(9)), 3)
	testutil.WaitFor(t, 2*time.Second, "third backend eviction", func() bool {
		return !b.targets[2].Healthy()
	})
	start := time.Now()
	if err := b.WriteAt(p, 8); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	// The write must return on the survivors' acks (reduced quorum), not by
	// waiting out the 100ms hedge as a quorum miss.
	if elapsed := time.Since(start); elapsed > 90*time.Millisecond {
		t.Fatalf("degraded write took %v — it hedged instead of committing at the reduced quorum", elapsed)
	}
	if reg.Counter("replicate.dq.degraded_writes").Value() == 0 {
		t.Fatal("degraded-write counter did not move")
	}

	// Two backends down: 1 survivor < floor 2 → typed fast-fail, and the
	// refusal must arrive without journaling anything new. The trigger
	// writes may themselves fast-fail once the eviction lands.
	fbs[1].setFail(errors.New("down"))
	for i := 0; i < 5 && b.targets[1].Healthy(); i++ {
		if err := b.WriteAt(p, uint64(i)); err != nil && !errors.Is(err, ErrDegraded) {
			t.Fatalf("trigger write %d: %v", i, err)
		}
	}
	testutil.WaitFor(t, 2*time.Second, "second backend eviction", func() bool {
		return !b.targets[1].Healthy()
	})
	pendingBefore := b.log.Pending()
	err = b.WriteAt(p, 16)
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("below-floor write: got %v, want ErrDegraded", err)
	}
	if xerr.Classify(err) != xerr.Transient {
		t.Fatalf("ErrDegraded classed %v, want Transient", xerr.Classify(err))
	}
	if got := b.log.Pending(); got != pendingBefore {
		t.Fatalf("fast-fail journaled a record: pending %d -> %d", pendingBefore, got)
	}

	// Heal everything: probes close the breakers and full-quorum writes
	// resume.
	fbs[1].setFail(nil)
	fbs[2].setFail(nil)
	testutil.WaitFor(t, 2*time.Second, "breakers to close", func() bool { return b.Probe() >= 0 && !b.BreakerOpen() })
	if err := b.WriteAt(p, 24); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	waitDrained(t, b)
	want := primaryHash(t, b)
	for _, ns := range stores {
		got, err := ns.Store.LogicalHash()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("backend %s diverged after degraded episode", ns.Name)
		}
	}
}

// blockingBackend wedges PutChunk until its gate releases — a backend that
// is up but not making progress.
type blockingBackend struct {
	cas.Backend
	gate chan struct{}
}

func (bb *blockingBackend) PutChunk(id cas.ID, data []byte) error {
	<-bb.gate
	return bb.Backend.PutChunk(id, data)
}

// TestQueueFullTripsBackendBreaker: a backend whose dispatch channel
// overflows is cut off with a typed overload eviction instead of blocking
// the write path.
func TestQueueFullTripsBackendBreaker(t *testing.T) {
	gate := make(chan struct{})
	bb := &blockingBackend{Backend: cas.NewMemBackend(testSlots), gate: gate}
	wedged, err := cas.Open(bb, testChunk, testSlots)
	if err != nil {
		t.Fatal(err)
	}
	stores := append(memStores(t, 1), NamedStore{Name: "wedged", Store: wedged})
	disk, err := blockdev.NewMemDisk(testBS, testBlocks)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{
		Name: "qf", Quorum: 1, ChunkSize: testChunk, WALDir: t.TempDir(),
		HedgeDelay: time.Millisecond, ProbeInterval: time.Hour, Obs: obs.NewRegistry(),
	}, disk, stores)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	defer close(gate) // unwedge the worker so Close can join it

	// The wedged worker parks on its first job; the writes behind it fill
	// the 256-slot channel, and the overflowing enqueue must evict rather
	// than block the healthy path.
	victim := b.targets[1]
	p := bytes.Repeat([]byte{3}, testBS)
	for i := 0; i < 300 && victim.Healthy(); i++ {
		if err := b.WriteAt(p, uint64(i%testBlocks)); err != nil {
			t.Fatalf("write %d with one wedged backend: %v", i, err)
		}
	}
	testutil.WaitFor(t, 2*time.Second, "wedged backend eviction", func() bool { return !victim.Healthy() })
	b.mu.Lock()
	lastErr := victim.lastErr
	b.mu.Unlock()
	if xerr.Classify(lastErr) != xerr.Overload {
		t.Fatalf("queue-full eviction classed %v (%v), want Overload", xerr.Classify(lastErr), lastErr)
	}
}
