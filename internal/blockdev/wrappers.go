package blockdev

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simtime"
)

// ServiceModel describes the simulated service time of a storage host's
// medium, applied per request by LatencyDisk.
type ServiceModel struct {
	// PerRequest is the fixed cost of any medium access (seek/queue).
	PerRequest time.Duration
	// PerByte is the streaming cost per transferred byte.
	PerByte time.Duration
}

// Cost returns the modelled service time for a transfer of n bytes.
func (m ServiceModel) Cost(n int) time.Duration {
	return m.PerRequest + time.Duration(n)*m.PerByte
}

// LatencyDisk wraps a Device and sleeps for the modelled service time on
// each access, emulating a real medium on the simulated storage host.
// Reads and writes may carry different models: targets typically absorb
// writes into a write cache (cheap) while reads miss to the medium.
type LatencyDisk struct {
	dev   Device
	read  ServiceModel
	write ServiceModel
	// slots bounds concurrent medium accesses (nil = unlimited): a real
	// device serves a limited number of outstanding commands, so load
	// queues endogenously.
	slots chan struct{}
}

var _ Device = (*LatencyDisk)(nil)

// NewLatencyDisk wraps dev with the same service model for both
// directions.
func NewLatencyDisk(dev Device, model ServiceModel) *LatencyDisk {
	return &LatencyDisk{dev: dev, read: model, write: model}
}

// NewLatencyDiskRW wraps dev with separate read and write service models.
func NewLatencyDiskRW(dev Device, read, write ServiceModel) *LatencyDisk {
	return &LatencyDisk{dev: dev, read: read, write: write}
}

// NewLatencyDiskQueued wraps dev with separate read and write models and a
// bounded queue of concurrent medium accesses; excess requests wait.
func NewLatencyDiskQueued(dev Device, read, write ServiceModel, concurrency int) *LatencyDisk {
	d := &LatencyDisk{dev: dev, read: read, write: write}
	if concurrency > 0 {
		d.slots = make(chan struct{}, concurrency)
	}
	return d
}

// acquire takes a device queue slot when concurrency is bounded.
func (d *LatencyDisk) acquire() func() {
	if d.slots == nil {
		return func() {}
	}
	d.slots <- struct{}{}
	return func() { <-d.slots }
}

// BlockSize implements Device.
func (d *LatencyDisk) BlockSize() int { return d.dev.BlockSize() }

// Blocks implements Device.
func (d *LatencyDisk) Blocks() uint64 { return d.dev.Blocks() }

// ReadAt implements Device, charging the modelled service time.
func (d *LatencyDisk) ReadAt(p []byte, lba uint64) error {
	release := d.acquire()
	defer release()
	sleep(d.read.Cost(len(p)))
	return d.dev.ReadAt(p, lba)
}

// WriteAt implements Device, charging the modelled service time.
func (d *LatencyDisk) WriteAt(p []byte, lba uint64) error {
	release := d.acquire()
	defer release()
	sleep(d.write.Cost(len(p)))
	return d.dev.WriteAt(p, lba)
}

// Flush implements Device.
func (d *LatencyDisk) Flush() error { return d.dev.Flush() }

// Close implements Device.
func (d *LatencyDisk) Close() error { return d.dev.Close() }

func sleep(d time.Duration) {
	simtime.Sleep(d)
}

// FaultDisk wraps a Device and fails all accesses once tripped; the
// replication experiments use it to take one replica offline mid-run
// (Figure 13's injected error at the 60th second).
type FaultDisk struct {
	dev     Device
	tripped atomic.Bool
	err     error
	mu      sync.Mutex
}

var _ Device = (*FaultDisk)(nil)

// NewFaultDisk wraps dev; the device operates normally until Trip is called.
func NewFaultDisk(dev Device) *FaultDisk {
	return &FaultDisk{dev: dev}
}

// Trip makes every subsequent access fail with err.
func (d *FaultDisk) Trip(err error) {
	d.mu.Lock()
	d.err = err
	d.mu.Unlock()
	d.tripped.Store(true)
}

// Tripped reports whether the device has been failed.
func (d *FaultDisk) Tripped() bool { return d.tripped.Load() }

// Heal clears a tripped fault; subsequent accesses reach the medium again
// (the recovery half of Figure 13's kill/heal cycle).
func (d *FaultDisk) Heal() {
	d.tripped.Store(false)
	d.mu.Lock()
	d.err = nil
	d.mu.Unlock()
}

func (d *FaultDisk) fault() error {
	if !d.tripped.Load() {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

// BlockSize implements Device.
func (d *FaultDisk) BlockSize() int { return d.dev.BlockSize() }

// Blocks implements Device.
func (d *FaultDisk) Blocks() uint64 { return d.dev.Blocks() }

// ReadAt implements Device.
func (d *FaultDisk) ReadAt(p []byte, lba uint64) error {
	if err := d.fault(); err != nil {
		return err
	}
	return d.dev.ReadAt(p, lba)
}

// WriteAt implements Device.
func (d *FaultDisk) WriteAt(p []byte, lba uint64) error {
	if err := d.fault(); err != nil {
		return err
	}
	return d.dev.WriteAt(p, lba)
}

// Flush implements Device.
func (d *FaultDisk) Flush() error {
	if err := d.fault(); err != nil {
		return err
	}
	return d.dev.Flush()
}

// Close implements Device.
func (d *FaultDisk) Close() error { return d.dev.Close() }

// CountingDisk wraps a Device and counts operations and bytes, used by
// tests and the monitoring examples.
type CountingDisk struct {
	dev        Device
	reads      atomic.Int64
	writes     atomic.Int64
	readBytes  atomic.Int64
	writeBytes atomic.Int64
}

var _ Device = (*CountingDisk)(nil)

// NewCountingDisk wraps dev with counters.
func NewCountingDisk(dev Device) *CountingDisk {
	return &CountingDisk{dev: dev}
}

// Reads returns the number of read requests.
func (d *CountingDisk) Reads() int64 { return d.reads.Load() }

// Writes returns the number of write requests.
func (d *CountingDisk) Writes() int64 { return d.writes.Load() }

// ReadBytes returns the number of bytes read.
func (d *CountingDisk) ReadBytes() int64 { return d.readBytes.Load() }

// WriteBytes returns the number of bytes written.
func (d *CountingDisk) WriteBytes() int64 { return d.writeBytes.Load() }

// BlockSize implements Device.
func (d *CountingDisk) BlockSize() int { return d.dev.BlockSize() }

// Blocks implements Device.
func (d *CountingDisk) Blocks() uint64 { return d.dev.Blocks() }

// ReadAt implements Device.
func (d *CountingDisk) ReadAt(p []byte, lba uint64) error {
	err := d.dev.ReadAt(p, lba)
	if err == nil {
		d.reads.Add(1)
		d.readBytes.Add(int64(len(p)))
	}
	return err
}

// WriteAt implements Device.
func (d *CountingDisk) WriteAt(p []byte, lba uint64) error {
	err := d.dev.WriteAt(p, lba)
	if err == nil {
		d.writes.Add(1)
		d.writeBytes.Add(int64(len(p)))
	}
	return err
}

// Flush implements Device.
func (d *CountingDisk) Flush() error { return d.dev.Flush() }

// Close implements Device.
func (d *CountingDisk) Close() error { return d.dev.Close() }
