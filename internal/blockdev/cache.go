package blockdev

import (
	"sync"

	"repro/internal/obs"
)

// CacheDisk is a write-through block cache over a Device — the analogue of
// the guest's page cache sitting above the virtual disk. Reads served from
// the cache skip the backing device entirely; writes update the cache and
// propagate through. Capacity is bounded; eviction is FIFO.
type CacheDisk struct {
	dev Device

	mu      sync.Mutex
	blocks  map[uint64][]byte
	order   []uint64
	maxBlks int
	hits    int64
	misses  int64

	obsHits   *obs.Counter
	obsMisses *obs.Counter
}

var _ Device = (*CacheDisk)(nil)

// NewCacheDisk wraps dev with a cache of at most capacityBytes.
func NewCacheDisk(dev Device, capacityBytes int) *CacheDisk {
	maxBlks := capacityBytes / dev.BlockSize()
	if maxBlks < 1 {
		maxBlks = 1
	}
	return &CacheDisk{
		dev:       dev,
		blocks:    make(map[uint64][]byte),
		maxBlks:   maxBlks,
		obsHits:   obs.Default().Counter("blockcache.hits"),
		obsMisses: obs.Default().Counter("blockcache.misses"),
	}
}

// HitRatio returns hits/(hits+misses), or 0 before any read.
func (d *CacheDisk) HitRatio() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	total := d.hits + d.misses
	if total == 0 {
		return 0
	}
	return float64(d.hits) / float64(total)
}

// Hits returns the number of block reads served from the cache.
func (d *CacheDisk) Hits() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hits
}

// Misses returns the number of block reads that went to the device.
func (d *CacheDisk) Misses() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.misses
}

// BlockSize implements Device.
func (d *CacheDisk) BlockSize() int { return d.dev.BlockSize() }

// Blocks implements Device.
func (d *CacheDisk) Blocks() uint64 { return d.dev.Blocks() }

// ReadAt implements Device: fully-cached extents are served locally; any
// miss fetches the whole extent and populates the cache.
func (d *CacheDisk) ReadAt(p []byte, lba uint64) error {
	bs := d.dev.BlockSize()
	if len(p) == 0 || len(p)%bs != 0 {
		return ErrBadLength
	}
	n := uint64(len(p) / bs)
	d.mu.Lock()
	allCached := true
	for i := uint64(0); i < n; i++ {
		if _, ok := d.blocks[lba+i]; !ok {
			allCached = false
			break
		}
	}
	if allCached {
		for i := uint64(0); i < n; i++ {
			copy(p[int(i)*bs:int(i+1)*bs], d.blocks[lba+i])
		}
		d.hits += int64(n)
		d.mu.Unlock()
		d.obsHits.Add(int64(n))
		return nil
	}
	d.misses += int64(n)
	d.mu.Unlock()
	d.obsMisses.Add(int64(n))

	if err := d.dev.ReadAt(p, lba); err != nil {
		return err
	}
	d.mu.Lock()
	for i := uint64(0); i < n; i++ {
		d.insertLocked(lba+i, p[int(i)*bs:int(i+1)*bs])
	}
	d.mu.Unlock()
	return nil
}

// WriteAt implements Device: write-through with cache update.
func (d *CacheDisk) WriteAt(p []byte, lba uint64) error {
	bs := d.dev.BlockSize()
	if len(p) == 0 || len(p)%bs != 0 {
		return ErrBadLength
	}
	if err := d.dev.WriteAt(p, lba); err != nil {
		return err
	}
	n := uint64(len(p) / bs)
	d.mu.Lock()
	for i := uint64(0); i < n; i++ {
		d.insertLocked(lba+i, p[int(i)*bs:int(i+1)*bs])
	}
	d.mu.Unlock()
	return nil
}

// insertLocked stores one block, evicting FIFO when full.
func (d *CacheDisk) insertLocked(blk uint64, data []byte) {
	if existing, ok := d.blocks[blk]; ok {
		copy(existing, data)
		return
	}
	for len(d.blocks) >= d.maxBlks && len(d.order) > 0 {
		victim := d.order[0]
		d.order = d.order[1:]
		delete(d.blocks, victim)
	}
	d.blocks[blk] = append([]byte(nil), data...)
	d.order = append(d.order, blk)
}

// Flush implements Device.
func (d *CacheDisk) Flush() error { return d.dev.Flush() }

// Close implements Device.
func (d *CacheDisk) Close() error {
	d.mu.Lock()
	d.blocks = nil
	d.order = nil
	d.mu.Unlock()
	return d.dev.Close()
}
