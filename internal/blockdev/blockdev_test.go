package blockdev

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newDisk(t *testing.T, bs int, blocks uint64) *MemDisk {
	t.Helper()
	d, err := NewMemDisk(bs, blocks)
	if err != nil {
		t.Fatalf("NewMemDisk: %v", err)
	}
	return d
}

func TestMemDiskGeometry(t *testing.T) {
	d := newDisk(t, 512, 100)
	if d.BlockSize() != 512 || d.Blocks() != 100 {
		t.Errorf("geometry = %d/%d, want 512/100", d.BlockSize(), d.Blocks())
	}
}

func TestNewMemDiskRejectsBadGeometry(t *testing.T) {
	if _, err := NewMemDisk(0, 10); err == nil {
		t.Error("block size 0: want error")
	}
	if _, err := NewMemDisk(-4, 10); err == nil {
		t.Error("negative block size: want error")
	}
	if _, err := NewMemDisk(512, 0); err == nil {
		t.Error("zero blocks: want error")
	}
}

func TestMemDiskReadUnwrittenIsZero(t *testing.T) {
	d := newDisk(t, 512, 10)
	buf := bytes.Repeat([]byte{0xFF}, 1024)
	if err := d.ReadAt(buf, 3); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(buf, make([]byte, 1024)) {
		t.Error("unwritten blocks are not zero")
	}
}

func TestMemDiskWriteReadRoundTrip(t *testing.T) {
	d := newDisk(t, 512, 10)
	want := bytes.Repeat([]byte{0xA5}, 1536)
	if err := d.WriteAt(want, 2); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, 1536)
	if err := d.ReadAt(got, 2); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("read data differs from written data")
	}
	// Neighbouring blocks must stay zero.
	one := make([]byte, 512)
	if err := d.ReadAt(one, 1); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(one, make([]byte, 512)) {
		t.Error("write spilled into preceding block")
	}
}

func TestMemDiskBounds(t *testing.T) {
	d := newDisk(t, 512, 10)
	buf := make([]byte, 512)
	if err := d.ReadAt(buf, 10); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("ReadAt(lba=10): err = %v, want ErrOutOfRange", err)
	}
	if err := d.WriteAt(make([]byte, 1024), 9); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("WriteAt crossing end: err = %v, want ErrOutOfRange", err)
	}
	// Overflow-safe: enormous lba must not wrap.
	if err := d.ReadAt(buf, ^uint64(0)); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("ReadAt(max lba): err = %v, want ErrOutOfRange", err)
	}
}

func TestMemDiskBadLength(t *testing.T) {
	d := newDisk(t, 512, 10)
	if err := d.ReadAt(make([]byte, 100), 0); !errors.Is(err, ErrBadLength) {
		t.Errorf("ReadAt(100 bytes): err = %v, want ErrBadLength", err)
	}
	if err := d.WriteAt(nil, 0); !errors.Is(err, ErrBadLength) {
		t.Errorf("WriteAt(nil): err = %v, want ErrBadLength", err)
	}
}

func TestMemDiskClose(t *testing.T) {
	d := newDisk(t, 512, 10)
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	buf := make([]byte, 512)
	if err := d.ReadAt(buf, 0); !errors.Is(err, ErrClosed) {
		t.Errorf("ReadAt after Close: err = %v, want ErrClosed", err)
	}
	if err := d.WriteAt(buf, 0); !errors.Is(err, ErrClosed) {
		t.Errorf("WriteAt after Close: err = %v, want ErrClosed", err)
	}
	if err := d.Flush(); !errors.Is(err, ErrClosed) {
		t.Errorf("Flush after Close: err = %v, want ErrClosed", err)
	}
}

func TestMemDiskSparseAllocation(t *testing.T) {
	d := newDisk(t, 4096, 1<<30) // 4 TiB thin volume
	if err := d.WriteAt(make([]byte, 4096), 1<<29); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if got := d.AllocatedBlocks(); got != 1 {
		t.Errorf("AllocatedBlocks = %d, want 1", got)
	}
}

func TestMemDiskWriteDoesNotAliasCaller(t *testing.T) {
	d := newDisk(t, 512, 4)
	buf := bytes.Repeat([]byte{1}, 512)
	if err := d.WriteAt(buf, 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	buf[0] = 99
	got := make([]byte, 512)
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if got[0] != 1 {
		t.Error("device aliases the caller's write buffer")
	}
}

func TestMemDiskConcurrentAccess(t *testing.T) {
	d := newDisk(t, 512, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := bytes.Repeat([]byte{byte(g)}, 512)
			for i := 0; i < 50; i++ {
				lba := uint64(g*8 + i%8)
				if err := d.WriteAt(buf, lba); err != nil {
					t.Errorf("WriteAt: %v", err)
					return
				}
				got := make([]byte, 512)
				if err := d.ReadAt(got, lba); err != nil {
					t.Errorf("ReadAt: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestMemDiskProperty(t *testing.T) {
	// Property: after a sequence of writes, each block reads back the last
	// value written to it (model: map of block -> fill byte).
	const blocks = 32
	f := func(ops []struct {
		LBA  uint8
		Fill byte
	}) bool {
		d, err := NewMemDisk(64, blocks)
		if err != nil {
			return false
		}
		model := make(map[uint64]byte)
		for _, op := range ops {
			lba := uint64(op.LBA % blocks)
			if err := d.WriteAt(bytes.Repeat([]byte{op.Fill}, 64), lba); err != nil {
				return false
			}
			model[lba] = op.Fill
		}
		for lba, fill := range model {
			got := make([]byte, 64)
			if err := d.ReadAt(got, lba); err != nil {
				return false
			}
			if !bytes.Equal(got, bytes.Repeat([]byte{fill}, 64)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestServiceModelCost(t *testing.T) {
	m := ServiceModel{PerRequest: time.Millisecond, PerByte: time.Microsecond}
	if got, want := m.Cost(100), time.Millisecond+100*time.Microsecond; got != want {
		t.Errorf("Cost(100) = %v, want %v", got, want)
	}
}

func TestLatencyDiskDelaysAndDelegates(t *testing.T) {
	inner := newDisk(t, 512, 4)
	d := NewLatencyDisk(inner, ServiceModel{PerRequest: 5 * time.Millisecond})
	start := time.Now()
	if err := d.WriteAt(make([]byte, 512), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if el := time.Since(start); el < 4*time.Millisecond {
		t.Errorf("WriteAt returned after %v, want >= ~5ms", el)
	}
	if d.BlockSize() != 512 || d.Blocks() != 4 {
		t.Error("LatencyDisk does not delegate geometry")
	}
	if err := d.Flush(); err != nil {
		t.Errorf("Flush: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestFaultDiskTrip(t *testing.T) {
	inner := newDisk(t, 512, 4)
	d := NewFaultDisk(inner)
	buf := make([]byte, 512)
	if err := d.WriteAt(buf, 0); err != nil {
		t.Fatalf("WriteAt before trip: %v", err)
	}
	if d.Tripped() {
		t.Error("Tripped() before Trip")
	}
	wantErr := errors.New("medium gone")
	d.Trip(wantErr)
	if !d.Tripped() {
		t.Error("Tripped() after Trip = false")
	}
	if err := d.ReadAt(buf, 0); !errors.Is(err, wantErr) {
		t.Errorf("ReadAt after trip: err = %v, want %v", err, wantErr)
	}
	if err := d.WriteAt(buf, 0); !errors.Is(err, wantErr) {
		t.Errorf("WriteAt after trip: err = %v, want %v", err, wantErr)
	}
	if err := d.Flush(); !errors.Is(err, wantErr) {
		t.Errorf("Flush after trip: err = %v, want %v", err, wantErr)
	}
}

func TestCountingDisk(t *testing.T) {
	inner := newDisk(t, 512, 8)
	d := NewCountingDisk(inner)
	buf := make([]byte, 1024)
	if err := d.WriteAt(buf, 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := d.ReadAt(buf, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if err := d.ReadAt(buf, 2); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if d.Writes() != 1 || d.Reads() != 2 {
		t.Errorf("ops = %d writes / %d reads, want 1/2", d.Writes(), d.Reads())
	}
	if d.WriteBytes() != 1024 || d.ReadBytes() != 2048 {
		t.Errorf("bytes = %d written / %d read, want 1024/2048", d.WriteBytes(), d.ReadBytes())
	}
	// Failed operations must not count.
	if err := d.ReadAt(buf, 100); err == nil {
		t.Fatal("ReadAt out of range: want error")
	}
	if d.Reads() != 2 {
		t.Error("failed read was counted")
	}
}

func TestCacheDiskServesHits(t *testing.T) {
	inner := newDisk(t, 512, 64)
	counting := NewCountingDisk(inner)
	d := NewCacheDisk(counting, 32*512)
	want := bytes.Repeat([]byte{7}, 1024)
	if err := d.WriteAt(want, 4); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1024)
	for i := 0; i < 3; i++ {
		if err := d.ReadAt(got, 4); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("cache returned wrong data")
		}
	}
	if counting.Reads() != 0 {
		t.Errorf("cached reads hit the device %d times", counting.Reads())
	}
	if d.Hits() == 0 {
		t.Error("no cache hits recorded")
	}
}

func TestCacheDiskMissPopulates(t *testing.T) {
	inner := newDisk(t, 512, 64)
	if err := inner.WriteAt(bytes.Repeat([]byte{9}, 512), 10); err != nil {
		t.Fatal(err)
	}
	counting := NewCountingDisk(inner)
	d := NewCacheDisk(counting, 32*512)
	buf := make([]byte, 512)
	if err := d.ReadAt(buf, 10); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 9 {
		t.Fatal("miss returned wrong data")
	}
	if err := d.ReadAt(buf, 10); err != nil {
		t.Fatal(err)
	}
	if counting.Reads() != 1 {
		t.Errorf("device reads = %d, want 1 (second read cached)", counting.Reads())
	}
	if d.Misses() != 1 || d.Hits() != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", d.Hits(), d.Misses())
	}
}

func TestCacheDiskEviction(t *testing.T) {
	inner := newDisk(t, 512, 64)
	d := NewCacheDisk(inner, 4*512) // 4 blocks
	buf := make([]byte, 512)
	for lba := uint64(0); lba < 8; lba++ {
		if err := d.WriteAt(bytes.Repeat([]byte{byte(lba)}, 512), lba); err != nil {
			t.Fatal(err)
		}
	}
	// Early blocks were evicted; re-reading them must still be correct
	// (write-through), served from the device.
	if err := d.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 {
		t.Error("evicted block reread wrong")
	}
	if err := d.ReadAt(buf, 7); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 7 {
		t.Error("recent block wrong")
	}
}

func TestCacheDiskWriteThrough(t *testing.T) {
	inner := newDisk(t, 512, 16)
	d := NewCacheDisk(inner, 8*512)
	want := bytes.Repeat([]byte{3}, 512)
	if err := d.WriteAt(want, 2); err != nil {
		t.Fatal(err)
	}
	direct := make([]byte, 512)
	if err := inner.ReadAt(direct, 2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct, want) {
		t.Error("write did not reach the backing device")
	}
	if err := d.ReadAt(make([]byte, 100), 0); !errors.Is(err, ErrBadLength) {
		t.Error("unaligned read accepted")
	}
}
