package blockdev

import (
	"time"

	"repro/internal/obs"
)

// ObservedDisk wraps a Device and records the latency of every ReadAt and
// WriteAt into stage-labelled histograms ("stage.<stage>.read" and
// "stage.<stage>.write"). It is the generic per-stage probe of the
// observability spine: relays wrap their whole service stack in one so the
// histogram captures service time plus downstream forwarding.
//
// When the registry's tracing plane is enabled, each request additionally
// emits a traced span: a child of the span context bound to the calling
// goroutine (the relay session's command context), re-bound around the
// inner call so deeper stages — the relay's forward session, nested
// devices — parent under this service leg.
type ObservedDisk struct {
	dev        Device
	reg        *obs.Registry
	stage      string
	read, wrte obs.Timer
}

var _ Device = (*ObservedDisk)(nil)

// NewObservedDisk wraps dev with stage-latency probes registered in reg.
// A nil registry disables tracing by returning dev unwrapped.
func NewObservedDisk(dev Device, reg *obs.Registry, stage string) Device {
	if reg == nil {
		return dev
	}
	return &ObservedDisk{
		dev:   dev,
		reg:   reg,
		stage: stage,
		read:  reg.Timer(obs.StagePrefix + stage + ".read"),
		wrte:  reg.Timer(obs.StagePrefix + stage + ".write"),
	}
}

// BlockSize implements Device.
func (d *ObservedDisk) BlockSize() int { return d.dev.BlockSize() }

// Blocks implements Device.
func (d *ObservedDisk) Blocks() uint64 { return d.dev.Blocks() }

// ReadAt implements Device, timing the read.
func (d *ObservedDisk) ReadAt(p []byte, lba uint64) error {
	if d.reg.TracingEnabled() {
		return d.traced("read", p, lba, d.dev.ReadAt)
	}
	t0 := time.Now()
	err := d.dev.ReadAt(p, lba)
	if err == nil {
		d.read.Since(t0)
	}
	return err
}

// WriteAt implements Device, timing the write.
func (d *ObservedDisk) WriteAt(p []byte, lba uint64) error {
	if d.reg.TracingEnabled() {
		return d.traced("write", p, lba, d.dev.WriteAt)
	}
	t0 := time.Now()
	err := d.dev.WriteAt(p, lba)
	if err == nil {
		d.wrte.Since(t0)
	}
	return err
}

// traced runs one request under a traced span, re-binding the goroutine
// context so downstream spans parent here.
func (d *ObservedDisk) traced(dir string, p []byte, lba uint64, op func([]byte, uint64) error) error {
	sp := d.reg.StartTraced(d.stage, dir, len(p))
	var (
		prev  obs.SpanContext
		had   bool
		bound bool
	)
	if sc := sp.Context(); sc.Valid() {
		prev, had = obs.Bind(sc)
		bound = true
	}
	err := op(p, lba)
	if bound {
		obs.Restore(prev, had)
	}
	if err == nil {
		sp.End()
	} else {
		sp.Abort()
	}
	return err
}

// Flush implements Device.
func (d *ObservedDisk) Flush() error { return d.dev.Flush() }

// Close implements Device.
func (d *ObservedDisk) Close() error { return d.dev.Close() }
