package blockdev

import (
	"time"

	"repro/internal/obs"
)

// ObservedDisk wraps a Device and records the latency of every ReadAt and
// WriteAt into stage-labelled histograms ("stage.<stage>.read" and
// "stage.<stage>.write"). It is the generic per-stage probe of the
// observability spine: relays wrap their whole service stack in one so the
// histogram captures service time plus downstream forwarding.
type ObservedDisk struct {
	dev        Device
	read, wrte obs.Timer
}

var _ Device = (*ObservedDisk)(nil)

// NewObservedDisk wraps dev with stage-latency probes registered in reg.
// A nil registry disables tracing by returning dev unwrapped.
func NewObservedDisk(dev Device, reg *obs.Registry, stage string) Device {
	if reg == nil {
		return dev
	}
	return &ObservedDisk{
		dev:  dev,
		read: reg.Timer(obs.StagePrefix + stage + ".read"),
		wrte: reg.Timer(obs.StagePrefix + stage + ".write"),
	}
}

// BlockSize implements Device.
func (d *ObservedDisk) BlockSize() int { return d.dev.BlockSize() }

// Blocks implements Device.
func (d *ObservedDisk) Blocks() uint64 { return d.dev.Blocks() }

// ReadAt implements Device, timing the read.
func (d *ObservedDisk) ReadAt(p []byte, lba uint64) error {
	t0 := time.Now()
	err := d.dev.ReadAt(p, lba)
	if err == nil {
		d.read.Since(t0)
	}
	return err
}

// WriteAt implements Device, timing the write.
func (d *ObservedDisk) WriteAt(p []byte, lba uint64) error {
	t0 := time.Now()
	err := d.dev.WriteAt(p, lba)
	if err == nil {
		d.wrte.Since(t0)
	}
	return err
}

// Flush implements Device.
func (d *ObservedDisk) Flush() error { return d.dev.Flush() }

// Close implements Device.
func (d *ObservedDisk) Close() error { return d.dev.Close() }
