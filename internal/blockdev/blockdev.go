// Package blockdev defines the block device abstraction the storage stack is
// built on: an addressable array of fixed-size logical blocks. It provides an
// in-memory sparse implementation, a service-time-modelling wrapper used by
// the simulated storage hosts, and a fault-injecting wrapper used by the
// reliability experiments.
package blockdev

import (
	"errors"
	"fmt"
	"sync"
)

// Common block device errors.
var (
	ErrOutOfRange = errors.New("blockdev: access beyond device capacity")
	ErrClosed     = errors.New("blockdev: device is closed")
	ErrBadLength  = errors.New("blockdev: buffer length is not a block multiple")
)

// Device is a random-access block device. Implementations must be safe for
// concurrent use.
type Device interface {
	// BlockSize returns the logical block size in bytes.
	BlockSize() int
	// Blocks returns the device capacity in logical blocks.
	Blocks() uint64
	// ReadAt reads len(p) bytes starting at logical block lba. len(p) must
	// be a multiple of the block size.
	ReadAt(p []byte, lba uint64) error
	// WriteAt writes len(p) bytes starting at logical block lba. len(p)
	// must be a multiple of the block size. Implementations must not
	// retain p after WriteAt returns: callers (the target's staging path,
	// the write-back relay) hand in pooled buffers they recycle as soon as
	// the call completes, so a deferred consumer must copy first — the
	// write-back device copies into its own staging buffer at admission
	// for exactly this reason.
	WriteAt(p []byte, lba uint64) error
	// Flush persists outstanding writes.
	Flush() error
	// Close releases the device. Subsequent operations fail with ErrClosed.
	Close() error
}

// MemDisk is an in-memory sparse block device. Unwritten blocks read as
// zeros; storage is allocated lazily per block, so large thin volumes are
// cheap.
type MemDisk struct {
	mu        sync.RWMutex
	blockSize int
	blocks    uint64
	data      map[uint64][]byte
	closed    bool
}

var _ Device = (*MemDisk)(nil)

// NewMemDisk creates a sparse in-memory device of the given geometry.
func NewMemDisk(blockSize int, blocks uint64) (*MemDisk, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("blockdev: invalid block size %d", blockSize)
	}
	if blocks == 0 {
		return nil, errors.New("blockdev: device must have at least one block")
	}
	return &MemDisk{
		blockSize: blockSize,
		blocks:    blocks,
		data:      make(map[uint64][]byte),
	}, nil
}

// BlockSize returns the logical block size in bytes.
func (d *MemDisk) BlockSize() int { return d.blockSize }

// Blocks returns the capacity in logical blocks.
func (d *MemDisk) Blocks() uint64 { return d.blocks }

// ReadAt implements Device.
func (d *MemDisk) ReadAt(p []byte, lba uint64) error {
	n, err := d.checkExtent(len(p), lba)
	if err != nil {
		return err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return ErrClosed
	}
	for i := uint64(0); i < n; i++ {
		dst := p[int(i)*d.blockSize : int(i+1)*d.blockSize]
		if blk, ok := d.data[lba+i]; ok {
			copy(dst, blk)
		} else {
			clear(dst)
		}
	}
	return nil
}

// WriteAt implements Device.
func (d *MemDisk) WriteAt(p []byte, lba uint64) error {
	n, err := d.checkExtent(len(p), lba)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	for i := uint64(0); i < n; i++ {
		src := p[int(i)*d.blockSize : int(i+1)*d.blockSize]
		blk, ok := d.data[lba+i]
		if !ok {
			blk = make([]byte, d.blockSize)
			d.data[lba+i] = blk
		}
		copy(blk, src)
	}
	return nil
}

// Flush implements Device. MemDisk writes are immediately durable.
func (d *MemDisk) Flush() error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return ErrClosed
	}
	return nil
}

// Close implements Device.
func (d *MemDisk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	d.data = nil
	return nil
}

// AllocatedBlocks returns the number of blocks backed by real storage,
// exposing the thin-provisioning behaviour for tests and capacity reporting.
func (d *MemDisk) AllocatedBlocks() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.data)
}

// Clone returns a point-in-time copy of the device (same geometry, deep
// copy of allocated blocks) — the substrate for volume snapshots.
func (d *MemDisk) Clone() (*MemDisk, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, ErrClosed
	}
	cp := &MemDisk{
		blockSize: d.blockSize,
		blocks:    d.blocks,
		data:      make(map[uint64][]byte, len(d.data)),
	}
	for lba, blk := range d.data {
		cp.data[lba] = append([]byte(nil), blk...)
	}
	return cp, nil
}

func (d *MemDisk) checkExtent(byteLen int, lba uint64) (uint64, error) {
	if byteLen == 0 || byteLen%d.blockSize != 0 {
		return 0, fmt.Errorf("%w: %d bytes with block size %d", ErrBadLength, byteLen, d.blockSize)
	}
	n := uint64(byteLen / d.blockSize)
	if lba >= d.blocks || n > d.blocks-lba {
		return 0, fmt.Errorf("%w: lba=%d blocks=%d capacity=%d", ErrOutOfRange, lba, n, d.blocks)
	}
	return n, nil
}
