package nat

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/netsim"
)

func flow() netsim.Flow {
	return netsim.Flow{
		Net:     netsim.StorageNet,
		SrcIP:   "10.0.0.1",
		SrcPort: 40000,
		DstIP:   "10.0.0.100",
		DstPort: 3260,
	}
}

func TestMatchWildcards(t *testing.T) {
	f := flow()
	tests := []struct {
		name string
		give Match
		want bool
	}{
		{"empty matches all", Match{}, true},
		{"exact", Match{Net: netsim.StorageNet, SrcIP: "10.0.0.1", SrcPort: 40000, DstIP: "10.0.0.100", DstPort: 3260}, true},
		{"dst only", Match{DstIP: "10.0.0.100", DstPort: 3260}, true},
		{"wrong net", Match{Net: netsim.InstanceNet}, false},
		{"wrong src ip", Match{SrcIP: "10.0.0.2"}, false},
		{"wrong src port", Match{SrcPort: 1}, false},
		{"wrong dst ip", Match{DstIP: "10.0.0.101"}, false},
		{"wrong dst port", Match{DstPort: 80}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.give.Matches(f); got != tt.want {
				t.Errorf("Matches = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestActionApply(t *testing.T) {
	f := flow()
	got := Action{SNATIP: "192.168.0.10", SNATPort: 5555, DNATIP: "192.168.0.20", DNATPort: 3260}.Apply(f)
	if got.SrcIP != "192.168.0.10" || got.SrcPort != 5555 {
		t.Errorf("SNAT result %+v", got)
	}
	if got.DstIP != "192.168.0.20" || got.DstPort != 3260 {
		t.Errorf("DNAT result %+v", got)
	}
	// Masquerade keeps the source port.
	got = Masquerade("192.168.0.10").Apply(f)
	if got.SrcIP != "192.168.0.10" || got.SrcPort != 40000 {
		t.Errorf("Masquerade result %+v", got)
	}
	// Redirect keeps the source untouched.
	got = Redirect("192.168.0.20", 13260).Apply(f)
	if got.SrcIP != f.SrcIP || got.DstIP != "192.168.0.20" || got.DstPort != 13260 {
		t.Errorf("Redirect result %+v", got)
	}
	// Empty action is identity.
	if got := (Action{}).Apply(f); got != f {
		t.Errorf("empty Action changed flow: %+v", got)
	}
}

func TestTableFirstMatchByPriority(t *testing.T) {
	tbl := NewTable()
	mustAdd(t, tbl, &Rule{ID: "low", Priority: 1, Match: Match{DstPort: 3260}, Action: Redirect("1.1.1.1", 0)})
	mustAdd(t, tbl, &Rule{ID: "high", Priority: 10, Match: Match{DstPort: 3260}, Action: Redirect("2.2.2.2", 0)})
	got, rule, ok := tbl.Apply(flow())
	if !ok || rule.ID != "high" {
		t.Fatalf("matched rule = %v, want high", rule)
	}
	if got.DstIP != "2.2.2.2" {
		t.Errorf("DstIP = %q, want 2.2.2.2", got.DstIP)
	}
	if rule.Hits() != 1 {
		t.Errorf("Hits = %d, want 1", rule.Hits())
	}
}

func TestTableInsertionOrderBreaksTies(t *testing.T) {
	tbl := NewTable()
	mustAdd(t, tbl, &Rule{ID: "first", Priority: 5, Match: Match{}, Action: Redirect("1.1.1.1", 0)})
	mustAdd(t, tbl, &Rule{ID: "second", Priority: 5, Match: Match{}, Action: Redirect("2.2.2.2", 0)})
	_, rule, ok := tbl.Apply(flow())
	if !ok || rule.ID != "first" {
		t.Errorf("matched %v, want first-inserted rule", rule)
	}
}

func TestTableNoMatchPassesThrough(t *testing.T) {
	tbl := NewTable()
	mustAdd(t, tbl, &Rule{ID: "r", Match: Match{DstPort: 9999}, Action: Redirect("9.9.9.9", 0)})
	got, rule, ok := tbl.Apply(flow())
	if ok || rule != nil {
		t.Error("unexpected match")
	}
	if got != flow() {
		t.Errorf("flow modified without match: %+v", got)
	}
}

func TestTableRemove(t *testing.T) {
	tbl := NewTable()
	mustAdd(t, tbl, &Rule{ID: "r", Match: Match{}, Action: Redirect("9.9.9.9", 0)})
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	tbl.Remove("r")
	if tbl.Len() != 0 {
		t.Errorf("Len after Remove = %d", tbl.Len())
	}
	if _, _, ok := tbl.Apply(flow()); ok {
		t.Error("removed rule still matches")
	}
	tbl.Remove("r") // removing again is a no-op
}

func TestTableDuplicateID(t *testing.T) {
	tbl := NewTable()
	mustAdd(t, tbl, &Rule{ID: "r", Match: Match{}})
	if err := tbl.Add(&Rule{ID: "r", Match: Match{}}); err == nil {
		t.Error("duplicate ID: want error")
	}
	if err := tbl.Add(&Rule{}); err == nil {
		t.Error("empty ID: want error")
	}
}

func TestTableRulesSnapshot(t *testing.T) {
	tbl := NewTable()
	mustAdd(t, tbl, &Rule{ID: "a", Priority: 1, Match: Match{}})
	mustAdd(t, tbl, &Rule{ID: "b", Priority: 2, Match: Match{}})
	rules := tbl.Rules()
	if len(rules) != 2 || rules[0].ID != "b" {
		t.Errorf("Rules() = %v, want priority order [b a]", rules)
	}
}

func TestTableConcurrentApplyAndMutate(t *testing.T) {
	tbl := NewTable()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				id := fmt.Sprintf("r-%d-%d", i, j)
				if err := tbl.Add(&Rule{ID: id, Match: Match{DstPort: 3260}}); err != nil {
					t.Errorf("Add: %v", err)
				}
				tbl.Apply(flow())
				tbl.Remove(id)
			}
		}(i)
	}
	wg.Wait()
}

func TestTranslationRoundTripProperty(t *testing.T) {
	// Property: applying SNAT then the inverse restores the flow (gateway
	// symmetry the splice layer depends on for the reverse path).
	f := func(srcPort uint16, gwOct uint8) bool {
		if srcPort == 0 {
			return true
		}
		orig := netsim.Flow{
			Net:     netsim.InstanceNet,
			SrcIP:   "10.0.0.1",
			SrcPort: int(srcPort),
			DstIP:   "10.0.0.100",
			DstPort: 3260,
		}
		gw := fmt.Sprintf("192.168.0.%d", gwOct)
		masq := Masquerade(gw).Apply(orig)
		if masq.SrcPort != orig.SrcPort {
			return false
		}
		restored := Action{SNATIP: orig.SrcIP}.Apply(masq)
		return restored == orig
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mustAdd(t *testing.T, tbl *Table, r *Rule) {
	t.Helper()
	if err := tbl.Add(r); err != nil {
		t.Fatalf("Add(%v): %v", r, err)
	}
}
