// Package nat implements the address-translation rule engine StorM's
// network splicing is built from: SNAT/DNAT rules with wildcard matching,
// IP masquerading, and per-rule hit counters. Rule tables live on hosts and
// gateways; the splice forwarding plane evaluates them when resolving a
// flow's route, exactly where iptables would rewrite packets in the paper's
// prototype.
package nat

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/netsim"
	"repro/internal/obs"
)

// Match selects flows. Zero-valued fields are wildcards.
type Match struct {
	Net     netsim.Network
	SrcIP   string
	SrcPort int
	DstIP   string
	DstPort int
}

// Matches reports whether the flow satisfies every non-wildcard field.
func (m Match) Matches(f netsim.Flow) bool {
	if m.Net != 0 && m.Net != f.Net {
		return false
	}
	if m.SrcIP != "" && m.SrcIP != f.SrcIP {
		return false
	}
	if m.SrcPort != 0 && m.SrcPort != f.SrcPort {
		return false
	}
	if m.DstIP != "" && m.DstIP != f.DstIP {
		return false
	}
	if m.DstPort != 0 && m.DstPort != f.DstPort {
		return false
	}
	return true
}

// Action rewrites flow addresses. Empty fields leave the flow unchanged;
// a zero port in SNAT/DNAT preserves the original port (masquerading).
type Action struct {
	SNATIP   string
	SNATPort int
	DNATIP   string
	DNATPort int
}

// Apply rewrites f according to the action.
func (a Action) Apply(f netsim.Flow) netsim.Flow {
	if a.SNATIP != "" {
		f.SrcIP = a.SNATIP
		if a.SNATPort != 0 {
			f.SrcPort = a.SNATPort
		}
	}
	if a.DNATIP != "" {
		f.DstIP = a.DNATIP
		if a.DNATPort != 0 {
			f.DstPort = a.DNATPort
		}
	}
	return f
}

// Rule is one prioritized translation rule.
type Rule struct {
	ID       string
	Priority int
	Match    Match
	Action   Action

	hits atomic.Int64
}

// Hits returns how many flows the rule has rewritten.
func (r *Rule) Hits() int64 { return r.hits.Load() }

// String renders the rule compactly.
func (r *Rule) String() string {
	return fmt.Sprintf("nat[%s p%d %+v -> %+v]", r.ID, r.Priority, r.Match, r.Action)
}

// Table is an ordered NAT rule table. All methods are safe for concurrent
// use. Rules are evaluated highest priority first; ties break by insertion
// order; only the first matching rule applies (iptables first-match).
type Table struct {
	mu    sync.Mutex
	rules []*Rule
	seq   int
	order map[string]int

	rewrites *obs.Counter
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{
		order:    make(map[string]int),
		rewrites: obs.Default().Counter("nat.rewrites"),
	}
}

// Add inserts a rule. The ID must be unique within the table.
func (t *Table) Add(r *Rule) error {
	if r.ID == "" {
		return fmt.Errorf("nat: rule must have an ID")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.order[r.ID]; ok {
		return fmt.Errorf("nat: duplicate rule ID %q", r.ID)
	}
	t.order[r.ID] = t.seq
	t.seq++
	t.rules = append(t.rules, r)
	sort.SliceStable(t.rules, func(i, j int) bool {
		if t.rules[i].Priority != t.rules[j].Priority {
			return t.rules[i].Priority > t.rules[j].Priority
		}
		return t.order[t.rules[i].ID] < t.order[t.rules[j].ID]
	})
	return nil
}

// Remove deletes the rule with the given ID. Removing a missing rule is a
// no-op, mirroring iptables -D semantics on already-removed rules.
func (t *Table) Remove(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, r := range t.rules {
		if r.ID == id {
			t.rules = append(t.rules[:i], t.rules[i+1:]...)
			delete(t.order, id)
			return
		}
	}
}

// Rules returns a snapshot of the table in evaluation order.
func (t *Table) Rules() []*Rule {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Rule, len(t.rules))
	copy(out, t.rules)
	return out
}

// Len returns the number of installed rules.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.rules)
}

// Apply evaluates the table against f. It returns the (possibly rewritten)
// flow, the matching rule (nil if none), and whether any rule matched.
//
// Established flows are unaffected by later rule changes because the splice
// layer evaluates tables only at connection setup — this is what makes the
// paper's atomic attachment trick (install rules, attach volume, remove
// rules) safe for concurrent attachments.
func (t *Table) Apply(f netsim.Flow) (netsim.Flow, *Rule, bool) {
	t.mu.Lock()
	rules := make([]*Rule, len(t.rules))
	copy(rules, t.rules)
	t.mu.Unlock()
	for _, r := range rules {
		if r.Match.Matches(f) {
			r.hits.Add(1)
			t.rewrites.Inc()
			out := r.Action.Apply(f)
			obs.Default().Eventf("nat", "rule %s rewrote %s:%d->%s:%d to %s:%d->%s:%d",
				r.ID, f.SrcIP, f.SrcPort, f.DstIP, f.DstPort,
				out.SrcIP, out.SrcPort, out.DstIP, out.DstPort)
			return out, r, true
		}
	}
	return f, nil, false
}

// Masquerade returns an action that rewrites the source IP while keeping
// the source port, as StorM's gateways do to hide storage-network addresses
// from the instance network.
func Masquerade(ip string) Action { return Action{SNATIP: ip} }

// Redirect returns an action that rewrites the destination address.
func Redirect(ip string, port int) Action { return Action{DNATIP: ip, DNATPort: port} }
