package scrub

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cas"
	"repro/internal/obs"
)

const (
	testChunk = 1024
	testSlots = 32
)

// storeReplica adapts a bare cas.Store to the Replica interface for tests
// (production wiring uses replicate.Target, which satisfies it directly).
type storeReplica struct {
	name    string
	store   *cas.Store
	healthy bool
}

func (r *storeReplica) Name() string            { return r.name }
func (r *storeReplica) Healthy() bool           { return r.healthy }
func (r *storeReplica) IDAt(slot uint64) cas.ID { return r.store.IDAt(slot) }

func (r *storeReplica) ReadChunk(slot uint64) ([]byte, error) {
	buf := make([]byte, r.store.ChunkSize())
	if err := r.store.Read(slot, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func (r *storeReplica) WriteChunk(slot uint64, data []byte) error {
	return r.store.Repair(slot, data)
}

// replicaSet builds n identical replicas filled with a seeded workload.
func replicaSet(t *testing.T, n int) []*storeReplica {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	content := make([][]byte, testSlots)
	for slot := range content {
		content[slot] = make([]byte, testChunk)
		rng.Read(content[slot])
	}
	out := make([]*storeReplica, n)
	for i := range out {
		s, err := cas.Open(cas.NewMemBackend(testSlots), testChunk, testSlots)
		if err != nil {
			t.Fatal(err)
		}
		for slot, data := range content {
			if _, err := s.Write(uint64(slot), data); err != nil {
				t.Fatal(err)
			}
		}
		out[i] = &storeReplica{name: fmt.Sprintf("r%d", i), store: s, healthy: true}
	}
	return out
}

func scrubber(reps []*storeReplica) *Scrubber {
	rs := make([]Replica, len(reps))
	for i, r := range reps {
		rs[i] = r
	}
	return New(Config{
		Name:      "t0",
		Replicas:  rs,
		Slots:     testSlots,
		ChunkSize: testChunk,
		Interval:  5 * time.Millisecond,
		Obs:       obs.NewRegistry(),
	})
}

func TestCleanPassFindsNothing(t *testing.T) {
	reps := replicaSet(t, 3)
	st, err := scrubber(reps).RunPass()
	if err != nil {
		t.Fatal(err)
	}
	if st.Scanned != testSlots || st.Mismatches != 0 || st.Repaired != 0 || st.Unrepairable != 0 {
		t.Fatalf("clean pass stats = %+v", st)
	}
}

// TestRepairsCorruptReplica is the acceptance scrub test: one backend's
// chunk is corrupted and the scrubber must restore it from the healthy
// majority.
func TestRepairsCorruptReplica(t *testing.T) {
	reps := replicaSet(t, 3)
	const slot = 5
	want, err := reps[0].ReadChunk(slot)
	if err != nil {
		t.Fatal(err)
	}
	if err := reps[2].store.Corrupt(slot); err != nil {
		t.Fatal(err)
	}
	if _, err := reps[2].ReadChunk(slot); err == nil {
		t.Fatal("corruption not visible before scrub")
	}
	st, err := scrubber(reps).RunPass()
	if err != nil {
		t.Fatal(err)
	}
	if st.Mismatches != 1 || st.Repaired != 1 || st.Unrepairable != 0 {
		t.Fatalf("pass stats = %+v", st)
	}
	got, err := reps[2].ReadChunk(slot)
	if err != nil {
		t.Fatalf("read after repair: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("repair restored wrong content")
	}
	// A second pass is clean.
	st, err = scrubber(reps).RunPass()
	if err != nil {
		t.Fatal(err)
	}
	if st.Mismatches != 0 {
		t.Fatalf("post-repair pass stats = %+v", st)
	}
}

func TestRepairsDivergentReplica(t *testing.T) {
	reps := replicaSet(t, 3)
	const slot = 2
	want, err := reps[0].ReadChunk(slot)
	if err != nil {
		t.Fatal(err)
	}
	// Divergence (a stale or phantom write), not corruption: the replica's
	// chunk is internally consistent but disagrees with the majority.
	stale := bytes.Repeat([]byte{0xEE}, testChunk)
	if err := reps[1].WriteChunk(slot, stale); err != nil {
		t.Fatal(err)
	}
	st, err := scrubber(reps).RunPass()
	if err != nil {
		t.Fatal(err)
	}
	if st.Mismatches != 1 || st.Repaired != 1 {
		t.Fatalf("pass stats = %+v", st)
	}
	got, err := reps[1].ReadChunk(slot)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("divergent replica not restored to majority content")
	}
}

func TestNoMajorityIsUnrepairable(t *testing.T) {
	reps := replicaSet(t, 2)
	const slot = 0
	if err := reps[1].store.Corrupt(slot); err != nil {
		t.Fatal(err)
	}
	// 1 verified vote out of 2 healthy replicas is not a strict majority:
	// repair must refuse to guess.
	st, err := scrubber(reps).RunPass()
	if err != nil {
		t.Fatal(err)
	}
	if st.Unrepairable != 1 || st.Repaired != 0 {
		t.Fatalf("pass stats = %+v", st)
	}
	if _, err := reps[1].ReadChunk(slot); err == nil {
		t.Fatal("unrepairable slot was silently rewritten")
	}
}

func TestUnhealthyReplicasSkipped(t *testing.T) {
	reps := replicaSet(t, 3)
	if err := reps[2].store.Corrupt(1); err != nil {
		t.Fatal(err)
	}
	reps[2].healthy = false
	st, err := scrubber(reps).RunPass()
	if err != nil {
		t.Fatal(err)
	}
	// The corrupt replica is out of the set: nothing to find or repair.
	if st.Mismatches != 0 || st.Repaired != 0 {
		t.Fatalf("pass stats = %+v", st)
	}
	if _, err := reps[2].ReadChunk(1); err == nil {
		t.Fatal("unhealthy replica was touched")
	}
}

func TestBackgroundLoopRepairs(t *testing.T) {
	reps := replicaSet(t, 3)
	if err := reps[0].store.Corrupt(7); err != nil {
		t.Fatal(err)
	}
	s := scrubber(reps)
	s.Start()
	defer s.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := reps[0].ReadChunk(7); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background loop never repaired the corrupt chunk")
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop() // idempotent
}

func TestObsCounters(t *testing.T) {
	reps := replicaSet(t, 3)
	if err := reps[1].store.Corrupt(3); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rs := make([]Replica, len(reps))
	for i, r := range reps {
		rs[i] = r
	}
	s := New(Config{Name: "m1", Replicas: rs, Slots: testSlots, ChunkSize: testChunk, Obs: reg})
	if _, err := s.RunPass(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("scrub.m1.passes").Value(); got != 1 {
		t.Fatalf("passes = %d", got)
	}
	if got := reg.Counter("scrub.m1.scanned").Value(); got != testSlots {
		t.Fatalf("scanned = %d", got)
	}
	if got := reg.Counter("scrub.m1.repaired").Value(); got != 1 {
		t.Fatalf("repaired = %d", got)
	}
}
