// Package scrub implements the background integrity scrubber for
// content-addressed replica sets: it paces through the applied data slot
// by slot, re-checksums every healthy replica's content, and repairs
// divergent or corrupt replicas from a verified healthy majority. Progress
// and repairs are exported as scrub.<name>.* gauges/counters and events.
//
// The scrubber is deliberately decoupled from the replication box: it
// sees replicas through the small Replica interface, which
// replicate.Target satisfies structurally, so a scrubber is pointed
// straight at Box.Targets() — or at any other set of content-addressed
// stores.
package scrub

import (
	"errors"
	"sync"
	"time"

	"repro/internal/cas"
	"repro/internal/obs"
)

// Replica is one scrubbed backend: a content-addressed view of the same
// logical image. ReadChunk must verify content (returning an error for a
// chunk that no longer hashes to its ID); WriteChunk is the repair path.
type Replica interface {
	Name() string
	Healthy() bool
	IDAt(slot uint64) cas.ID
	ReadChunk(slot uint64) ([]byte, error)
	WriteChunk(slot uint64, data []byte) error
}

// Config parameterizes a scrubber.
type Config struct {
	// Name labels the scrubber's obs series (scrub.<name>.*) — the
	// middle-box instance name in production wiring.
	Name string
	// Replicas is the replica set to reconcile (≥ 2 for majority repair).
	Replicas []Replica
	// Slots is the logical image size in chunks.
	Slots uint64
	// ChunkSize is the chunk size in bytes (used for zero-fill repair).
	ChunkSize int
	// Interval is the idle time between background passes. Default 1s.
	Interval time.Duration
	// Pace is how many slots are scanned between scheduling yields in the
	// background loop, bounding the latency impact on foreground I/O.
	// Default 64.
	Pace int
	// Paused, when non-nil, is polled before each background pass: while it
	// reports true the scrubber idles instead of scanning. Production
	// wiring points it at the replication box's BreakerOpen — scrubbing
	// while a backend breaker is open would race resync on a degraded set
	// and add read load exactly when the system is shedding it.
	Paused func() bool
	// Obs receives metrics and events (default obs.Default()).
	Obs *obs.Registry
}

// PassStats summarizes one scrub pass.
type PassStats struct {
	// Scanned counts slots examined.
	Scanned uint64
	// Mismatches counts replica-slots found divergent or corrupt.
	Mismatches uint64
	// Repaired counts replica-slots rewritten from the healthy majority.
	Repaired uint64
	// Unrepairable counts slots with no verifiable majority to repair
	// from.
	Unrepairable uint64
}

// ErrStopped reports a pass interrupted by Stop.
var ErrStopped = errors.New("scrub: stopped")

// Scrubber reconciles a content-addressed replica set.
type Scrubber struct {
	cfg  Config
	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	mPasses, mScanned, mRepaired, mMismatches, mUnrepairable, mSkipped *obs.Counter
	gLastPassMS                                                        *obs.Gauge
}

// New builds a scrubber (call Start for the background loop, or RunPass
// directly).
func New(cfg Config) *Scrubber {
	if cfg.Interval == 0 {
		cfg.Interval = time.Second
	}
	if cfg.Pace == 0 {
		cfg.Pace = 64
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.Default()
	}
	s := &Scrubber{cfg: cfg, stop: make(chan struct{})}
	p := "scrub." + cfg.Name + "."
	s.mPasses = cfg.Obs.Counter(p + "passes")
	s.mScanned = cfg.Obs.Counter(p + "scanned")
	s.mRepaired = cfg.Obs.Counter(p + "repaired")
	s.mMismatches = cfg.Obs.Counter(p + "mismatches")
	s.mUnrepairable = cfg.Obs.Counter(p + "unrepairable")
	s.gLastPassMS = cfg.Obs.Gauge(p + "last_pass_ms")
	s.mSkipped = cfg.Obs.Counter(p + "skipped_passes")
	return s
}

// Start launches the paced background loop: one full pass, then Interval
// idle, until Stop.
func (s *Scrubber) Start() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			if s.cfg.Paused != nil && s.cfg.Paused() {
				s.mSkipped.Inc()
			} else if _, err := s.runPass(true); err != nil {
				return
			}
			select {
			case <-s.stop:
				return
			case <-time.After(s.cfg.Interval):
			}
		}
	}()
}

// Stop halts the background loop and waits for it.
func (s *Scrubber) Stop() {
	s.once.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// RunPass scans every slot once, repairing divergent replicas, and
// returns the pass statistics. Safe to call concurrently with foreground
// writes: a slot raced by an in-flight write may be "repaired" to the
// pre-write majority, which the replication box's dispatch/resync then
// reconverges — the system settles on the primary's content either way.
func (s *Scrubber) RunPass() (PassStats, error) {
	return s.runPass(false)
}

func (s *Scrubber) runPass(paced bool) (PassStats, error) {
	start := time.Now()
	var st PassStats
	for slot := uint64(0); slot < s.cfg.Slots; slot++ {
		if paced && s.cfg.Pace > 0 && slot%uint64(s.cfg.Pace) == 0 {
			select {
			case <-s.stop:
				return st, ErrStopped
			default:
			}
		}
		s.scrubSlot(slot, &st)
	}
	st.Scanned = s.cfg.Slots
	s.mPasses.Inc()
	s.mScanned.Add(int64(st.Scanned))
	s.mRepaired.Add(int64(st.Repaired))
	s.mMismatches.Add(int64(st.Mismatches))
	s.mUnrepairable.Add(int64(st.Unrepairable))
	s.gLastPassMS.Set(time.Since(start).Milliseconds())
	if st.Repaired > 0 || st.Unrepairable > 0 {
		s.cfg.Obs.Eventf("scrub", "scrubber %s pass: %d slots, %d mismatches, %d repaired, %d unrepairable",
			s.cfg.Name, st.Scanned, st.Mismatches, st.Repaired, st.Unrepairable)
	}
	return st, nil
}

// scrubSlot reconciles one slot across the healthy replicas: every
// replica's logical content is read back verified and hashed; the
// majority hash wins and divergent or unreadable replicas are rewritten
// with the majority's (re-verified) content.
func (s *Scrubber) scrubSlot(slot uint64, st *PassStats) {
	type vote struct {
		r    Replica
		data []byte // nil when the read failed (corrupt chunk)
		sum  cas.ID
	}
	var healthy []vote
	for _, r := range s.cfg.Replicas {
		if !r.Healthy() {
			continue
		}
		v := vote{r: r}
		if data, err := r.ReadChunk(slot); err == nil {
			v.data = data
			v.sum = cas.Sum(data)
		}
		healthy = append(healthy, v)
	}
	if len(healthy) < 2 {
		return // nothing to compare against
	}
	counts := make(map[cas.ID]int)
	for _, v := range healthy {
		if v.data != nil {
			counts[v.sum]++
		}
	}
	var major cas.ID
	majorN := 0
	for sum, n := range counts {
		if n > majorN {
			major, majorN = sum, n
		}
	}
	bad := 0
	for _, v := range healthy {
		if v.data == nil || v.sum != major {
			bad++
		}
	}
	if bad == 0 {
		return
	}
	st.Mismatches += uint64(bad)
	if majorN*2 <= len(healthy) {
		// No strict majority agrees on any content: repairing would be a
		// guess, not a restoration.
		st.Unrepairable++
		s.cfg.Obs.Eventf("scrub", "scrubber %s slot %d unrepairable: no majority among %d replicas",
			s.cfg.Name, slot, len(healthy))
		return
	}
	var good []byte
	for _, v := range healthy {
		if v.data != nil && v.sum == major {
			good = v.data
			break
		}
	}
	for _, v := range healthy {
		if v.data != nil && v.sum == major {
			continue
		}
		if err := v.r.WriteChunk(slot, good); err != nil {
			s.cfg.Obs.Eventf("scrub", "scrubber %s repair of %s slot %d failed: %v",
				s.cfg.Name, v.r.Name(), slot, err)
			continue
		}
		st.Repaired++
	}
}
