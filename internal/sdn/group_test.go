package sdn

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/netsim"
	"repro/internal/vswitch"
)

func groupMB(name string, insts ...Instance) MBSpec {
	return MBSpec{Name: name, Mode: vswitch.ModeTerminate, Instances: insts}
}

func inst(name, host string, port int) Instance {
	return Instance{Name: name, Host: host,
		RelayAddr: netsim.Addr{Net: netsim.InstanceNet, IP: "192.168.10." + name, Port: port}}
}

func flowPort(port int) netsim.Flow {
	f := testFlow()
	f.SrcPort = port
	return f
}

func TestGroupChainWalkAffinity(t *testing.T) {
	c := NewController()
	g := groupMB("grp", inst("i0", "h4", 3260), inst("i1", "h5", 3260))
	if err := c.InstallChain(chain("c", g)); err != nil {
		t.Fatalf("InstallChain: %v", err)
	}
	// Distinct flows spread across instances; each flow is sticky.
	first := make(map[int]string)
	for port := 40001; port <= 40004; port++ {
		steps := c.Walk(flowPort(port), "gwhost", IngressStation)
		if len(steps) != 1 || steps[0].MB.Mode != vswitch.ModeTerminate {
			t.Fatalf("walk(%d) = %+v", port, steps)
		}
		first[port] = steps[0].MB.Name
		if steps[0].MB.RelayAddr.IsZero() {
			t.Fatalf("group step missing relay addr: %+v", steps[0])
		}
	}
	seen := map[string]int{}
	for _, name := range first {
		seen[name]++
	}
	if len(seen) != 2 || seen["i0"] != 2 || seen["i1"] != 2 {
		t.Fatalf("4 flows should split 2/2 across instances, got %v", seen)
	}
	for port, want := range first {
		steps := c.Walk(flowPort(port), "gwhost", IngressStation)
		if steps[0].MB.Name != want {
			t.Fatalf("flow %d moved %s -> %s", port, want, steps[0].MB.Name)
		}
	}
}

func TestGroupChainResumesFromMemberStation(t *testing.T) {
	c := NewController()
	g := groupMB("grp", inst("i0", "h4", 3260), inst("i1", "h5", 3260))
	if err := c.InstallChain(chain("c", g, fwdMB("tail", "h6"))); err != nil {
		t.Fatalf("InstallChain: %v", err)
	}
	steps := c.Walk(flowPort(40001), "gwhost", IngressStation)
	if len(steps) != 1 {
		t.Fatalf("walk = %+v, want stop at terminating member", steps)
	}
	member := steps[0].MB
	// The member relay's onward dial resumes the walk from its own station.
	rest := c.Walk(flowPort(40001), member.Host, member.Name)
	if len(rest) != 1 || rest[0].MB.Name != "tail" {
		t.Fatalf("resumed walk from %s = %+v, want [tail]", member.Name, rest)
	}
}

func TestGroupScaleEventKeepsBindings(t *testing.T) {
	c := NewController()
	g2 := groupMB("grp", inst("i0", "h4", 3260), inst("i1", "h5", 3260))
	if err := c.InstallChain(chain("c", g2)); err != nil {
		t.Fatalf("InstallChain: %v", err)
	}
	before := make(map[int]string)
	for port := 40001; port <= 40004; port++ {
		before[port] = c.Walk(flowPort(port), "gwhost", IngressStation)[0].MB.Name
	}
	// Scale 2 -> 3 through UpdateChain: same group name, one more instance.
	g3 := groupMB("grp", inst("i0", "h4", 3260), inst("i1", "h5", 3260), inst("i2", "h6", 3260))
	if err := c.UpdateChain("c", []MBSpec{g3}); err != nil {
		t.Fatalf("UpdateChain: %v", err)
	}
	for port, want := range before {
		got := c.Walk(flowPort(port), "gwhost", IngressStation)[0].MB.Name
		if got != want {
			t.Fatalf("scale event remapped flow %d: %s -> %s", port, want, got)
		}
	}
	// New flows fill the new instance first.
	if got := c.Walk(flowPort(49000), "gwhost", IngressStation)[0].MB.Name; got != "i2" {
		t.Fatalf("new flow after scale-up = %s, want i2", got)
	}
	if c.Group("grp") == nil {
		t.Fatal("Group accessor lost the live group")
	}
}

func TestGroupSharedAcrossChains(t *testing.T) {
	c := NewController()
	g := func() MBSpec { return groupMB("grp", inst("i0", "h4", 3260), inst("i1", "h5", 3260)) }
	if err := c.InstallChain(chain("c1", g())); err != nil {
		t.Fatalf("InstallChain c1: %v", err)
	}
	sel2 := vswitch.Match{DstIP: "192.168.0.30", DstPort: 3260}
	if err := c.InstallChain(&Chain{ID: "c2", Selector: sel2, IngressHost: "gwhost", MBs: []MBSpec{g()}}); err != nil {
		t.Fatalf("InstallChain c2: %v", err)
	}
	// The group survives the removal of one referencing chain...
	c.RemoveChain("c1")
	if c.Group("grp") == nil {
		t.Fatal("group dropped while chain c2 still references it")
	}
	// ...and is reclaimed with the last one.
	c.RemoveChain("c2")
	if c.Group("grp") != nil {
		t.Fatal("group leaked after every referencing chain was removed")
	}
}

// TestUpdateChainRollbackRestoresPreviousChain is the regression test for
// the rollback bug: a failed reinstall used to leave the chain registered
// with the new middle-box list and zero installed rules.
func TestUpdateChainRollbackRestoresPreviousChain(t *testing.T) {
	c := NewController()
	if err := c.InstallChain(chain("c", fwdMB("mb1", "h4"))); err != nil {
		t.Fatalf("InstallChain: %v", err)
	}
	// Duplicate instance names make the following hop install duplicate
	// rule IDs on the same switch, failing partway through the reinstall.
	bad := []MBSpec{
		{Name: "grp", Mode: vswitch.ModeForward, Instances: []Instance{
			{Name: "dup", Host: "h7"}, {Name: "dup", Host: "h7"},
		}},
		fwdMB("tail", "h8"),
	}
	if err := c.UpdateChain("c", bad); err == nil {
		t.Fatal("UpdateChain with duplicate instance stations: want error")
	}
	got := c.Chain("c")
	if got == nil {
		t.Fatal("chain deregistered by failed update")
	}
	if len(got.MBs) != 1 || got.MBs[0].Name != "mb1" {
		t.Fatalf("chain MBs after failed update = %+v, want previous [mb1]", got.MBs)
	}
	steps := c.Walk(testFlow(), "gwhost", IngressStation)
	if len(steps) != 1 || steps[0].MB.Name != "mb1" {
		t.Fatalf("walk after failed update = %+v, want previous path [mb1]", steps)
	}
	// No partial rules of the failed configuration remain anywhere.
	for _, host := range []string{"gwhost", "h4", "h7", "h8"} {
		for _, r := range c.SwitchFor(host).Rules() {
			if r.Action.Station == "grp" || r.Action.Station == "tail" || r.Action.Station == "dup" {
				t.Fatalf("stale rule from failed update on %s: %v", host, r)
			}
		}
	}
}

// TestWalkIsReadConsistentUnderUpdate drives concurrent Walk and
// UpdateChain (run with -race): every observed path must be entirely one
// chain configuration, never a half-old/half-new mix.
func TestWalkIsReadConsistentUnderUpdate(t *testing.T) {
	c := NewController()
	cfgA := []MBSpec{fwdMB("a1", "h1"), fwdMB("a2", "h2")}
	cfgB := []MBSpec{fwdMB("b1", "h3"), fwdMB("b2", "h4")}
	if err := c.InstallChain(chain("c", cfgA...)); err != nil {
		t.Fatalf("InstallChain: %v", err)
	}
	stop := make(chan struct{})
	errs := make(chan error, 16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				steps := c.Walk(testFlow(), "gwhost", IngressStation)
				if len(steps) != 2 {
					errs <- fmt.Errorf("walk saw %d steps, want 2: %+v", len(steps), steps)
					return
				}
				names := steps[0].MB.Name + "," + steps[1].MB.Name
				if names != "a1,a2" && names != "b1,b2" {
					errs <- fmt.Errorf("mixed-generation walk: %s", names)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 400; i++ {
			cfg := cfgA
			if i%2 == 0 {
				cfg = cfgB
			}
			if err := c.UpdateChain("c", cfg); err != nil {
				errs <- fmt.Errorf("UpdateChain: %w", err)
				return
			}
		}
		close(stop)
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
