package sdn

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/vswitch"
)

func testFlow() netsim.Flow {
	return netsim.Flow{
		Net:     netsim.InstanceNet,
		SrcIP:   "192.168.0.10", // ingress gateway (masqueraded)
		SrcPort: 40001,
		DstIP:   "192.168.0.20", // egress gateway
		DstPort: 3260,
	}
}

func selector() vswitch.Match {
	return vswitch.Match{DstIP: "192.168.0.20", DstPort: 3260}
}

func chain(id string, mbs ...MBSpec) *Chain {
	return &Chain{ID: id, Selector: selector(), IngressHost: "gwhost", MBs: mbs}
}

func fwdMB(name, host string) MBSpec {
	return MBSpec{Name: name, Host: host, Mode: vswitch.ModeForward}
}

func termMB(name, host string, port int) MBSpec {
	return MBSpec{Name: name, Host: host, Mode: vswitch.ModeTerminate,
		RelayAddr: netsim.Addr{Net: netsim.StorageNet, IP: "10.0.0.50", Port: port}}
}

func TestInstallAndWalkForwardChain(t *testing.T) {
	c := NewController()
	if err := c.InstallChain(chain("t1/vol1", fwdMB("mb1", "h4"), fwdMB("mb2", "h5"))); err != nil {
		t.Fatalf("InstallChain: %v", err)
	}
	steps := c.Walk(testFlow(), "gwhost", IngressStation)
	if len(steps) != 2 {
		t.Fatalf("Walk returned %d steps, want 2", len(steps))
	}
	if steps[0].MB.Name != "mb1" || steps[0].MB.Host != "h4" {
		t.Errorf("step 0 = %+v", steps[0])
	}
	if steps[1].MB.Name != "mb2" || steps[1].MB.Host != "h5" {
		t.Errorf("step 1 = %+v", steps[1])
	}
}

func TestWalkStopsAtTerminator(t *testing.T) {
	c := NewController()
	if err := c.InstallChain(chain("t1/vol1",
		fwdMB("mb1", "h4"), termMB("mb2", "h5", 13260), fwdMB("mb3", "h6"))); err != nil {
		t.Fatalf("InstallChain: %v", err)
	}
	steps := c.Walk(testFlow(), "gwhost", IngressStation)
	if len(steps) != 2 {
		t.Fatalf("Walk returned %d steps, want 2 (stop at terminator)", len(steps))
	}
	if steps[1].MB.Mode != vswitch.ModeTerminate || steps[1].MB.RelayAddr.Port != 13260 {
		t.Errorf("terminator step = %+v", steps[1])
	}
	// Resuming the walk from the terminator (as the relay's onward dial
	// does) picks up the rest of the chain.
	rest := c.Walk(testFlow(), "h5", "mb2")
	if len(rest) != 1 || rest[0].MB.Name != "mb3" {
		t.Errorf("resumed walk = %+v, want [mb3]", rest)
	}
}

func TestWalkNoChain(t *testing.T) {
	c := NewController()
	if steps := c.Walk(testFlow(), "gwhost", IngressStation); steps != nil {
		t.Errorf("Walk with no chain = %v, want nil", steps)
	}
}

func TestWalkSelectorMismatch(t *testing.T) {
	c := NewController()
	if err := c.InstallChain(chain("c", fwdMB("mb1", "h4"))); err != nil {
		t.Fatalf("InstallChain: %v", err)
	}
	other := testFlow()
	other.DstIP = "192.168.0.99"
	if steps := c.Walk(other, "gwhost", IngressStation); steps != nil {
		t.Errorf("Walk with mismatched selector = %v, want nil", steps)
	}
}

func TestRemoveChain(t *testing.T) {
	c := NewController()
	if err := c.InstallChain(chain("c", fwdMB("mb1", "h4"))); err != nil {
		t.Fatalf("InstallChain: %v", err)
	}
	c.RemoveChain("c")
	if steps := c.Walk(testFlow(), "gwhost", IngressStation); steps != nil {
		t.Errorf("Walk after RemoveChain = %v, want nil", steps)
	}
	if c.Chain("c") != nil {
		t.Error("Chain still registered after RemoveChain")
	}
	c.RemoveChain("c") // no-op
}

func TestUpdateChainAddsAndRemovesMBs(t *testing.T) {
	c := NewController()
	if err := c.InstallChain(chain("c", fwdMB("mb1", "h4"))); err != nil {
		t.Fatalf("InstallChain: %v", err)
	}
	// Scale up: add a second middle-box.
	if err := c.UpdateChain("c", []MBSpec{fwdMB("mb1", "h4"), fwdMB("mb2", "h5")}); err != nil {
		t.Fatalf("UpdateChain: %v", err)
	}
	steps := c.Walk(testFlow(), "gwhost", IngressStation)
	if len(steps) != 2 {
		t.Fatalf("after scale-up Walk = %d steps, want 2", len(steps))
	}
	// Scale down: drop the first.
	if err := c.UpdateChain("c", []MBSpec{fwdMB("mb2", "h5")}); err != nil {
		t.Fatalf("UpdateChain: %v", err)
	}
	steps = c.Walk(testFlow(), "gwhost", IngressStation)
	if len(steps) != 1 || steps[0].MB.Name != "mb2" {
		t.Errorf("after scale-down Walk = %+v, want [mb2]", steps)
	}
}

func TestUpdateChainUnknown(t *testing.T) {
	c := NewController()
	if err := c.UpdateChain("nope", nil); err == nil {
		t.Error("UpdateChain on unknown chain: want error")
	}
}

func TestInstallChainValidation(t *testing.T) {
	c := NewController()
	if err := c.InstallChain(&Chain{Selector: selector(), IngressHost: "h"}); err == nil {
		t.Error("missing ID: want error")
	}
	if err := c.InstallChain(&Chain{ID: "x", Selector: selector()}); err == nil {
		t.Error("missing ingress host: want error")
	}
	if err := c.InstallChain(chain("y", MBSpec{Name: "", Host: "h"})); err == nil {
		t.Error("missing MB name: want error")
	}
	if err := c.InstallChain(chain("z", MBSpec{Name: "m", Host: "h", Mode: vswitch.ModeTerminate})); err == nil {
		t.Error("terminator without relay addr: want error")
	}
}

func TestInstallChainDuplicate(t *testing.T) {
	c := NewController()
	if err := c.InstallChain(chain("c", fwdMB("mb1", "h4"))); err != nil {
		t.Fatalf("InstallChain: %v", err)
	}
	if err := c.InstallChain(chain("c", fwdMB("mb2", "h5"))); err == nil {
		t.Error("duplicate chain ID: want error")
	}
}

func TestTwoChainsAreIndependent(t *testing.T) {
	c := NewController()
	sel2 := vswitch.Match{DstIP: "192.168.0.30", DstPort: 3260}
	if err := c.InstallChain(chain("c1", fwdMB("mb1", "h4"))); err != nil {
		t.Fatalf("InstallChain c1: %v", err)
	}
	if err := c.InstallChain(&Chain{ID: "c2", Selector: sel2, IngressHost: "gwhost",
		MBs: []MBSpec{fwdMB("mb9", "h9")}}); err != nil {
		t.Fatalf("InstallChain c2: %v", err)
	}
	f2 := testFlow()
	f2.DstIP = "192.168.0.30"
	s1 := c.Walk(testFlow(), "gwhost", IngressStation)
	s2 := c.Walk(f2, "gwhost", IngressStation)
	if len(s1) != 1 || s1[0].MB.Name != "mb1" {
		t.Errorf("chain1 walk = %+v", s1)
	}
	if len(s2) != 1 || s2[0].MB.Name != "mb9" {
		t.Errorf("chain2 walk = %+v", s2)
	}
	c.RemoveChain("c1")
	if s2 := c.Walk(f2, "gwhost", IngressStation); len(s2) != 1 {
		t.Error("removing chain1 disturbed chain2")
	}
}

func TestChainCopySemantics(t *testing.T) {
	c := NewController()
	orig := chain("c", fwdMB("mb1", "h4"))
	if err := c.InstallChain(orig); err != nil {
		t.Fatalf("InstallChain: %v", err)
	}
	got := c.Chain("c")
	got.MBs[0].Name = "tampered"
	if c.Chain("c").MBs[0].Name != "mb1" {
		t.Error("Chain() exposes internal state")
	}
	orig.MBs[0].Name = "tampered2"
	if c.Chain("c").MBs[0].Name != "mb1" {
		t.Error("InstallChain aliases caller slice")
	}
}
