// Package sdn implements StorM's centralized SDN controller (Section III-A,
// "SDN-enabled Flow Steering"). The controller owns the virtual switches on
// every host and installs the per-chain flow rules of Figure 3: each rule
// matches the storage flow plus the previous station (the source-MAC
// analogue) and steers to the next middle-box. Chains can be mutated on
// demand — middle-boxes added or removed on a live path — by atomically
// replacing the chain's rules.
package sdn

import (
	"fmt"
	"sync"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/vswitch"
)

// IngressStation is the station name of a chain's entry point (the ingress
// storage gateway).
const IngressStation = "ingress"

// MBSpec describes one middle-box position in a chain.
type MBSpec struct {
	// Name is the middle-box's unique station name.
	Name string
	// Host is the physical host the middle-box VM runs on.
	Host string
	// Mode says whether the MB transparently forwards (MB-FWD) or
	// terminates the connection at its relay.
	Mode vswitch.Mode
	// RelayAddr is the relay listener for ModeTerminate.
	RelayAddr netsim.Addr
}

// Chain is a deployed forwarding chain for one storage flow selector.
type Chain struct {
	// ID uniquely names the chain (rule IDs are derived from it).
	ID string
	// Selector matches the steered flow as seen inside the instance
	// network (after the ingress gateway's masquerading). The source port
	// is typically wildcarded because each deployment owns its gateway
	// pair.
	Selector vswitch.Match
	// IngressHost is the host of the ingress gateway, where the walk
	// starts.
	IngressHost string
	// MBs is the ordered middle-box list.
	MBs []MBSpec
}

// Step is one resolved steering step for a flow.
type Step struct {
	MB MBSpec
}

// Controller is the centralized SDN controller.
type Controller struct {
	mu       sync.Mutex
	switches map[string]*vswitch.Switch
	chains   map[string]*Chain

	lookupHits   *obs.Counter
	lookupMisses *obs.Counter
}

// NewController creates an empty controller.
func NewController() *Controller {
	return &Controller{
		switches:     make(map[string]*vswitch.Switch),
		chains:       make(map[string]*Chain),
		lookupHits:   obs.Default().Counter("sdn.flow_lookup.hits"),
		lookupMisses: obs.Default().Counter("sdn.flow_lookup.misses"),
	}
}

// SwitchFor returns (creating on demand) the virtual switch on host.
func (c *Controller) SwitchFor(host string) *vswitch.Switch {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.switchForLocked(host)
}

func (c *Controller) switchForLocked(host string) *vswitch.Switch {
	sw, ok := c.switches[host]
	if !ok {
		sw = vswitch.New(host)
		c.switches[host] = sw
	}
	return sw
}

// InstallChain deploys the chain's flow rules across the switches: the rule
// steering to MB i lives on the switch of the previous station's host,
// matching traffic coming from that station (Figure 3's forwarding units).
func (c *Controller) InstallChain(ch *Chain) error {
	if ch.ID == "" {
		return fmt.Errorf("sdn: chain must have an ID")
	}
	if ch.IngressHost == "" {
		return fmt.Errorf("sdn: chain %q missing ingress host", ch.ID)
	}
	for i, mb := range ch.MBs {
		if mb.Name == "" || mb.Host == "" {
			return fmt.Errorf("sdn: chain %q middle-box %d missing name or host", ch.ID, i)
		}
		if mb.Mode == vswitch.ModeTerminate && mb.RelayAddr.IsZero() {
			return fmt.Errorf("sdn: chain %q middle-box %q terminates without a relay address", ch.ID, mb.Name)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.chains[ch.ID]; ok {
		return fmt.Errorf("sdn: chain %q already installed", ch.ID)
	}
	if err := c.installRulesLocked(ch); err != nil {
		c.removeRulesLocked(ch)
		return err
	}
	cp := *ch
	cp.MBs = append([]MBSpec(nil), ch.MBs...)
	c.chains[ch.ID] = &cp
	return nil
}

func (c *Controller) installRulesLocked(ch *Chain) error {
	prevStation := IngressStation
	prevHost := ch.IngressHost
	for i, mb := range ch.MBs {
		m := ch.Selector
		m.FromStation = prevStation
		rule := &vswitch.Rule{
			ID:       fmt.Sprintf("%s/hop%d", ch.ID, i),
			Priority: 100,
			Match:    m,
			Action: vswitch.Action{
				Mode:          mb.Mode,
				Station:       mb.Name,
				Host:          mb.Host,
				TerminateAddr: mb.RelayAddr,
			},
		}
		if err := c.switchForLocked(prevHost).Install(rule); err != nil {
			return err
		}
		prevStation = mb.Name
		prevHost = mb.Host
	}
	return nil
}

func (c *Controller) removeRulesLocked(ch *Chain) {
	prefix := ch.ID + "/"
	for _, sw := range c.switches {
		sw.RemovePrefix(prefix)
	}
}

// RemoveChain tears down the chain's rules. Established connections are
// unaffected (routes are resolved at connection setup).
func (c *Controller) RemoveChain(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch, ok := c.chains[id]
	if !ok {
		return
	}
	c.removeRulesLocked(ch)
	delete(c.chains, id)
}

// Chain returns a copy of the installed chain, or nil.
func (c *Controller) Chain(id string) *Chain {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch, ok := c.chains[id]
	if !ok {
		return nil
	}
	cp := *ch
	cp.MBs = append([]MBSpec(nil), ch.MBs...)
	return &cp
}

// UpdateChain atomically replaces the chain's middle-box list — the
// on-demand scaling path: new flows see the new chain immediately.
func (c *Controller) UpdateChain(id string, mbs []MBSpec) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch, ok := c.chains[id]
	if !ok {
		return fmt.Errorf("sdn: chain %q not installed", id)
	}
	c.removeRulesLocked(ch)
	ch.MBs = append([]MBSpec(nil), mbs...)
	if err := c.installRulesLocked(ch); err != nil {
		// Roll back to a clean (empty) state rather than leave partial
		// rules behind.
		c.removeRulesLocked(ch)
		return err
	}
	return nil
}

// Walk resolves the steering steps for a flow entering the instance network
// at (startHost, startStation). It follows installed rules switch by switch
// until no rule matches or a terminating middle-box is reached.
func (c *Controller) Walk(flow netsim.Flow, startHost, startStation string) []Step {
	var steps []Step
	host, station := startHost, startStation
	for i := 0; i < 64; i++ { // cycle guard
		sw := c.SwitchFor(host)
		rule := sw.Lookup(flow, station)
		if rule == nil {
			c.lookupMisses.Inc()
			return steps
		}
		c.lookupHits.Inc()
		step := Step{MB: MBSpec{
			Name:      rule.Action.Station,
			Host:      rule.Action.Host,
			Mode:      rule.Action.Mode,
			RelayAddr: rule.Action.TerminateAddr,
		}}
		steps = append(steps, step)
		if rule.Action.Mode == vswitch.ModeTerminate {
			return steps
		}
		host, station = rule.Action.Host, rule.Action.Station
	}
	return steps
}
