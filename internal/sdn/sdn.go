// Package sdn implements StorM's centralized SDN controller (Section III-A,
// "SDN-enabled Flow Steering"). The controller owns the virtual switches on
// every host and installs the per-chain flow rules of Figure 3: each rule
// matches the storage flow plus the previous station (the source-MAC
// analogue) and steers to the next middle-box. Chains can be mutated on
// demand — middle-boxes added or removed on a live path — by atomically
// replacing the chain's rules.
//
// A chain position may be an elastic instance group instead of a single
// middle-box: MBSpec.Instances lists the replicated instances, and the
// controller installs select-group rules (vswitch.Group) that hash each
// flow to one member with sticky affinity, so a connection's relay state
// stays on one instance across scale events. Groups are shared across the
// chains of a tenant by name, which keeps the flow→instance binding table
// consistent for every volume steered through the same replicated service.
package sdn

import (
	"fmt"
	"sync"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/vswitch"
)

// IngressStation is the station name of a chain's entry point (the ingress
// storage gateway).
const IngressStation = "ingress"

// Instance is one member of a scaled middle-box position.
type Instance struct {
	// Name is the instance's unique station name.
	Name string
	// Host is the physical host the instance VM runs on.
	Host string
	// RelayAddr is the instance's relay listener for ModeTerminate.
	RelayAddr netsim.Addr
}

// MBSpec describes one middle-box position in a chain.
type MBSpec struct {
	// Name is the middle-box's unique station name. For a scaled position
	// (Instances non-empty) it is the group name.
	Name string
	// Host is the physical host the middle-box VM runs on (single-instance
	// positions only).
	Host string
	// Mode says whether the MB transparently forwards (MB-FWD) or
	// terminates the connection at its relay.
	Mode vswitch.Mode
	// RelayAddr is the relay listener for ModeTerminate (single-instance
	// positions only).
	RelayAddr netsim.Addr
	// Instances, when non-empty, makes this position an instance group:
	// flows are steered to one member with sticky affinity instead of a
	// fixed station.
	Instances []Instance
}

// Scaled reports whether the position is an instance group.
func (m MBSpec) Scaled() bool { return len(m.Instances) > 0 }

// Chain is a deployed forwarding chain for one storage flow selector.
type Chain struct {
	// ID uniquely names the chain (rule IDs are derived from it).
	ID string
	// Selector matches the steered flow as seen inside the instance
	// network (after the ingress gateway's masquerading). The source port
	// is typically wildcarded because each deployment owns its gateway
	// pair.
	Selector vswitch.Match
	// IngressHost is the host of the ingress gateway, where the walk
	// starts.
	IngressHost string
	// MBs is the ordered middle-box list.
	MBs []MBSpec
}

// Step is one resolved steering step for a flow. For group positions the
// MB names the selected member instance.
type Step struct {
	MB MBSpec
}

// groupEntry tracks a shared select group and the chains referencing it.
type groupEntry struct {
	g      *vswitch.Group
	chains map[string]bool
}

// Controller is the centralized SDN controller.
type Controller struct {
	mu       sync.RWMutex
	switches map[string]*vswitch.Switch
	chains   map[string]*Chain
	groups   map[string]*groupEntry
	// chainHosts remembers which hosts each chain installed rules on, so
	// teardown sweeps only those switches instead of every switch in the
	// cloud — under tenant churn the old full sweep was O(chains × hosts).
	chainHosts map[string]map[string]bool

	lookupHits   *obs.Counter
	lookupMisses *obs.Counter
}

// NewController creates an empty controller.
func NewController() *Controller {
	return &Controller{
		switches:     make(map[string]*vswitch.Switch),
		chains:       make(map[string]*Chain),
		groups:       make(map[string]*groupEntry),
		chainHosts:   make(map[string]map[string]bool),
		lookupHits:   obs.Default().Counter("sdn.flow_lookup.hits"),
		lookupMisses: obs.Default().Counter("sdn.flow_lookup.misses"),
	}
}

// SwitchFor returns (creating on demand) the virtual switch on host.
func (c *Controller) SwitchFor(host string) *vswitch.Switch {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.switchForLocked(host)
}

func (c *Controller) switchForLocked(host string) *vswitch.Switch {
	sw, ok := c.switches[host]
	if !ok {
		sw = vswitch.New(host)
		c.switches[host] = sw
	}
	return sw
}

// Group returns the live select group of a scaled chain position by its
// group name, or nil. The orchestrator uses it to inspect bindings and to
// mark members draining.
func (c *Controller) Group(name string) *vswitch.Group {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if ge, ok := c.groups[name]; ok {
		return ge.g
	}
	return nil
}

// groupLocked returns (creating on demand) the shared group entry.
func (c *Controller) groupLocked(name string) *groupEntry {
	ge, ok := c.groups[name]
	if !ok {
		ge = &groupEntry{g: vswitch.NewGroup(name), chains: make(map[string]bool)}
		c.groups[name] = ge
	}
	return ge
}

// releaseGroupsLocked drops chainID's reference on every group not named in
// keep, deleting groups no chain references anymore (and their binding
// state with them).
func (c *Controller) releaseGroupsLocked(chainID string, keep map[string]bool) {
	for name, ge := range c.groups {
		if ge.chains[chainID] && !keep[name] {
			delete(ge.chains, chainID)
			if len(ge.chains) == 0 {
				delete(c.groups, name)
			}
		}
	}
}

// groupNames returns the set of group names a middle-box list references.
func groupNames(mbs []MBSpec) map[string]bool {
	out := make(map[string]bool)
	for _, mb := range mbs {
		if mb.Scaled() {
			out[mb.Name] = true
		}
	}
	return out
}

// copyMBs deep-copies a middle-box list (instances included).
func copyMBs(mbs []MBSpec) []MBSpec {
	out := append([]MBSpec(nil), mbs...)
	for i := range out {
		out[i].Instances = append([]Instance(nil), out[i].Instances...)
	}
	return out
}

// validateChain checks a chain's structural invariants.
func validateChain(ch *Chain) error {
	if ch.ID == "" {
		return fmt.Errorf("sdn: chain must have an ID")
	}
	if ch.IngressHost == "" {
		return fmt.Errorf("sdn: chain %q missing ingress host", ch.ID)
	}
	for i, mb := range ch.MBs {
		if mb.Name == "" {
			return fmt.Errorf("sdn: chain %q middle-box %d missing name", ch.ID, i)
		}
		if !mb.Scaled() {
			if mb.Host == "" {
				return fmt.Errorf("sdn: chain %q middle-box %q missing host", ch.ID, mb.Name)
			}
			if mb.Mode == vswitch.ModeTerminate && mb.RelayAddr.IsZero() {
				return fmt.Errorf("sdn: chain %q middle-box %q terminates without a relay address", ch.ID, mb.Name)
			}
			continue
		}
		for j, inst := range mb.Instances {
			if inst.Name == "" || inst.Host == "" {
				return fmt.Errorf("sdn: chain %q group %q instance %d missing name or host", ch.ID, mb.Name, j)
			}
			if mb.Mode == vswitch.ModeTerminate && inst.RelayAddr.IsZero() {
				return fmt.Errorf("sdn: chain %q group %q instance %q terminates without a relay address", ch.ID, mb.Name, inst.Name)
			}
		}
	}
	return nil
}

// InstallChain deploys the chain's flow rules across the switches: the rule
// steering to MB i lives on the switch of the previous station's host,
// matching traffic coming from that station (Figure 3's forwarding units).
// For scaled positions a rule is installed on every previous instance's
// host and the rules of the following hop match each member station.
func (c *Controller) InstallChain(ch *Chain) error {
	if err := validateChain(ch); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.chains[ch.ID]; ok {
		return fmt.Errorf("sdn: chain %q already installed", ch.ID)
	}
	if err := c.installRulesLocked(ch); err != nil {
		c.removeRulesLocked(ch)
		c.releaseGroupsLocked(ch.ID, nil)
		return err
	}
	cp := *ch
	cp.MBs = copyMBs(ch.MBs)
	c.chains[ch.ID] = &cp
	return nil
}

// station is one (name, host) point a rule can match traffic from.
type station struct {
	name string
	host string
}

func (c *Controller) installRulesLocked(ch *Chain) error {
	prev := []station{{IngressStation, ch.IngressHost}}
	for i, mb := range ch.MBs {
		var act vswitch.Action
		var next []station
		if mb.Scaled() {
			ge := c.groupLocked(mb.Name)
			members := make([]vswitch.GroupMember, len(mb.Instances))
			for j, inst := range mb.Instances {
				members[j] = vswitch.GroupMember{Station: inst.Name, Host: inst.Host, TerminateAddr: inst.RelayAddr}
				next = append(next, station{inst.Name, inst.Host})
			}
			ge.g.SetMembers(members)
			ge.chains[ch.ID] = true
			act = vswitch.Action{Mode: mb.Mode, Station: mb.Name, Group: ge.g}
		} else {
			act = vswitch.Action{Mode: mb.Mode, Station: mb.Name, Host: mb.Host, TerminateAddr: mb.RelayAddr}
			next = []station{{mb.Name, mb.Host}}
		}
		for _, pv := range prev {
			m := ch.Selector
			m.FromStation = pv.name
			rule := &vswitch.Rule{
				ID:       fmt.Sprintf("%s/hop%d/%s", ch.ID, i, pv.name),
				Priority: 100,
				Match:    m,
				Action:   act,
			}
			hosts := c.chainHosts[ch.ID]
			if hosts == nil {
				hosts = make(map[string]bool)
				c.chainHosts[ch.ID] = hosts
			}
			hosts[pv.host] = true
			if err := c.switchForLocked(pv.host).Install(rule); err != nil {
				return err
			}
		}
		prev = next
	}
	return nil
}

func (c *Controller) removeRulesLocked(ch *Chain) {
	prefix := ch.ID + "/"
	for host := range c.chainHosts[ch.ID] {
		if sw := c.switches[host]; sw != nil {
			sw.RemovePrefix(prefix)
		}
	}
	delete(c.chainHosts, ch.ID)
}

// RemoveChain tears down the chain's rules. Established connections are
// unaffected (routes are resolved at connection setup).
func (c *Controller) RemoveChain(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch, ok := c.chains[id]
	if !ok {
		return
	}
	c.removeRulesLocked(ch)
	c.releaseGroupsLocked(id, nil)
	delete(c.chains, id)
}

// Chain returns a copy of the installed chain, or nil.
func (c *Controller) Chain(id string) *Chain {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ch, ok := c.chains[id]
	if !ok {
		return nil
	}
	cp := *ch
	cp.MBs = copyMBs(ch.MBs)
	return &cp
}

// UpdateChain atomically replaces the chain's middle-box list — the
// on-demand scaling path: new flows see the new chain immediately. On a
// failed reinstall the previous middle-box list and its rules are restored,
// so the chain registry never points at an uninstalled chain; if even the
// rollback fails the chain is removed outright.
func (c *Controller) UpdateChain(id string, mbs []MBSpec) error {
	probe := &Chain{ID: id, IngressHost: "-", MBs: mbs}
	if err := validateChain(probe); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ch, ok := c.chains[id]
	if !ok {
		return fmt.Errorf("sdn: chain %q not installed", id)
	}
	prev := copyMBs(ch.MBs)
	c.removeRulesLocked(ch)
	ch.MBs = copyMBs(mbs)
	err := c.installRulesLocked(ch)
	if err == nil {
		c.releaseGroupsLocked(id, groupNames(ch.MBs))
		return nil
	}
	// Reinstall failed partway: scrub the partial rules and restore the
	// previous chain so the registry stays consistent with the switches.
	c.removeRulesLocked(ch)
	ch.MBs = prev
	if rberr := c.installRulesLocked(ch); rberr != nil {
		c.removeRulesLocked(ch)
		c.releaseGroupsLocked(id, nil)
		delete(c.chains, id)
		return fmt.Errorf("sdn: update chain %q: %v (rollback also failed: %v)", id, err, rberr)
	}
	c.releaseGroupsLocked(id, groupNames(ch.MBs))
	return err
}

// Walk resolves the steering steps for a flow entering the instance network
// at (startHost, startStation). It follows installed rules switch by switch
// until no rule matches or a terminating middle-box is reached. The whole
// walk runs under one read-consistent snapshot of the controller: a
// concurrent UpdateChain can never interleave mid-walk, so the returned
// path is entirely the old chain or entirely the new one. Group positions
// resolve to the flow's affine member instance.
func (c *Controller) Walk(flow netsim.Flow, startHost, startStation string) []Step {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var steps []Step
	host, station := startHost, startStation
	for i := 0; i < 64; i++ { // cycle guard
		sw := c.switches[host]
		if sw == nil {
			c.lookupMisses.Inc()
			return steps
		}
		rule := sw.Lookup(flow, station)
		if rule == nil {
			c.lookupMisses.Inc()
			return steps
		}
		c.lookupHits.Inc()
		act := rule.Action
		if act.Group != nil {
			m, ok := act.Group.Select(flow)
			if !ok {
				c.lookupMisses.Inc()
				return steps
			}
			act.Station, act.Host, act.TerminateAddr = m.Station, m.Host, m.TerminateAddr
		}
		steps = append(steps, Step{MB: MBSpec{
			Name:      act.Station,
			Host:      act.Host,
			Mode:      act.Mode,
			RelayAddr: act.TerminateAddr,
		}})
		if act.Mode == vswitch.ModeTerminate {
			return steps
		}
		host, station = act.Host, act.Station
	}
	return steps
}
