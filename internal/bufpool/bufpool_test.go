package bufpool

import (
	"sync"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct {
		n, want int
	}{
		{1, 0}, {511, 0}, {512, 0}, {513, 1}, {1024, 1}, {1025, 2},
		{4096, 3}, {1 << 22, maxClassBits - minClassBits}, {1<<22 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.want {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestGetLenAndReuse(t *testing.T) {
	b := Get(1000)
	if len(b.B) != 1000 {
		t.Fatalf("len = %d, want 1000", len(b.B))
	}
	if cap(b.B) != 1024 {
		t.Fatalf("cap = %d, want class size 1024", cap(b.B))
	}
	b.B[0] = 0xAB
	b.Release()
	// The next same-class Get should reuse the buffer (single goroutine,
	// no GC in between — sync.Pool keeps it in the P-local cache).
	b2 := Get(600)
	if len(b2.B) != 600 {
		t.Fatalf("len = %d, want 600", len(b2.B))
	}
	b2.Release()
}

func TestGetZeroed(t *testing.T) {
	b := Get(2048)
	for i := range b.B {
		b.B[i] = 0xFF
	}
	b.Release()
	z := GetZeroed(2048)
	defer z.Release()
	for i, v := range z.B {
		if v != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, v)
		}
	}
}

func TestOversizedAndZero(t *testing.T) {
	big := Get(1<<22 + 1)
	if len(big.B) != 1<<22+1 || big.class != -1 {
		t.Fatalf("oversized: len=%d class=%d", len(big.B), big.class)
	}
	big.Release() // must not panic or pollute pools

	empty := Get(0)
	if empty.B != nil {
		t.Fatal("Get(0) should carry no bytes")
	}
	empty.Release()

	var nilBuf *Buf
	nilBuf.Release() // no-op
}

func TestSnapshotCounts(t *testing.T) {
	g0, _, o0 := Snapshot()
	Get(64).Release()
	Get(1 << 23).Release()
	g1, _, o1 := Snapshot()
	if g1-g0 != 2 {
		t.Errorf("gets delta = %d, want 2", g1-g0)
	}
	if o1-o0 != 1 {
		t.Errorf("oversized delta = %d, want 1", o1-o0)
	}
}

// TestConcurrentGetRelease exercises the pool under -race.
func TestConcurrentGetRelease(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sizes := []int{512, 4096, 65536, 300000}
			for i := 0; i < 2000; i++ {
				b := Get(sizes[(g+i)%len(sizes)])
				b.B[0] = byte(g)
				b.B[len(b.B)-1] = byte(i)
				b.Release()
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkGetRelease4K(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Get(4096).Release()
	}
}

func BenchmarkGetRelease64K(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Get(64 * 1024).Release()
	}
}
