// Package bufpool provides size-classed pooled byte buffers for the data
// path. Every per-command unit of the fast path — PDU wire images, Data-In
// assembly, R2T transfer staging, netsim frames, journal entries, write-back
// items — moves payload-sized buffers that live for exactly one hop. Getting
// them from a size-classed sync.Pool instead of make([]byte, n) keeps the
// relay chain allocation-free in steady state, the property LightBox and
// Active Switching identify as the precondition for middle-boxes running at
// line rate.
//
// Ownership rule: a *Buf has exactly one owner at a time. Whoever holds it
// either passes it on (transferring ownership) or calls Release exactly once.
// After Release the buffer contents must not be touched. See DESIGN.md
// ("Data-path buffer ownership") for how the iSCSI/relay layers apply this.
package bufpool

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Size classes are powers of two. Requests below the smallest class still
// consume a smallest-class buffer; requests above the largest are satisfied
// with a plain allocation and dropped on Release.
const (
	minClassBits = 9  // 512 B — one block
	maxClassBits = 22 // 4 MiB — covers MaxBurstLength-sized staging
	numClasses   = maxClassBits - minClassBits + 1
)

// Buf is a pooled buffer. B is the usable slice (len == requested size); the
// box itself recycles with the buffer so steady-state Get/Release performs no
// allocation at all.
type Buf struct {
	B     []byte
	class int8 // -1: not pooled (oversized); otherwise class index
}

var pools [numClasses]sync.Pool

// Stats counters (atomic; read via Snapshot).
var (
	gets      atomic.Int64
	misses    atomic.Int64
	oversized atomic.Int64
)

// classFor returns the class index for a request of n bytes, or -1 when n
// exceeds the largest class.
func classFor(n int) int {
	if n <= 1<<minClassBits {
		return 0
	}
	if n > 1<<maxClassBits {
		return -1
	}
	return bits.Len(uint(n-1)) - minClassBits
}

// Get returns a buffer with len(B) == n. The contents are unspecified (not
// zeroed): callers that expose the buffer before overwriting it must clear
// it themselves.
func Get(n int) *Buf {
	if n <= 0 {
		return &Buf{B: nil, class: -1}
	}
	gets.Add(1)
	c := classFor(n)
	if c < 0 {
		oversized.Add(1)
		return &Buf{B: make([]byte, n), class: -1}
	}
	if v := pools[c].Get(); v != nil {
		b := v.(*Buf)
		b.B = b.B[:cap(b.B)][:n]
		return b
	}
	misses.Add(1)
	return &Buf{B: make([]byte, 1<<(uint(c)+minClassBits))[:n], class: int8(c)}
}

// GetZeroed is Get with the returned bytes cleared, for callers that may
// expose unwritten regions (e.g. partially-filled read buffers).
func GetZeroed(n int) *Buf {
	b := Get(n)
	clear(b.B)
	return b
}

// Release returns the buffer to its pool. Releasing a nil *Buf is a no-op so
// callers can release unconditionally on error paths.
func (b *Buf) Release() {
	if b == nil || b.class < 0 {
		return
	}
	pools[b.class].Put(b)
}

// Snapshot reports cumulative pool activity: total Gets, pool misses (new
// allocations), and oversized requests that bypassed the pool.
func Snapshot() (total, missed, over int64) {
	return gets.Load(), misses.Load(), oversized.Load()
}
