// Package metrics provides the measurement primitives used across the StorM
// test bed: latency histograms with percentile queries, throughput meters,
// and per-host simulated CPU accounting (used for the Figure 10 breakdown).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Histogram records a set of duration samples and answers aggregate queries.
// The zero value is ready to use. All methods are safe for concurrent use.
//
// Samples are kept in arrival order (so windowed consumers can read
// increments with SamplesSince); percentile queries sort a reusable
// scratch copy instead of the sample log itself.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration // arrival order, never reordered
	scratch []time.Duration // sorted copy, valid while sorted is true
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.samples = append(h.samples, d)
	h.sum += d
	h.sorted = false
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Sum returns the total of all recorded samples.
func (h *Histogram) Sum() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean of the samples, or zero when empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / time.Duration(len(h.samples))
}

// Min returns the smallest sample, or zero when empty.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest sample, or zero when empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank interpolation. It returns zero when the histogram is empty.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.percentileLocked(p)
}

// Quantiles returns the given percentiles (0-100) under a single lock and
// sort — the one helper every caller should use instead of per-caller
// percentile math.
func (h *Histogram) Quantiles(ps ...float64) []time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]time.Duration, len(ps))
	for i, p := range ps {
		out[i] = h.percentileLocked(p)
	}
	return out
}

// sortedLocked returns the samples in ascending order, (re)building the
// scratch copy only when new samples arrived since the last query.
func (h *Histogram) sortedLocked() []time.Duration {
	if !h.sorted {
		h.scratch = append(h.scratch[:0], h.samples...)
		sort.Slice(h.scratch, func(i, j int) bool { return h.scratch[i] < h.scratch[j] })
		h.sorted = true
	}
	return h.scratch
}

func (h *Histogram) percentileLocked(p float64) time.Duration {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	s := h.sortedLocked()
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo] + time.Duration(frac*float64(s[hi]-s[lo]))
}

// SamplesSince returns a copy of the samples recorded after a previous
// call's cursor (0 reads from the beginning) plus the new cursor, letting
// windowed consumers (SLO trackers) drain a histogram incrementally
// without resetting it. A cursor from before a Reset yields the full log.
func (h *Histogram) SamplesSince(cursor int) ([]time.Duration, int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if cursor < 0 || cursor > len(h.samples) {
		cursor = 0
	}
	var out []time.Duration
	if cursor < len(h.samples) {
		out = append(out, h.samples[cursor:]...)
	}
	return out, len(h.samples)
}

// CumulativeBuckets returns, for each upper bound, how many samples are
// less than or equal to it — Prometheus cumulative `le` semantics. Bounds
// must be ascending. The total sample count is the implicit +Inf bucket.
func (h *Histogram) CumulativeBuckets(bounds []time.Duration) []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int, len(bounds))
	if len(h.samples) == 0 {
		return out
	}
	s := h.sortedLocked()
	for i, b := range bounds {
		out[i] = sort.Search(len(s), func(j int) bool { return s[j] > b })
	}
	return out
}

// Stddev returns the sample standard deviation, or zero for fewer than two
// samples.
func (h *Histogram) Stddev() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n < 2 {
		return 0
	}
	mean := float64(h.sum) / float64(n)
	var ss float64
	for _, s := range h.samples {
		d := float64(s) - mean
		ss += d * d
	}
	return time.Duration(math.Sqrt(ss / float64(n-1)))
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = h.samples[:0]
	h.sum, h.min, h.max = 0, 0, 0
	h.sorted = false
}

// Snapshot returns a point-in-time summary of the histogram, computed
// under a single lock (one sort, one pass).
func (h *Histogram) Snapshot() Summary {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	s := Summary{Count: n, Sum: h.sum, Min: h.min, Max: h.max}
	if n == 0 {
		return s
	}
	s.Mean = h.sum / time.Duration(n)
	s.P50 = h.percentileLocked(50)
	s.P95 = h.percentileLocked(95)
	s.P99 = h.percentileLocked(99)
	if n >= 2 {
		mean := float64(h.sum) / float64(n)
		var ss float64
		for _, sample := range h.samples {
			d := float64(sample) - mean
			ss += d * d
		}
		s.Stddev = time.Duration(math.Sqrt(ss / float64(n-1)))
	}
	return s
}

// Summary is a point-in-time aggregate of a Histogram.
type Summary struct {
	Count  int
	Sum    time.Duration
	Mean   time.Duration
	Min    time.Duration
	Max    time.Duration
	P50    time.Duration
	P95    time.Duration
	P99    time.Duration
	Stddev time.Duration
}

// String renders the summary in a single human-readable line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v min=%v max=%v",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Min, s.Max)
}
