// Package metrics provides the measurement primitives used across the StorM
// test bed: latency histograms with percentile queries, throughput meters,
// and per-host simulated CPU accounting (used for the Figure 10 breakdown).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Histogram records a set of duration samples and answers aggregate queries.
// The zero value is ready to use. All methods are safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.samples = append(h.samples, d)
	h.sum += d
	h.sorted = false
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Sum returns the total of all recorded samples.
func (h *Histogram) Sum() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean of the samples, or zero when empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / time.Duration(len(h.samples))
}

// Min returns the smallest sample, or zero when empty.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest sample, or zero when empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank interpolation. It returns zero when the histogram is empty.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return h.samples[lo]
	}
	frac := rank - float64(lo)
	return h.samples[lo] + time.Duration(frac*float64(h.samples[hi]-h.samples[lo]))
}

// Stddev returns the sample standard deviation, or zero for fewer than two
// samples.
func (h *Histogram) Stddev() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n < 2 {
		return 0
	}
	mean := float64(h.sum) / float64(n)
	var ss float64
	for _, s := range h.samples {
		d := float64(s) - mean
		ss += d * d
	}
	return time.Duration(math.Sqrt(ss / float64(n-1)))
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = h.samples[:0]
	h.sum, h.min, h.max = 0, 0, 0
	h.sorted = false
}

// Snapshot returns a point-in-time summary of the histogram.
func (h *Histogram) Snapshot() Summary {
	return Summary{
		Count:  h.Count(),
		Mean:   h.Mean(),
		Min:    h.Min(),
		Max:    h.Max(),
		P50:    h.Percentile(50),
		P95:    h.Percentile(95),
		P99:    h.Percentile(99),
		Stddev: h.Stddev(),
	}
}

// Summary is a point-in-time aggregate of a Histogram.
type Summary struct {
	Count  int
	Mean   time.Duration
	Min    time.Duration
	Max    time.Duration
	P50    time.Duration
	P95    time.Duration
	P99    time.Duration
	Stddev time.Duration
}

// String renders the summary in a single human-readable line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v min=%v max=%v",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Min, s.Max)
}
