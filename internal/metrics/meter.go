package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// Meter counts discrete events and bytes over a wall-clock interval and
// reports rates. The zero value is not ready for use; call NewMeter.
type Meter struct {
	start time.Time
	ops   atomic.Int64
	bytes atomic.Int64
}

// NewMeter returns a meter whose interval starts now.
func NewMeter() *Meter {
	return &Meter{start: time.Now()}
}

// Record adds one operation of n bytes.
func (m *Meter) Record(n int) {
	m.ops.Add(1)
	m.bytes.Add(int64(n))
}

// Ops returns the total operation count.
func (m *Meter) Ops() int64 { return m.ops.Load() }

// Bytes returns the total byte count.
func (m *Meter) Bytes() int64 { return m.bytes.Load() }

// Elapsed returns the time since the meter was created.
func (m *Meter) Elapsed() time.Duration { return time.Since(m.start) }

// OpsPerSec returns the average operation rate since creation, or zero
// for a zero-length (or never-started) window.
func (m *Meter) OpsPerSec() float64 {
	return rate(float64(m.ops.Load()), m.start)
}

// BytesPerSec returns the average byte rate since creation, or zero for a
// zero-length (or never-started) window.
func (m *Meter) BytesPerSec() float64 {
	return rate(float64(m.bytes.Load()), m.start)
}

// rate is the shared zero-length-window guard for every rate method in
// this package: a zero start time or non-positive elapsed window yields 0
// rather than Inf/NaN.
func rate(total float64, start time.Time) float64 {
	if start.IsZero() {
		return 0
	}
	el := time.Since(start).Seconds()
	if el <= 0 {
		return 0
	}
	return total / el
}

// CPUAccount tracks simulated CPU busy-time per named component on a host.
// The Figure 10 breakdown divides busy time by wall time to obtain a
// utilization percentage per host. All methods are safe for concurrent use.
type CPUAccount struct {
	mu    sync.Mutex
	busy  map[string]time.Duration
	start time.Time
}

// NewCPUAccount returns an account whose observation window starts now.
func NewCPUAccount() *CPUAccount {
	return &CPUAccount{busy: make(map[string]time.Duration), start: time.Now()}
}

// Charge adds d of busy time to the named component.
func (a *CPUAccount) Charge(component string, d time.Duration) {
	if d <= 0 {
		return
	}
	a.mu.Lock()
	if a.busy == nil {
		a.busy = make(map[string]time.Duration)
	}
	a.busy[component] += d
	a.mu.Unlock()
}

// Busy returns the accumulated busy time for the named component.
func (a *CPUAccount) Busy(component string) time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.busy[component]
}

// TotalBusy returns the busy time summed over all components.
func (a *CPUAccount) TotalBusy() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	var t time.Duration
	for _, d := range a.busy {
		t += d
	}
	return t
}

// Utilization returns busy/wall for the named component over the window
// [start, now], as a fraction in [0, +inf). A zero-length (or
// never-started) window yields 0.
func (a *CPUAccount) Utilization(component string) float64 {
	return rate(float64(a.Busy(component)), a.start) / float64(time.Second)
}

// Components returns a copy of the per-component busy-time map.
func (a *CPUAccount) Components() map[string]time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]time.Duration, len(a.busy))
	for k, v := range a.busy {
		out[k] = v
	}
	return out
}

// Reset clears all accumulated busy time and restarts the window.
func (a *CPUAccount) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.busy = make(map[string]time.Duration)
	a.start = time.Now()
}
