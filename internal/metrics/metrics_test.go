package metrics

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if got := h.Count(); got != 0 {
		t.Errorf("Count() = %d, want 0", got)
	}
	if got := h.Mean(); got != 0 {
		t.Errorf("Mean() = %v, want 0", got)
	}
	if got := h.Percentile(50); got != 0 {
		t.Errorf("Percentile(50) = %v, want 0", got)
	}
	if got := h.Stddev(); got != 0 {
		t.Errorf("Stddev() = %v, want 0", got)
	}
}

func TestHistogramBasicStats(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{10, 20, 30, 40, 50} {
		h.Observe(d * time.Millisecond)
	}
	if got, want := h.Count(), 5; got != want {
		t.Errorf("Count() = %d, want %d", got, want)
	}
	if got, want := h.Mean(), 30*time.Millisecond; got != want {
		t.Errorf("Mean() = %v, want %v", got, want)
	}
	if got, want := h.Min(), 10*time.Millisecond; got != want {
		t.Errorf("Min() = %v, want %v", got, want)
	}
	if got, want := h.Max(), 50*time.Millisecond; got != want {
		t.Errorf("Max() = %v, want %v", got, want)
	}
	if got, want := h.Percentile(50), 30*time.Millisecond; got != want {
		t.Errorf("Percentile(50) = %v, want %v", got, want)
	}
	if got, want := h.Percentile(0), 10*time.Millisecond; got != want {
		t.Errorf("Percentile(0) = %v, want %v", got, want)
	}
	if got, want := h.Percentile(100), 50*time.Millisecond; got != want {
		t.Errorf("Percentile(100) = %v, want %v", got, want)
	}
}

func TestHistogramPercentileInterpolation(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(100 * time.Millisecond)
	if got, want := h.Percentile(50), 50*time.Millisecond; got != want {
		t.Errorf("Percentile(50) = %v, want %v", got, want)
	}
	if got, want := h.Percentile(25), 25*time.Millisecond; got != want {
		t.Errorf("Percentile(25) = %v, want %v", got, want)
	}
}

func TestHistogramObserveAfterPercentile(t *testing.T) {
	// Observing after a percentile query must re-sort correctly.
	var h Histogram
	h.Observe(30 * time.Millisecond)
	h.Observe(10 * time.Millisecond)
	_ = h.Percentile(50)
	h.Observe(20 * time.Millisecond)
	if got, want := h.Percentile(50), 20*time.Millisecond; got != want {
		t.Errorf("Percentile(50) = %v, want %v", got, want)
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Errorf("after Reset: count=%d sum=%v max=%v, want zeros", h.Count(), h.Sum(), h.Max())
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const goroutines, perG = 8, 100
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				h.Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got, want := h.Count(), goroutines*perG; got != want {
		t.Errorf("Count() = %d, want %d", got, want)
	}
}

func TestHistogramPercentileMonotonic(t *testing.T) {
	// Property: percentiles are non-decreasing in p, and bounded by min/max.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Observe(time.Duration(v) * time.Microsecond)
		}
		prev := time.Duration(-1)
		for p := 0.0; p <= 100; p += 7 {
			cur := h.Percentile(p)
			if cur < prev {
				return false
			}
			if cur < h.Min() || cur > h.Max() {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramMeanWithinBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Observe(time.Duration(v) * time.Microsecond)
		}
		m := h.Mean()
		return m >= h.Min() && m <= h.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramStddevConstant(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Observe(5 * time.Millisecond)
	}
	if got := h.Stddev(); got != 0 {
		t.Errorf("Stddev of constant samples = %v, want 0", got)
	}
}

func TestSummaryString(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Errorf("Snapshot().Count = %d, want 1", s.Count)
	}
	if s.String() == "" {
		t.Error("Summary.String() is empty")
	}
}

func TestMeterRates(t *testing.T) {
	m := NewMeter()
	for i := 0; i < 10; i++ {
		m.Record(4096)
	}
	if got, want := m.Ops(), int64(10); got != want {
		t.Errorf("Ops() = %d, want %d", got, want)
	}
	if got, want := m.Bytes(), int64(40960); got != want {
		t.Errorf("Bytes() = %d, want %d", got, want)
	}
	if m.OpsPerSec() <= 0 {
		t.Errorf("OpsPerSec() = %v, want > 0", m.OpsPerSec())
	}
	if m.BytesPerSec() <= 0 {
		t.Errorf("BytesPerSec() = %v, want > 0", m.BytesPerSec())
	}
}

func TestMeterConcurrent(t *testing.T) {
	m := NewMeter()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Record(1)
			}
		}()
	}
	wg.Wait()
	if got, want := m.Ops(), int64(4000); got != want {
		t.Errorf("Ops() = %d, want %d", got, want)
	}
}

func TestCPUAccountChargeAndQuery(t *testing.T) {
	a := NewCPUAccount()
	a.Charge("cipher", 10*time.Millisecond)
	a.Charge("cipher", 5*time.Millisecond)
	a.Charge("io", 2*time.Millisecond)
	if got, want := a.Busy("cipher"), 15*time.Millisecond; got != want {
		t.Errorf("Busy(cipher) = %v, want %v", got, want)
	}
	if got, want := a.TotalBusy(), 17*time.Millisecond; got != want {
		t.Errorf("TotalBusy() = %v, want %v", got, want)
	}
	comps := a.Components()
	if len(comps) != 2 {
		t.Errorf("Components() has %d entries, want 2", len(comps))
	}
	// Mutating the copy must not affect the account.
	comps["cipher"] = 0
	if got := a.Busy("cipher"); got != 15*time.Millisecond {
		t.Errorf("Busy(cipher) after mutating copy = %v, want 15ms", got)
	}
}

func TestCPUAccountNegativeAndZeroCharge(t *testing.T) {
	a := NewCPUAccount()
	a.Charge("x", 0)
	a.Charge("x", -time.Second)
	if got := a.Busy("x"); got != 0 {
		t.Errorf("Busy(x) = %v, want 0", got)
	}
}

func TestCPUAccountUtilization(t *testing.T) {
	a := NewCPUAccount()
	a.Charge("x", time.Hour) // enormous vs. wall time
	if u := a.Utilization("x"); u <= 1 {
		t.Errorf("Utilization = %v, want > 1 for overloaded component", u)
	}
	a.Reset()
	if got := a.TotalBusy(); got != 0 {
		t.Errorf("TotalBusy after Reset = %v, want 0", got)
	}
}
