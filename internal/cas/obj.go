package cas

import (
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/objstore"
)

// ObjBackend persists a CAS replica in an object store: chunks under
// "c/<hex id>" and one small mapping object per slot under "m/<slot>".
// Because chunk keys are content addresses, puts are naturally idempotent
// and a crash between a chunk put and its mapping put strands only an
// orphan object, reclaimed by Open's orphan GC.
type ObjBackend struct {
	mu     sync.Mutex
	store  *objstore.Store
	bucket string
	slots  uint64
}

// NewObjBackend opens (or creates) a CAS replica in bucket on store.
func NewObjBackend(store *objstore.Store, bucket string, slots uint64) (*ObjBackend, error) {
	if slots == 0 {
		return nil, fmt.Errorf("cas: zero slots")
	}
	if err := store.CreateBucket(bucket); err != nil && !errors.Is(err, objstore.ErrBucketExists) {
		return nil, fmt.Errorf("cas: create bucket: %w", err)
	}
	return &ObjBackend{store: store, bucket: bucket, slots: slots}, nil
}

func chunkKey(id ID) string      { return "c/" + id.String() }
func slotKey(slot uint64) string { return "m/" + strconv.FormatUint(slot, 10) }

// PutChunk stores the chunk object (idempotent by key).
func (o *ObjBackend) PutChunk(id ID, data []byte) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, err := o.store.Head(o.bucket, chunkKey(id)); err == nil {
		return nil
	}
	_, err := o.store.Put(o.bucket, chunkKey(id), data)
	return err
}

// GetChunk reads the chunk object.
func (o *ObjBackend) GetChunk(id ID) ([]byte, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	data, _, err := o.store.Get(o.bucket, chunkKey(id))
	if errors.Is(err, objstore.ErrNoObject) {
		return nil, ErrNoChunk
	}
	return data, err
}

// DeleteChunk removes the chunk object.
func (o *ObjBackend) DeleteChunk(id ID) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	err := o.store.Delete(o.bucket, chunkKey(id))
	if errors.Is(err, objstore.ErrNoObject) {
		return nil
	}
	return err
}

// HasChunk reports chunk presence.
func (o *ObjBackend) HasChunk(id ID) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	_, err := o.store.Head(o.bucket, chunkKey(id))
	return err == nil
}

// Chunks lists every stored chunk ID.
func (o *ObjBackend) Chunks() []ID {
	o.mu.Lock()
	defer o.mu.Unlock()
	infos, err := o.store.List(o.bucket, "c/")
	if err != nil {
		return nil
	}
	out := make([]ID, 0, len(infos))
	for _, info := range infos {
		raw, err := hex.DecodeString(strings.TrimPrefix(info.Key, "c/"))
		if err != nil || len(raw) != 32 {
			continue
		}
		var id ID
		copy(id[:], raw)
		out = append(out, id)
	}
	return out
}

// SetMapping writes (or, for the zero ID, deletes) the slot's mapping
// object.
func (o *ObjBackend) SetMapping(slot uint64, id ID) error {
	if slot >= o.slots {
		return fmt.Errorf("cas: mapping slot %d out of range (%d)", slot, o.slots)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if id.IsZero() {
		err := o.store.Delete(o.bucket, slotKey(slot))
		if errors.Is(err, objstore.ErrNoObject) {
			return nil
		}
		return err
	}
	_, err := o.store.Put(o.bucket, slotKey(slot), id[:])
	return err
}

// Mappings reads every slot's mapping object into a dense table.
func (o *ObjBackend) Mappings() ([]ID, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]ID, o.slots)
	infos, err := o.store.List(o.bucket, "m/")
	if err != nil {
		return nil, err
	}
	for _, info := range infos {
		slot, err := strconv.ParseUint(strings.TrimPrefix(info.Key, "m/"), 10, 64)
		if err != nil || slot >= o.slots {
			continue
		}
		raw, _, err := o.store.Get(o.bucket, info.Key)
		if err != nil {
			return nil, err
		}
		if len(raw) != 32 {
			return nil, fmt.Errorf("cas: mapping object %s has %d bytes", info.Key, len(raw))
		}
		copy(out[slot][:], raw)
	}
	return out, nil
}

// CorruptChunk rewrites the chunk object with its bytes inverted while the
// mapping still names the original ID — silent corruption from the store's
// point of view (the object's own etag stays self-consistent), caught only
// by content re-checksumming.
func (o *ObjBackend) CorruptChunk(id ID) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	data, _, err := o.store.Get(o.bucket, chunkKey(id))
	if errors.Is(err, objstore.ErrNoObject) {
		return ErrNoChunk
	}
	if err != nil {
		return err
	}
	_, err = o.store.Put(o.bucket, chunkKey(id), flipped(data))
	return err
}

// Close is a no-op; the object store's lifetime belongs to its creator.
func (o *ObjBackend) Close() error { return nil }
