package cas

import (
	"errors"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/xerr"
)

// chunkFill renders a deterministic unique chunk.
func chunkFill(tag byte, size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = tag ^ byte(i*7)
	}
	return b
}

// TestRefcountAtExactCapacity pins the reclaim path the typed ErrStoreFull
// handling relies on: a block backend filled to its last physical chunk
// slot refuses new content typed Exhausted, a dedup overwrite releases the
// displaced chunk's slot, and that freed slot is immediately reusable.
func TestRefcountAtExactCapacity(t *testing.T) {
	const (
		bs        = 512
		chunkSize = 2048
		slots     = 8
	)
	devBytes, err := BlockBackendBytes(bs, chunkSize, slots)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := blockdev.NewMemDisk(bs, devBytes/bs)
	if err != nil {
		t.Fatal(err)
	}
	be, err := OpenBlockBackend(disk, chunkSize, slots)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(be, chunkSize, slots)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Fill every logical slot with unique content, then consume the
	// backend's orphan-slack physical slots with direct puts so the chunk
	// area sits at its exact last slot.
	for i := uint64(0); i < slots; i++ {
		if _, err := s.Write(i, chunkFill(byte(i), chunkSize)); err != nil {
			t.Fatalf("fill slot %d: %v", i, err)
		}
	}
	for i := uint64(slots); i < physSlotsFor(slots); i++ {
		if err := be.PutChunk(Sum(chunkFill(byte(i), chunkSize)), chunkFill(byte(i), chunkSize)); err != nil {
			t.Fatalf("fill slack slot %d: %v", i, err)
		}
	}

	// New unique content can't be admitted: the put happens before the old
	// chunk's release (crash-safe ordering), so an exactly-full backend
	// surfaces typed exhaustion.
	_, err = s.Write(0, chunkFill(0xAA, chunkSize))
	if !errors.Is(err, ErrStoreFull) {
		t.Fatalf("write to full backend: got %v, want ErrStoreFull", err)
	}
	if xerr.Classify(err) != xerr.Exhausted {
		t.Fatalf("ErrStoreFull classed %v, want Exhausted", xerr.Classify(err))
	}

	// Overwrite slot 0 with slot 1's content: a dedup hit needing no new
	// physical slot. The displaced chunk's refcount drops to zero and its
	// slot frees.
	oldID := s.IDAt(0)
	dup, err := s.Write(0, chunkFill(1, chunkSize))
	if err != nil {
		t.Fatalf("dedup overwrite at capacity: %v", err)
	}
	if !dup {
		t.Fatal("overwrite with existing content was not a dedup hit")
	}
	if s.Refs(oldID) != 0 {
		t.Fatalf("displaced chunk still has %d refs", s.Refs(oldID))
	}
	if got := s.Refs(s.IDAt(0)); got != 2 {
		t.Fatalf("shared chunk refcount = %d, want 2", got)
	}
	if be.HasChunk(oldID) {
		t.Fatal("zero-ref chunk not deleted from the backend")
	}

	// The freed physical slot is reusable for new unique content.
	fresh := chunkFill(0xBB, chunkSize)
	if _, err := s.Write(0, fresh); err != nil {
		t.Fatalf("write to freed slot: %v", err)
	}
	buf := make([]byte, chunkSize)
	if err := s.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(fresh) {
		t.Fatal("freed-slot content mismatch after reuse")
	}
}
