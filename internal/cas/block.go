package cas

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/blockdev"
)

// On-device layout of a block-backed CAS replica, in units of the device's
// block size bs:
//
//	lba 0                     superblock: magic, chunkSize, slots, physSlots
//	lba 1 .. mapBlocks        slot table: one 64-byte entry per logical slot
//	                          (chunk ID at [0:32], zero = unmapped)
//	then physSlots ×          chunk slots: 1 header block (magic, length,
//	  (1 + chunkSize/bs)      chunk ID) followed by the chunk's data blocks
//
// PutChunk writes data blocks first and the header last, so a crash mid-put
// leaves a headerless slot that the open-time scan treats as free; the slot
// table is updated with single-entry read-modify-write, so a mapping flip is
// atomic at block granularity. Open rebuilds the ID→slot index and free
// list purely by scanning headers — no separate allocation metadata to keep
// consistent.
const (
	blockMagic    = "STORMCAS"
	chunkMagic    = "CASCHUNK"
	mapEntryBytes = 64
)

// BlockBackend persists chunks on a blockdev.Device using the layout above.
type BlockBackend struct {
	mu        sync.Mutex
	dev       blockdev.Device
	bs        int
	chunkSize int
	slots     uint64
	physSlots uint64
	mapBlocks uint64
	dataStart uint64 // first lba of the chunk-slot area
	perSlot   uint64 // blocks per chunk slot (1 header + data)
	index     map[ID]uint64
	free      []uint64
}

// BlockBackendBytes returns the device size, in bytes, needed for a
// block-backed CAS replica with the given geometry. The chunk area carries
// slack beyond the logical slot count because a write puts its new chunk
// before releasing the old one and a crash can strand orphans until the
// next open.
func BlockBackendBytes(blockSize, chunkSize int, slots uint64) (uint64, error) {
	if blockSize <= 0 || chunkSize <= 0 || chunkSize%blockSize != 0 {
		return 0, fmt.Errorf("cas: chunk size %d not a multiple of block size %d", chunkSize, blockSize)
	}
	phys := physSlotsFor(slots)
	mapBlocks := (slots*mapEntryBytes + uint64(blockSize) - 1) / uint64(blockSize)
	perSlot := 1 + uint64(chunkSize/blockSize)
	return (1 + mapBlocks + phys*perSlot) * uint64(blockSize), nil
}

// physSlotsFor gives the chunk-area capacity for a logical slot count:
// every slot unique, plus 1/8 slack and a fixed floor for in-flight puts
// and crash orphans.
func physSlotsFor(slots uint64) uint64 {
	return slots + slots/8 + 16
}

// OpenBlockBackend opens (or formats) a block-backed replica on dev. A
// device whose superblock is absent or unreadable is formatted fresh; an
// existing superblock must match the requested geometry. Chunk headers are
// scanned to rebuild the ID index and free list, which is what makes the
// backend crash-recoverable: any torn put shows up as a headerless slot.
func OpenBlockBackend(dev blockdev.Device, chunkSize int, slots uint64) (*BlockBackend, error) {
	bs := dev.BlockSize()
	if chunkSize <= 0 || chunkSize%bs != 0 {
		return nil, fmt.Errorf("cas: chunk size %d not a multiple of device block size %d", chunkSize, bs)
	}
	if slots == 0 {
		return nil, fmt.Errorf("cas: zero slots")
	}
	b := &BlockBackend{
		dev:       dev,
		bs:        bs,
		chunkSize: chunkSize,
		slots:     slots,
		physSlots: physSlotsFor(slots),
		perSlot:   1 + uint64(chunkSize/bs),
	}
	b.mapBlocks = (slots*mapEntryBytes + uint64(bs) - 1) / uint64(bs)
	b.dataStart = 1 + b.mapBlocks
	need := b.dataStart + b.physSlots*b.perSlot
	if dev.Blocks() < need {
		return nil, fmt.Errorf("cas: device has %d blocks, layout needs %d", dev.Blocks(), need)
	}

	sb := make([]byte, bs)
	if err := dev.ReadAt(sb, 0); err != nil {
		return nil, fmt.Errorf("cas: read superblock: %w", err)
	}
	if string(sb[:8]) == blockMagic {
		gotChunk := binary.LittleEndian.Uint32(sb[8:12])
		gotSlots := binary.LittleEndian.Uint64(sb[12:20])
		gotPhys := binary.LittleEndian.Uint64(sb[20:28])
		if int(gotChunk) != chunkSize || gotSlots != slots || gotPhys != b.physSlots {
			return nil, fmt.Errorf("%w: device formatted chunk=%d slots=%d phys=%d, want chunk=%d slots=%d phys=%d",
				ErrGeometry, gotChunk, gotSlots, gotPhys, chunkSize, slots, b.physSlots)
		}
	} else {
		if err := b.format(); err != nil {
			return nil, err
		}
	}
	if err := b.scan(); err != nil {
		return nil, err
	}
	return b, nil
}

// format zeroes the slot table and chunk headers and writes the superblock
// last, so a crash mid-format leaves an unformatted device.
func (b *BlockBackend) format() error {
	zero := make([]byte, b.bs)
	for lba := uint64(1); lba < b.dataStart; lba++ {
		if err := b.dev.WriteAt(zero, lba); err != nil {
			return fmt.Errorf("cas: format map block %d: %w", lba, err)
		}
	}
	for slot := uint64(0); slot < b.physSlots; slot++ {
		if err := b.dev.WriteAt(zero, b.headerLBA(slot)); err != nil {
			return fmt.Errorf("cas: format chunk header %d: %w", slot, err)
		}
	}
	sb := make([]byte, b.bs)
	copy(sb, blockMagic)
	binary.LittleEndian.PutUint32(sb[8:12], uint32(b.chunkSize))
	binary.LittleEndian.PutUint64(sb[12:20], b.slots)
	binary.LittleEndian.PutUint64(sb[20:28], b.physSlots)
	if err := b.dev.WriteAt(sb, 0); err != nil {
		return fmt.Errorf("cas: write superblock: %w", err)
	}
	return b.dev.Flush()
}

// scan walks every chunk header rebuilding the ID→slot index and free list.
func (b *BlockBackend) scan() error {
	b.index = make(map[ID]uint64)
	b.free = b.free[:0]
	hdr := make([]byte, b.bs)
	for slot := uint64(0); slot < b.physSlots; slot++ {
		if err := b.dev.ReadAt(hdr, b.headerLBA(slot)); err != nil {
			return fmt.Errorf("cas: scan header %d: %w", slot, err)
		}
		if string(hdr[:8]) != chunkMagic {
			b.free = append(b.free, slot)
			continue
		}
		var id ID
		copy(id[:], hdr[12:44])
		if _, dup := b.index[id]; dup {
			// Two headers for one ID can only come from a crash between a
			// duplicate put's data write and the earlier delete; keep one.
			b.free = append(b.free, slot)
			continue
		}
		b.index[id] = slot
	}
	return nil
}

func (b *BlockBackend) headerLBA(physSlot uint64) uint64 {
	return b.dataStart + physSlot*b.perSlot
}

// PutChunk writes the chunk's data blocks, then its header.
func (b *BlockBackend) PutChunk(id ID, data []byte) error {
	if len(data) != b.chunkSize {
		return fmt.Errorf("cas: put of %d bytes, chunk size %d", len(data), b.chunkSize)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.index[id]; ok {
		return nil
	}
	if len(b.free) == 0 {
		return ErrFull
	}
	slot := b.free[len(b.free)-1]
	hdrLBA := b.headerLBA(slot)
	if err := b.dev.WriteAt(data, hdrLBA+1); err != nil {
		return fmt.Errorf("cas: write chunk data: %w", err)
	}
	hdr := make([]byte, b.bs)
	copy(hdr, chunkMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(b.chunkSize))
	copy(hdr[12:44], id[:])
	if err := b.dev.WriteAt(hdr, hdrLBA); err != nil {
		return fmt.Errorf("cas: write chunk header: %w", err)
	}
	b.free = b.free[:len(b.free)-1]
	b.index[id] = slot
	return nil
}

// GetChunk reads a chunk's data blocks.
func (b *BlockBackend) GetChunk(id ID) ([]byte, error) {
	b.mu.Lock()
	slot, ok := b.index[id]
	b.mu.Unlock()
	if !ok {
		return nil, ErrNoChunk
	}
	data := make([]byte, b.chunkSize)
	if err := b.dev.ReadAt(data, b.headerLBA(slot)+1); err != nil {
		return nil, fmt.Errorf("cas: read chunk data: %w", err)
	}
	return data, nil
}

// DeleteChunk invalidates a chunk's header, freeing its slot.
func (b *BlockBackend) DeleteChunk(id ID) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	slot, ok := b.index[id]
	if !ok {
		return nil
	}
	zero := make([]byte, b.bs)
	if err := b.dev.WriteAt(zero, b.headerLBA(slot)); err != nil {
		return fmt.Errorf("cas: clear chunk header: %w", err)
	}
	delete(b.index, id)
	b.free = append(b.free, slot)
	return nil
}

// HasChunk reports chunk presence.
func (b *BlockBackend) HasChunk(id ID) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.index[id]
	return ok
}

// Chunks lists every indexed chunk ID.
func (b *BlockBackend) Chunks() []ID {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]ID, 0, len(b.index))
	for id := range b.index {
		out = append(out, id)
	}
	return out
}

// SetMapping updates one 64-byte slot-table entry with a read-modify-write
// of its containing block.
func (b *BlockBackend) SetMapping(slot uint64, id ID) error {
	if slot >= b.slots {
		return fmt.Errorf("cas: mapping slot %d out of range (%d)", slot, b.slots)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	off := slot * mapEntryBytes
	lba := 1 + off/uint64(b.bs)
	blk := make([]byte, b.bs)
	if err := b.dev.ReadAt(blk, lba); err != nil {
		return fmt.Errorf("cas: read map block: %w", err)
	}
	copy(blk[off%uint64(b.bs):off%uint64(b.bs)+32], id[:])
	if err := b.dev.WriteAt(blk, lba); err != nil {
		return fmt.Errorf("cas: write map block: %w", err)
	}
	return nil
}

// Mappings reads the full slot table.
func (b *BlockBackend) Mappings() ([]ID, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]ID, b.slots)
	blk := make([]byte, b.bs)
	var cur uint64 // lba currently held in blk, 0 = none
	for slot := uint64(0); slot < b.slots; slot++ {
		off := slot * mapEntryBytes
		lba := 1 + off/uint64(b.bs)
		if lba != cur {
			if err := b.dev.ReadAt(blk, lba); err != nil {
				return nil, fmt.Errorf("cas: read map block: %w", err)
			}
			cur = lba
		}
		copy(out[slot][:], blk[off%uint64(b.bs):off%uint64(b.bs)+32])
	}
	return out, nil
}

// CorruptChunk inverts a chunk's stored data blocks without touching its
// header — fault injection for scrub drills.
func (b *BlockBackend) CorruptChunk(id ID) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	slot, ok := b.index[id]
	if !ok {
		return ErrNoChunk
	}
	data := make([]byte, b.chunkSize)
	if err := b.dev.ReadAt(data, b.headerLBA(slot)+1); err != nil {
		return err
	}
	return b.dev.WriteAt(flipped(data), b.headerLBA(slot)+1)
}

// Close flushes and closes the device.
func (b *BlockBackend) Close() error {
	if err := b.dev.Flush(); err != nil {
		_ = b.dev.Close()
		return err
	}
	return b.dev.Close()
}
