package cas

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/extfs"
	"repro/internal/objstore"
)

const testChunk = 2048

func chunkOf(seed int64) []byte {
	data := make([]byte, testChunk)
	rand.New(rand.NewSource(seed)).Read(data)
	return data
}

func openMem(t *testing.T, slots uint64) *Store {
	t.Helper()
	s, err := Open(NewMemBackend(slots), testChunk, slots)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestWriteReadDedup(t *testing.T) {
	s := openMem(t, 8)
	a, b := chunkOf(1), chunkOf(2)
	if dup, err := s.Write(0, a); err != nil || dup {
		t.Fatalf("first write: dup=%v err=%v", dup, err)
	}
	if dup, err := s.Write(1, a); err != nil || !dup {
		t.Fatalf("duplicate content write: dup=%v err=%v", dup, err)
	}
	if dup, err := s.Write(2, b); err != nil || dup {
		t.Fatalf("unique write: dup=%v err=%v", dup, err)
	}
	got := make([]byte, testChunk)
	for slot, want := range map[uint64][]byte{0: a, 1: a, 2: b} {
		if err := s.Read(slot, got); err != nil {
			t.Fatalf("Read(%d): %v", slot, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("slot %d content mismatch", slot)
		}
	}
	// Unmapped slot reads zeros.
	if err := s.Read(7, got); err != nil || !equalZero(got) {
		t.Fatalf("unmapped read: err=%v zero=%v", err, equalZero(got))
	}
	st := s.Stats()
	if st.Writes != 3 || st.DedupHits != 1 || st.LiveChunks != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesLogical != 3*testChunk || st.BytesStored != 2*testChunk {
		t.Fatalf("byte accounting = %+v", st)
	}
	if r := st.DedupRatio(); r != 1.5 {
		t.Fatalf("dedup ratio = %v, want 1.5", r)
	}
}

func TestRefcountRelease(t *testing.T) {
	s := openMem(t, 4)
	a, b := chunkOf(10), chunkOf(11)
	for slot := uint64(0); slot < 3; slot++ {
		if _, err := s.Write(slot, a); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Refs(Sum(a)); got != 3 {
		t.Fatalf("refs = %d, want 3", got)
	}
	// Overwrite two of the three references; chunk a must survive.
	for slot := uint64(0); slot < 2; slot++ {
		if _, err := s.Write(slot, b); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Refs(Sum(a)); got != 1 {
		t.Fatalf("refs after overwrite = %d, want 1", got)
	}
	// Last reference gone → chunk reclaimed from the backend.
	if _, err := s.Write(2, b); err != nil {
		t.Fatal(err)
	}
	if s.b.HasChunk(Sum(a)) {
		t.Fatal("released chunk still stored")
	}
	// Rewriting identical content at the same slot is a pure dedup hit.
	dup, err := s.Write(2, b)
	if err != nil || !dup {
		t.Fatalf("same-content rewrite: dup=%v err=%v", dup, err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	s := openMem(t, 2)
	if _, err := s.Write(0, chunkOf(42)); err != nil {
		t.Fatal(err)
	}
	if err := s.VerifySlot(0); err != nil {
		t.Fatalf("verify clean: %v", err)
	}
	if err := s.Corrupt(0); err != nil {
		t.Fatalf("Corrupt: %v", err)
	}
	if err := s.VerifySlot(0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("verify corrupted = %v, want ErrCorrupt", err)
	}
}

func TestConcurrentWriters(t *testing.T) {
	const slots, writers = 64, 8
	s := openMem(t, slots)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				slot := uint64((w*200 + i) % slots)
				// A small seed space forces heavy cross-writer dedup.
				if _, err := s.Write(slot, chunkOf(int64(i%7))); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				buf := make([]byte, testChunk)
				if err := s.Read(slot, buf); err != nil {
					t.Errorf("reader %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := s.Stats(); st.LiveChunks > 7 {
		t.Fatalf("live chunks = %d, want ≤ 7", st.LiveChunks)
	}
}

func newBlockDisk(t *testing.T, slots uint64) *blockdev.MemDisk {
	t.Helper()
	size, err := BlockBackendBytes(512, testChunk, slots)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := blockdev.NewMemDisk(512, size/512)
	if err != nil {
		t.Fatal(err)
	}
	return disk
}

func TestBlockBackendPersistence(t *testing.T) {
	const slots = 16
	disk := newBlockDisk(t, slots)
	b, err := OpenBlockBackend(disk, testChunk, slots)
	if err != nil {
		t.Fatalf("OpenBlockBackend: %v", err)
	}
	s, err := Open(b, testChunk, slots)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for slot := uint64(0); slot < slots; slot++ {
		if _, err := s.Write(slot, chunkOf(int64(slot%5))); err != nil {
			t.Fatal(err)
		}
	}
	want, err := s.LogicalHash()
	if err != nil {
		t.Fatal(err)
	}
	// Reopen over the same device without closing: simulates the writing
	// process dying and the replacement scanning the layout from scratch.
	b2, err := OpenBlockBackend(disk, testChunk, slots)
	if err != nil {
		t.Fatalf("reopen backend: %v", err)
	}
	s2, err := Open(b2, testChunk, slots)
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	got, err := s2.LogicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("logical content diverged across reopen")
	}
	if st := s2.Stats(); st.LiveChunks != 5 {
		t.Fatalf("live chunks after rescan = %d, want 5", st.LiveChunks)
	}
}

func TestBlockBackendOrphanGC(t *testing.T) {
	const slots = 8
	disk := newBlockDisk(t, slots)
	b, err := OpenBlockBackend(disk, testChunk, slots)
	if err != nil {
		t.Fatal(err)
	}
	// A chunk put with no mapping models a crash between PutChunk and
	// SetMapping; Open must reclaim it.
	orphan := chunkOf(99)
	if err := b.PutChunk(Sum(orphan), orphan); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(b, testChunk, slots); err != nil {
		t.Fatal(err)
	}
	if b.HasChunk(Sum(orphan)) {
		t.Fatal("orphan chunk survived open-time GC")
	}
}

func TestBlockBackendGeometryMismatch(t *testing.T) {
	const slots = 8
	disk := newBlockDisk(t, slots)
	if _, err := OpenBlockBackend(disk, testChunk, slots); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenBlockBackend(disk, testChunk/2, slots); !errors.Is(err, ErrGeometry) {
		t.Fatalf("mismatched reopen = %v, want ErrGeometry", err)
	}
}

func TestBlockBackendFull(t *testing.T) {
	const slots = 4
	disk := newBlockDisk(t, slots)
	b, err := OpenBlockBackend(disk, testChunk, slots)
	if err != nil {
		t.Fatal(err)
	}
	var i int64
	for {
		if err := b.PutChunk(Sum(chunkOf(i)), chunkOf(i)); err != nil {
			if !errors.Is(err, ErrFull) {
				t.Fatalf("fill: %v", err)
			}
			break
		}
		i++
		if i > int64(physSlotsFor(slots))+1 {
			t.Fatal("backend never reported ErrFull")
		}
	}
}

func newObjStore(t *testing.T) *objstore.Store {
	t.Helper()
	disk, err := blockdev.NewMemDisk(512, 65536)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := extfs.Mkfs(disk, extfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := objstore.New(fs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestObjBackendRoundtrip(t *testing.T) {
	const slots = 8
	os := newObjStore(t)
	b, err := NewObjBackend(os, "cas", slots)
	if err != nil {
		t.Fatalf("NewObjBackend: %v", err)
	}
	s, err := Open(b, testChunk, slots)
	if err != nil {
		t.Fatal(err)
	}
	for slot := uint64(0); slot < slots; slot++ {
		if _, err := s.Write(slot, chunkOf(int64(slot%3))); err != nil {
			t.Fatal(err)
		}
	}
	want, err := s.LogicalHash()
	if err != nil {
		t.Fatal(err)
	}
	// Reopen from the same bucket: the slot table and chunks are objects.
	b2, err := NewObjBackend(os, "cas", slots)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(b2, testChunk, slots)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.LogicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("obj-backed content diverged across reopen")
	}
	// Silent corruption: the rewritten object is self-consistent for the
	// object store but fails the CAS content check.
	if err := s2.Corrupt(0); err != nil {
		t.Fatal(err)
	}
	if err := s2.VerifySlot(0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("verify corrupted = %v, want ErrCorrupt", err)
	}
}

func TestBackendContract(t *testing.T) {
	const slots = 4
	for _, tc := range []struct {
		name string
		mk   func(t *testing.T) Backend
	}{
		{"mem", func(t *testing.T) Backend { return NewMemBackend(slots) }},
		{"block", func(t *testing.T) Backend {
			b, err := OpenBlockBackend(newBlockDisk(t, slots), testChunk, slots)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
		{"obj", func(t *testing.T) Backend {
			b, err := NewObjBackend(newObjStore(t), "contract", slots)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mk(t)
			data := chunkOf(7)
			id := Sum(data)
			if _, err := b.GetChunk(id); !errors.Is(err, ErrNoChunk) {
				t.Fatalf("missing get = %v, want ErrNoChunk", err)
			}
			if err := b.PutChunk(id, data); err != nil {
				t.Fatal(err)
			}
			if err := b.PutChunk(id, data); err != nil {
				t.Fatalf("idempotent re-put: %v", err)
			}
			got, err := b.GetChunk(id)
			if err != nil || !bytes.Equal(got, data) {
				t.Fatalf("get = %v (match=%v)", err, bytes.Equal(got, data))
			}
			if !b.HasChunk(id) || len(b.Chunks()) != 1 {
				t.Fatal("chunk not indexed")
			}
			if err := b.SetMapping(1, id); err != nil {
				t.Fatal(err)
			}
			table, err := b.Mappings()
			if err != nil || len(table) != slots || table[1] != id || !table[0].IsZero() {
				t.Fatalf("mappings = %v, err %v", table, err)
			}
			if err := b.SetMapping(1, ID{}); err != nil {
				t.Fatalf("clear mapping: %v", err)
			}
			if err := b.CorruptChunk(id); err != nil {
				t.Fatal(err)
			}
			got, err = b.GetChunk(id)
			if err != nil {
				t.Fatal(err)
			}
			if Sum(got) == id {
				t.Fatal("corruption did not change content")
			}
			if err := b.DeleteChunk(id); err != nil {
				t.Fatal(err)
			}
			if b.HasChunk(id) {
				t.Fatal("chunk survived delete")
			}
			if err := b.DeleteChunk(id); err != nil {
				t.Fatalf("idempotent delete: %v", err)
			}
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBlockBackendBytesSizing(t *testing.T) {
	for _, slots := range []uint64{1, 16, 1024} {
		size, err := BlockBackendBytes(512, testChunk, slots)
		if err != nil {
			t.Fatal(err)
		}
		if size%512 != 0 {
			t.Fatalf("size %d not block-aligned", size)
		}
		disk, err := blockdev.NewMemDisk(512, size/512)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := OpenBlockBackend(disk, testChunk, slots); err != nil {
			t.Fatalf("slots=%d: %v", slots, err)
		}
	}
	if _, err := BlockBackendBytes(512, 100, 4); err == nil {
		t.Fatal("unaligned chunk size accepted")
	}
}
