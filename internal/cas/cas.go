// Package cas implements the content-addressed block store behind the
// replicate middle-box service: a logical image of fixed-size chunks where
// every chunk is identified by the SHA-256 of its content. Identical chunks
// are stored once and reference-counted, so rewriting an image with a small
// delta (the backup workload) stores only the changed chunks. Chunk storage
// and the slot→ID table are persisted by a pluggable Backend — an on-device
// layout over internal/blockdev (crash recovery by scan), an object-store
// layout over internal/objstore, or a plain in-memory map for tests.
//
// The design follows kopia's CAS flows (SNIPPETS.md snippet 1): content
// hashes are both the storage key and the integrity check — a chunk that no
// longer hashes to its ID is corruption by definition, which is what the
// scrub service (internal/scrub) detects and repairs.
package cas

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"

	"repro/internal/xerr"
)

// Errors.
var (
	// ErrCorrupt reports a chunk whose stored bytes no longer hash to its ID.
	ErrCorrupt = errors.New("cas: chunk content does not match its id")
	// ErrNoChunk reports a lookup of an ID the backend does not hold.
	ErrNoChunk = errors.New("cas: no such chunk")
	// ErrFull reports a backend with no free chunk slot left. It is classed
	// xerr.Exhausted: retrying won't help until overwrites release chunk
	// refs (dedup reclaim) or the backend grows.
	ErrFull = xerr.New(xerr.Exhausted, "cas: backend is full")
	// ErrStoreFull is the taxonomy-facing name for chunk-slot exhaustion —
	// the same sentinel as ErrFull, exported under the name the data-path
	// error contract uses.
	ErrStoreFull = ErrFull
	// ErrGeometry reports a store opened with a mismatched chunk size or
	// slot count.
	ErrGeometry = errors.New("cas: geometry mismatch")
)

// ID is a chunk's content address: the SHA-256 of its bytes. The zero ID
// marks an unmapped slot.
type ID [32]byte

// Sum computes the content address of a chunk.
func Sum(data []byte) ID { return sha256.Sum256(data) }

// IsZero reports whether the ID is the unmapped-slot marker.
func (id ID) IsZero() bool { return id == ID{} }

// String renders the ID as lowercase hex.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// Backend persists one replica's chunks and its slot→ID table. PutChunk is
// idempotent per ID; SetMapping with the zero ID clears a slot. Backends
// must be safe for concurrent use.
type Backend interface {
	// PutChunk stores a chunk under its ID (no-op if already present).
	PutChunk(id ID, data []byte) error
	// GetChunk returns a chunk's bytes (ErrNoChunk when absent).
	GetChunk(id ID) ([]byte, error)
	// DeleteChunk removes a chunk (no-op when absent).
	DeleteChunk(id ID) error
	// HasChunk reports chunk presence.
	HasChunk(id ID) bool
	// Chunks lists every stored chunk ID (recovery/GC).
	Chunks() []ID
	// SetMapping durably records slot→id.
	SetMapping(slot uint64, id ID) error
	// Mappings returns the persisted slot table, index = slot.
	Mappings() ([]ID, error)
	// CorruptChunk flips the stored bytes of a chunk without touching its
	// ID — fault injection for integrity drills (the scrub experiments),
	// the CAS analogue of volume.InjectFault.
	CorruptChunk(id ID) error
	// Close releases the backend's resources.
	Close() error
}

// Stats is a store's cumulative dedup accounting.
type Stats struct {
	// Writes counts chunk writes accepted (including dedup hits).
	Writes uint64 `json:"writes"`
	// DedupHits counts writes satisfied without storing new bytes.
	DedupHits uint64 `json:"dedup_hits"`
	// BytesLogical is the total bytes written by callers.
	BytesLogical uint64 `json:"bytes_logical"`
	// BytesStored is the total chunk bytes actually put to the backend.
	BytesStored uint64 `json:"bytes_stored"`
	// LiveChunks is the current unique chunk count.
	LiveChunks uint64 `json:"live_chunks"`
}

// DedupRatio is logical over stored bytes (0 when nothing stored).
func (s Stats) DedupRatio() float64 {
	if s.BytesStored == 0 {
		return 0
	}
	return float64(s.BytesLogical) / float64(s.BytesStored)
}

// Store is a content-addressed logical image over a Backend: a dense table
// of slots (chunk-sized extents) mapping to refcounted chunks. Open rebuilds
// the refcount index from the backend's persisted table, so a store survives
// the death of the process that wrote it.
type Store struct {
	mu        sync.Mutex
	b         Backend
	chunkSize int
	slots     uint64
	table     []ID
	refs      map[ID]uint32
	stats     Stats
	closed    bool
}

// Open loads (or initializes) a store over b with the given geometry: slots
// chunks of chunkSize bytes. It rebuilds the reference counts from the
// persisted slot table and garbage-collects orphan chunks a crash may have
// left between a chunk put and its mapping update.
func Open(b Backend, chunkSize int, slots uint64) (*Store, error) {
	if chunkSize <= 0 {
		return nil, fmt.Errorf("cas: invalid chunk size %d", chunkSize)
	}
	if slots == 0 {
		return nil, errors.New("cas: store must have at least one slot")
	}
	table, err := b.Mappings()
	if err != nil {
		return nil, fmt.Errorf("cas: load mappings: %w", err)
	}
	if uint64(len(table)) != slots {
		return nil, fmt.Errorf("%w: backend table has %d slots, want %d", ErrGeometry, len(table), slots)
	}
	s := &Store{
		b:         b,
		chunkSize: chunkSize,
		slots:     slots,
		table:     table,
		refs:      make(map[ID]uint32),
	}
	for _, id := range table {
		if !id.IsZero() {
			s.refs[id]++
		}
	}
	// Orphans: chunks present with no referencing slot are leftovers of a
	// crash between PutChunk and SetMapping — safe to drop.
	for _, id := range b.Chunks() {
		if s.refs[id] == 0 {
			_ = b.DeleteChunk(id)
		}
	}
	s.stats.LiveChunks = uint64(len(s.refs))
	return s, nil
}

// ChunkSize returns the chunk size in bytes.
func (s *Store) ChunkSize() int { return s.chunkSize }

// Slots returns the logical image size in chunks.
func (s *Store) Slots() uint64 { return s.slots }

// IDAt returns the chunk ID mapped at slot (zero when unmapped).
func (s *Store) IDAt(slot uint64) ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	if slot >= s.slots {
		return ID{}
	}
	return s.table[slot]
}

// Write stores a full chunk at slot: hash, dedup against the live chunk
// set, persist the chunk if new, then flip the slot mapping and release the
// previous chunk. It reports whether the write was a dedup hit (no new
// bytes stored). The update ordering — put, map, release — keeps every
// crash point recoverable: an orphan chunk or an unreferenced old chunk,
// both reclaimed at the next Open.
func (s *Store) Write(slot uint64, data []byte) (dup bool, err error) {
	if len(data) != s.chunkSize {
		return false, fmt.Errorf("cas: write of %d bytes, chunk size %d", len(data), s.chunkSize)
	}
	if slot >= s.slots {
		return false, fmt.Errorf("cas: slot %d out of range (%d)", slot, s.slots)
	}
	id := Sum(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, errors.New("cas: store is closed")
	}
	s.stats.Writes++
	s.stats.BytesLogical += uint64(len(data))
	old := s.table[slot]
	if old == id {
		s.stats.DedupHits++
		return true, nil
	}
	if s.refs[id] == 0 {
		if err := s.b.PutChunk(id, data); err != nil {
			return false, err
		}
		s.stats.BytesStored += uint64(len(data))
	} else {
		s.stats.DedupHits++
		dup = true
	}
	if err := s.b.SetMapping(slot, id); err != nil {
		return dup, err
	}
	s.table[slot] = id
	s.refs[id]++
	if !old.IsZero() {
		s.refs[old]--
		if s.refs[old] == 0 {
			delete(s.refs, old)
			_ = s.b.DeleteChunk(old)
		}
	}
	s.stats.LiveChunks = uint64(len(s.refs))
	return dup, nil
}

// Read fills dst with the chunk at slot, verifying the content hash.
// Unmapped slots read as zeros.
func (s *Store) Read(slot uint64, dst []byte) error {
	if len(dst) != s.chunkSize {
		return fmt.Errorf("cas: read of %d bytes, chunk size %d", len(dst), s.chunkSize)
	}
	if slot >= s.slots {
		return fmt.Errorf("cas: slot %d out of range (%d)", slot, s.slots)
	}
	s.mu.Lock()
	id := s.table[slot]
	s.mu.Unlock()
	if id.IsZero() {
		clear(dst)
		return nil
	}
	data, err := s.b.GetChunk(id)
	if err != nil {
		return err
	}
	if Sum(data) != id {
		return fmt.Errorf("%w: slot %d (%s)", ErrCorrupt, slot, id)
	}
	copy(dst, data)
	return nil
}

// Repair force-stores data as slot's content, bypassing Write's dedup fast
// path: when the slot already maps to Sum(data) — the corrupted-chunk case,
// where the mapping is intact but the stored bytes rotted — the chunk is
// re-put over the rotten copy, healing every slot that references it. A
// crash between the delete and the re-put leaves the slot unreadable
// rather than silently wrong; the next scrub pass repairs it again.
func (s *Store) Repair(slot uint64, data []byte) error {
	if len(data) != s.chunkSize {
		return fmt.Errorf("cas: repair of %d bytes, chunk size %d", len(data), s.chunkSize)
	}
	if slot >= s.slots {
		return fmt.Errorf("cas: slot %d out of range (%d)", slot, s.slots)
	}
	id := Sum(data)
	s.mu.Lock()
	if s.table[slot] != id {
		s.mu.Unlock()
		_, err := s.Write(slot, data)
		return err
	}
	defer s.mu.Unlock()
	if err := s.b.DeleteChunk(id); err != nil {
		return err
	}
	return s.b.PutChunk(id, data)
}

// VerifySlot re-reads the chunk at slot and re-checksums it against its
// mapped ID — the scrub primitive. Unmapped slots verify trivially.
func (s *Store) VerifySlot(slot uint64) error {
	buf := make([]byte, s.chunkSize)
	return s.Read(slot, buf)
}

// Refs returns a chunk's live reference count.
func (s *Store) Refs(id ID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.refs[id])
}

// Stats returns the cumulative dedup accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// LogicalHash hashes the store's full logical content (every slot's bytes,
// unmapped slots as zeros) — the convergence check the crash and scrub
// experiments compare across replicas and against the primary device.
func (s *Store) LogicalHash() (ID, error) {
	h := sha256.New()
	buf := make([]byte, s.chunkSize)
	for slot := uint64(0); slot < s.slots; slot++ {
		if err := s.Read(slot, buf); err != nil {
			return ID{}, err
		}
		h.Write(buf)
	}
	var out ID
	h.Sum(out[:0])
	return out, nil
}

// Corrupt flips the stored bytes of the chunk at slot without touching its
// ID — fault injection for the scrub-repair drills. Corrupting an unmapped
// slot is an error.
func (s *Store) Corrupt(slot uint64) error {
	s.mu.Lock()
	id := s.table[slot]
	s.mu.Unlock()
	if id.IsZero() {
		return fmt.Errorf("cas: slot %d is unmapped", slot)
	}
	return s.b.CorruptChunk(id)
}

// Close closes the store and its backend.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	return s.b.Close()
}

// flipped returns a copy of data with every byte inverted — the shared
// corruption pattern backends use for CorruptChunk (guaranteed to change
// the content hash of any chunk).
func flipped(data []byte) []byte {
	out := make([]byte, len(data))
	for i, b := range data {
		out[i] = ^b
	}
	return out
}

// equalZero reports whether b is all zeros.
func equalZero(b []byte) bool {
	return bytes.Count(b, []byte{0}) == len(b)
}
