package cas

import "sync"

// MemBackend is an in-memory Backend for tests and the stormbench backup
// suite's lightweight replicas: a chunk map plus a dense slot table.
type MemBackend struct {
	mu     sync.Mutex
	chunks map[ID][]byte
	table  []ID
}

// NewMemBackend returns an empty in-memory backend with the given slot
// count.
func NewMemBackend(slots uint64) *MemBackend {
	return &MemBackend{
		chunks: make(map[ID][]byte),
		table:  make([]ID, slots),
	}
}

// PutChunk stores a copy of data under id.
func (m *MemBackend) PutChunk(id ID, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.chunks[id]; ok {
		return nil
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.chunks[id] = cp
	return nil
}

// GetChunk returns a copy of the chunk's bytes.
func (m *MemBackend) GetChunk(id ID) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.chunks[id]
	if !ok {
		return nil, ErrNoChunk
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// DeleteChunk removes a chunk.
func (m *MemBackend) DeleteChunk(id ID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.chunks, id)
	return nil
}

// HasChunk reports chunk presence.
func (m *MemBackend) HasChunk(id ID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.chunks[id]
	return ok
}

// Chunks lists every stored chunk ID.
func (m *MemBackend) Chunks() []ID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]ID, 0, len(m.chunks))
	for id := range m.chunks {
		out = append(out, id)
	}
	return out
}

// SetMapping records slot→id.
func (m *MemBackend) SetMapping(slot uint64, id ID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if slot >= uint64(len(m.table)) {
		return ErrFull
	}
	m.table[slot] = id
	return nil
}

// Mappings returns a copy of the slot table.
func (m *MemBackend) Mappings() ([]ID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]ID, len(m.table))
	copy(out, m.table)
	return out, nil
}

// CorruptChunk inverts the stored bytes of a chunk in place.
func (m *MemBackend) CorruptChunk(id ID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.chunks[id]
	if !ok {
		return ErrNoChunk
	}
	m.chunks[id] = flipped(data)
	return nil
}

// Close is a no-op for the in-memory backend.
func (m *MemBackend) Close() error { return nil }
