package faults

import (
	"sync"
	"time"

	"repro/internal/xerr"
)

// ErrDiskFull is the injected out-of-space failure a DiskFull quota
// surfaces once its byte budget is spent. It is classed Exhausted: callers
// must reclaim or release space before retrying.
var ErrDiskFull = xerr.New(xerr.Exhausted, "faults: injected disk full")

// DiskFull simulates a filesystem running out of space: a byte quota that
// write paths consume against and release back to as segments are
// reclaimed. Wire its Consume into a WAL's space check (wal.Options.Quota)
// to drive ENOSPC scenarios deterministically — no real disk filling, no
// tmpfs tricks, identical behavior under -race.
type DiskFull struct {
	mu    sync.Mutex
	quota uint64
	used  uint64
}

// NewDiskFull builds a quota of the given byte budget. A zero budget means
// every consume fails — a disk that is full from the start.
func NewDiskFull(quota uint64) *DiskFull {
	return &DiskFull{quota: quota}
}

// Consume charges n bytes against the quota, returning ErrDiskFull (and
// charging nothing) when the budget can't cover it.
func (d *DiskFull) Consume(n uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.used+n > d.quota {
		return ErrDiskFull
	}
	d.used += n
	return nil
}

// Release returns n bytes to the budget — the reclaim half, called when a
// segment is deleted or a chunk slot freed.
func (d *DiskFull) Release(n uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n > d.used {
		n = d.used
	}
	d.used -= n
}

// Grow widens the quota by n bytes: "the operator added disk", the pressure-
// release step overload scenarios end with.
func (d *DiskFull) Grow(n uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.quota += n
}

// Used reports the bytes currently charged.
func (d *DiskFull) Used() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// SlowBackend is a token-bucket pacer that turns a healthy component into a
// brownout: each operation of n bytes must draw n tokens, and the bucket
// refills at Rate bytes/sec up to Burst. Callers sleep for the returned
// duration before proceeding, so a wrapped backend answers correctly but
// slowly — the "1 slow of 3" scenario where nothing is down yet everything
// is late. The zero value is a no-op pacer (Delay always 0).
type SlowBackend struct {
	mu     sync.Mutex
	rate   float64 // tokens (bytes) per second
	burst  float64
	tokens float64
	last   time.Time
}

// NewSlowBackend builds a pacer refilling at rate bytes/sec with the given
// burst ceiling. rate <= 0 disables pacing.
func NewSlowBackend(rate float64, burst float64) *SlowBackend {
	if burst < 1 {
		burst = 1
	}
	return &SlowBackend{rate: rate, burst: burst, tokens: burst}
}

// Delay draws n tokens and returns how long the caller must wait for the
// bucket to cover the draw. The bucket may go negative — that debt delays
// subsequent callers, which is exactly how a saturated device behaves.
func (p *SlowBackend) Delay(n int) time.Duration {
	if p == nil || p.rate <= 0 || n <= 0 {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	if !p.last.IsZero() {
		p.tokens += now.Sub(p.last).Seconds() * p.rate
		if p.tokens > p.burst {
			p.tokens = p.burst
		}
	}
	p.last = now
	p.tokens -= float64(n)
	if p.tokens >= 0 {
		return 0
	}
	return time.Duration(-p.tokens / p.rate * float64(time.Second))
}

// Pace draws n tokens and sleeps out the resulting delay — the convenience
// wrapper slow-backend injection sites call inline.
func (p *SlowBackend) Pace(n int) {
	if d := p.Delay(n); d > 0 {
		time.Sleep(d)
	}
}

// RetryBudget caps how much retrying a recovery loop may do before it gives
// up, replacing retry-forever loops: each failure spends one attempt, and a
// success refunds the budget to full (errors must be consecutive to
// exhaust it). Safe for concurrent use.
type RetryBudget struct {
	mu      sync.Mutex
	max     int
	left    int
	backoff *Backoff
}

// NewRetryBudget allows max consecutive failed attempts, with backoff
// spacing them (may be nil for no delay guidance).
func NewRetryBudget(max int, backoff *Backoff) *RetryBudget {
	if max < 1 {
		max = 1
	}
	return &RetryBudget{max: max, left: max, backoff: backoff}
}

// Spend consumes one attempt after a failure. It returns the jittered delay
// to wait before the next try and ok=false when the budget is exhausted —
// the caller must stop retrying and surface the error.
func (r *RetryBudget) Spend() (delay time.Duration, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.left <= 0 {
		return 0, false
	}
	r.left--
	attempt := r.max - r.left - 1
	if r.left == 0 {
		return 0, false
	}
	if r.backoff != nil {
		delay = r.backoff.Delay(attempt)
	}
	return delay, true
}

// Refund restores the full budget after a success — only consecutive
// failures exhaust it.
func (r *RetryBudget) Refund() {
	r.mu.Lock()
	r.left = r.max
	r.mu.Unlock()
}

// Left reports the remaining attempts.
func (r *RetryBudget) Left() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.left
}
