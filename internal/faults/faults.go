// Package faults provides the shared plumbing for deterministic failure
// injection across the data path: a logical-event schedule that fires faults
// at exact points in a workload (never at wall-clock times, so chaos runs
// replay identically under -race and on loaded machines), and a capped
// exponential backoff with seeded jitter used by every reconnect loop
// (initiator redial, write-back reopen, replica probing).
//
// The schedule's clock is the workload itself: each data-path event of
// interest (an I/O admitted, a command issued) calls Step, and triggers
// registered At a tick run when the clock reaches them. Components under
// test expose fault controls (netsim's CutHost/CutLink, blockdev's
// FaultDisk.Trip/Heal, volume.InjectFault); tests bind those controls to
// schedule ticks.
package faults

import (
	"math/rand"
	"sync"
	"time"
)

// trigger is one scheduled fault action.
type trigger struct {
	at   uint64
	name string
	fn   func()
}

// Schedule fires registered actions at logical ticks. The zero tick is
// "before any event"; the first Step advances the clock to 1. Safe for
// concurrent use: concurrent steppers serialize, and each due trigger runs
// exactly once, outside the schedule lock.
type Schedule struct {
	mu    sync.Mutex
	now   uint64
	trig  []trigger
	fired []string
}

// NewSchedule creates an empty schedule at tick 0.
func NewSchedule() *Schedule { return &Schedule{} }

// At registers fn to run when the clock reaches tick. Triggers sharing a
// tick run in registration order. Registering a tick the clock has already
// passed runs the trigger on the next Step.
func (s *Schedule) At(tick uint64, name string, fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.trig = append(s.trig, trigger{at: tick, name: name, fn: fn})
}

// Step advances the clock by one event and runs every due trigger.
func (s *Schedule) Step() {
	s.mu.Lock()
	s.now++
	now := s.now
	var due []trigger
	w := 0
	for _, t := range s.trig {
		if t.at <= now {
			due = append(due, t)
			s.fired = append(s.fired, t.name)
		} else {
			s.trig[w] = t
			w++
		}
	}
	s.trig = s.trig[:w]
	s.mu.Unlock()
	for _, t := range due {
		t.fn()
	}
}

// Now returns the current logical tick.
func (s *Schedule) Now() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Fired returns the names of triggers that have run, in firing order.
func (s *Schedule) Fired() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.fired...)
}

// CrashPoint derives a deterministic logical tick in [lo, hi) from a seed:
// the arbitrary-but-reproducible "kill the process here" point crash tests
// sweep. Distinct seeds spread across the range; the same seed always
// lands on the same tick.
func CrashPoint(seed int64, lo, hi uint64) uint64 {
	if hi <= lo {
		return lo
	}
	rng := rand.New(rand.NewSource(seed))
	return lo + uint64(rng.Int63n(int64(hi-lo)))
}

// Crash registers kill on sched at a seed-chosen tick in [lo, hi) and
// returns the chosen tick. The kill runs mid-workload, after the event
// that advances the clock to the tick — a process dying between two
// acknowledged operations.
func Crash(sched *Schedule, seed int64, lo, hi uint64, kill func()) uint64 {
	tick := CrashPoint(seed, lo, hi)
	sched.At(tick, "crash", kill)
	return tick
}

// Backoff computes capped exponential delays with deterministic jitter:
// attempt n waits in [d/2, d) where d = min(Base·2ⁿ, Cap), the half-range
// drawn from a seeded generator so a given seed always produces the same
// delay sequence. The zero value is unusable; construct with NewBackoff.
type Backoff struct {
	base time.Duration
	cap  time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewBackoff builds a backoff policy. base is the attempt-0 delay, cap the
// ceiling; seed fixes the jitter sequence.
func NewBackoff(base, cap time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = time.Millisecond
	}
	if cap < base {
		cap = base
	}
	return &Backoff{base: base, cap: cap, rng: rand.New(rand.NewSource(seed))}
}

// Delay returns the wait before retry attempt (0-based).
func (b *Backoff) Delay(attempt int) time.Duration {
	d := b.base
	for i := 0; i < attempt && d < b.cap; i++ {
		d *= 2
	}
	if d > b.cap {
		d = b.cap
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	b.mu.Lock()
	j := time.Duration(b.rng.Int63n(int64(half)))
	b.mu.Unlock()
	return half + j
}
