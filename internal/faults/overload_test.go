package faults

import (
	"errors"
	"testing"
	"time"

	"repro/internal/xerr"
)

func TestDiskFullQuota(t *testing.T) {
	d := NewDiskFull(100)
	if err := d.Consume(60); err != nil {
		t.Fatalf("consume 60/100: %v", err)
	}
	if err := d.Consume(50); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("consume past quota: got %v, want ErrDiskFull", err)
	}
	if got := d.Used(); got != 60 {
		t.Fatalf("failed consume charged bytes: used = %d, want 60", got)
	}
	if xerr.Classify(ErrDiskFull) != xerr.Exhausted {
		t.Fatal("ErrDiskFull must be classed Exhausted")
	}
	// Release is the reclaim path: freed space makes the write admit again.
	d.Release(30)
	if err := d.Consume(50); err != nil {
		t.Fatalf("consume after release: %v", err)
	}
	// Grow is the pressure-release step.
	if err := d.Consume(100); err == nil {
		t.Fatal("expected full")
	}
	d.Grow(100)
	if err := d.Consume(100); err != nil {
		t.Fatalf("consume after grow: %v", err)
	}
}

func TestDiskFullReleaseClamps(t *testing.T) {
	d := NewDiskFull(10)
	if err := d.Consume(5); err != nil {
		t.Fatal(err)
	}
	d.Release(500)
	if got := d.Used(); got != 0 {
		t.Fatalf("release over-refunded: used = %d", got)
	}
}

func TestSlowBackendPaces(t *testing.T) {
	// 1 MiB/s with a 4 KiB burst: the first 4 KiB is free, the next draws
	// debt worth ~4ms.
	p := NewSlowBackend(1<<20, 4096)
	if d := p.Delay(4096); d != 0 {
		t.Fatalf("burst draw delayed %v, want 0", d)
	}
	d := p.Delay(4096)
	if d < time.Millisecond || d > 100*time.Millisecond {
		t.Fatalf("post-burst delay %v outside sane range", d)
	}
}

func TestSlowBackendZeroDisabled(t *testing.T) {
	var p *SlowBackend
	if d := p.Delay(1 << 20); d != 0 {
		t.Fatalf("nil pacer delayed %v", d)
	}
	p2 := NewSlowBackend(0, 0)
	if d := p2.Delay(1 << 20); d != 0 {
		t.Fatalf("rate-0 pacer delayed %v", d)
	}
}

func TestRetryBudgetExhaustsOnConsecutiveFailures(t *testing.T) {
	r := NewRetryBudget(3, NewBackoff(time.Millisecond, 8*time.Millisecond, 1))
	var spends int
	for {
		_, ok := r.Spend()
		spends++
		if !ok {
			break
		}
	}
	if spends != 3 {
		t.Fatalf("budget allowed %d spends, want 3", spends)
	}
	if _, ok := r.Spend(); ok {
		t.Fatal("exhausted budget granted another attempt")
	}
	// A success refunds in full.
	r.Refund()
	if r.Left() != 3 {
		t.Fatalf("refund left %d, want 3", r.Left())
	}
}
