package faults

import (
	"sync"
	"testing"
	"time"
)

func TestScheduleFiresAtExactTicks(t *testing.T) {
	s := NewSchedule()
	var got []uint64
	s.At(3, "cut", func() { got = append(got, s.Now()) })
	s.At(5, "heal", func() { got = append(got, s.Now()) })
	for i := 0; i < 10; i++ {
		s.Step()
	}
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("triggers fired at %v, want [3 5]", got)
	}
	if f := s.Fired(); len(f) != 2 || f[0] != "cut" || f[1] != "heal" {
		t.Errorf("Fired() = %v", f)
	}
}

func TestScheduleSameTickRunsInRegistrationOrder(t *testing.T) {
	s := NewSchedule()
	var order []string
	s.At(2, "a", func() { order = append(order, "a") })
	s.At(2, "b", func() { order = append(order, "b") })
	s.Step()
	s.Step()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v, want [a b]", order)
	}
}

func TestSchedulePastTickFiresOnNextStep(t *testing.T) {
	s := NewSchedule()
	s.Step()
	s.Step()
	fired := false
	s.At(1, "late", func() { fired = true })
	if fired {
		t.Fatal("trigger ran before any Step")
	}
	s.Step()
	if !fired {
		t.Fatal("past-tick trigger never fired")
	}
}

func TestScheduleConcurrentSteppersFireOnce(t *testing.T) {
	s := NewSchedule()
	var mu sync.Mutex
	count := 0
	s.At(50, "once", func() { mu.Lock(); count++; mu.Unlock() })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				s.Step()
			}
		}()
	}
	wg.Wait()
	if count != 1 {
		t.Fatalf("trigger fired %d times, want 1", count)
	}
	if s.Now() != 200 {
		t.Errorf("Now() = %d, want 200", s.Now())
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	a := NewBackoff(time.Millisecond, 50*time.Millisecond, 42)
	b := NewBackoff(time.Millisecond, 50*time.Millisecond, 42)
	for i := 0; i < 10; i++ {
		if da, db := a.Delay(i), b.Delay(i); da != db {
			t.Fatalf("attempt %d: seeds diverge (%v vs %v)", i, da, db)
		}
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	b := NewBackoff(time.Millisecond, 8*time.Millisecond, 1)
	for i := 0; i < 20; i++ {
		d := b.Delay(i)
		want := time.Millisecond << i
		if want > 8*time.Millisecond || want <= 0 {
			want = 8 * time.Millisecond
		}
		if d < want/2 || d >= want {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", i, d, want/2, want)
		}
	}
}

func TestBackoffDefaults(t *testing.T) {
	b := NewBackoff(0, -1, 1)
	if d := b.Delay(0); d <= 0 {
		t.Errorf("zero-base backoff returned %v", d)
	}
}
