// Package cloud assembles the mini-IaaS of Figure 1: compute hosts running
// tenant VMs, a storage host running the volume service, the two isolated
// networks, the SDN controller, and the StorM splice plane. It provides the
// raw infrastructure operations (launch VM, create/attach volume, launch
// middle-box) that the StorM platform (internal/core) orchestrates.
package cloud

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blockdev"
	"repro/internal/initiator"
	"repro/internal/metrics"
	"repro/internal/middlebox"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sdn"
	"repro/internal/splice"
	"repro/internal/target"
	"repro/internal/volume"
)

// Config sizes the cloud.
type Config struct {
	// ComputeHosts is the number of compute hosts (default 4). Host 1 is
	// named compute1, etc.; every compute host has NICs on both networks.
	ComputeHosts int
	// Model is the fabric cost model (netsim.DefaultModel when zero).
	Model netsim.Model
	// DiskRead / DiskWrite are the storage medium models for volumes.
	DiskRead  blockdev.ServiceModel
	DiskWrite blockdev.ServiceModel
	// DiskConcurrency bounds concurrent medium accesses per volume.
	DiskConcurrency int
}

// VM is a tenant virtual machine.
type VM struct {
	Name     string
	Host     string
	Endpoint *netsim.Endpoint
}

// MiddleBox is a provisioned storage middle-box VM.
type MiddleBox struct {
	Name       string
	Host       string
	Mode       middlebox.Mode
	Endpoint   *netsim.Endpoint
	Relay      *middlebox.Relay
	RelayAddr  netsim.Addr
	InstanceIP string
	listener   *netsim.Listener
}

// Close stops the middle-box's relay.
func (m *MiddleBox) Close() {
	_ = m.listener.Close()
	m.Relay.Close()
}

// guestShards stripes the cloud's guest registries so concurrent tenants
// launching and removing VMs/middle-boxes hash to different locks.
const guestShards = 16

// guestShard is one stripe of the name→guest maps.
type guestShard struct {
	mu  sync.Mutex
	vms map[string]*VM
	mbs map[string]*MiddleBox
}

// Cloud is the assembled infrastructure.
type Cloud struct {
	Fabric     *netsim.Fabric
	Controller *sdn.Controller
	Plane      *splice.Plane
	Volumes    *volume.Service

	storageHost *netsim.Host
	computes    []*netsim.Host // immutable after New

	shards   [guestShards]guestShard
	nextIP   atomic.Int64
	nextHost atomic.Int64

	// hostLoad counts guests per compute host so placement is O(hosts)
	// instead of a scan over every guest in the cloud.
	loadMu   sync.Mutex
	hostLoad map[string]int
}

// shard returns the stripe owning a guest name (FNV-1a).
func (c *Cloud) shard(name string) *guestShard {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return &c.shards[h%guestShards]
}

// New builds the cloud.
func New(cfg Config) (*Cloud, error) {
	if cfg.ComputeHosts <= 0 {
		cfg.ComputeHosts = 4
	}
	model := cfg.Model
	if model.MTU == 0 {
		model = netsim.DefaultModel()
	}
	fabric := netsim.NewFabric(model)
	c := &Cloud{
		Fabric:     fabric,
		Controller: sdn.NewController(),
		hostLoad:   make(map[string]int),
	}
	for i := range c.shards {
		c.shards[i].vms = make(map[string]*VM)
		c.shards[i].mbs = make(map[string]*MiddleBox)
	}
	for i := 1; i <= cfg.ComputeHosts; i++ {
		h, err := fabric.AddHost(fmt.Sprintf("compute%d", i), map[netsim.Network]string{
			netsim.StorageNet:  fmt.Sprintf("10.0.0.%d", i),
			netsim.InstanceNet: fmt.Sprintf("192.168.0.%d", i),
		})
		if err != nil {
			return nil, err
		}
		c.computes = append(c.computes, h)
	}
	sh, err := fabric.AddHost("storage1", map[netsim.Network]string{
		netsim.StorageNet: "10.0.0.100",
	})
	if err != nil {
		return nil, err
	}
	c.storageHost = sh

	c.Plane = splice.NewPlane(fabric, c.Controller)

	vs, err := volume.NewService(sh.NewEndpoint("cinder-tgtd"), volume.Config{
		DiskRead:        cfg.DiskRead,
		DiskWrite:       cfg.DiskWrite,
		DiskConcurrency: cfg.DiskConcurrency,
		LoginHook: func(info target.LoginInfo) {
			c.Plane.Attributions().RecordLogin(info.TargetIQN, info.SourcePort)
		},
	})
	if err != nil {
		return nil, err
	}
	c.Volumes = vs
	return c, nil
}

// Close tears the cloud down.
func (c *Cloud) Close() {
	var mbs []*MiddleBox
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, mb := range sh.mbs {
			mbs = append(mbs, mb)
		}
		sh.mu.Unlock()
	}
	for _, mb := range mbs {
		mb.Close()
	}
	c.Volumes.Close()
}

// ComputeHosts lists the compute host names.
func (c *Cloud) ComputeHosts() []string {
	out := make([]string, len(c.computes))
	for i, h := range c.computes {
		out[i] = h.Name()
	}
	return out
}

// StorageHost returns the storage host name.
func (c *Cloud) StorageHost() string { return c.storageHost.Name() }

// HostCPU returns a host's CPU account.
func (c *Cloud) HostCPU(host string) *metrics.CPUAccount {
	h := c.Fabric.Host(host)
	if h == nil {
		return nil
	}
	return h.CPU()
}

// allocIP hands out instance-network guest addresses: 192.168.100.1 and
// up, spilling into the next third octet every 254 guests. The range is
// disjoint from compute-host NICs (192.168.0.x) and the platform's gateway
// space (192.168.20.x–63.x); netsim treats addresses as opaque strings, so
// a third octet past 255 stays unique even at million-guest scale.
func (c *Cloud) allocIP() string {
	n := c.nextIP.Add(1) - 1
	return fmt.Sprintf("192.168.%d.%d", 100+n/254, 1+n%254)
}

// pickHost round-robins compute hosts when the caller does not care.
func (c *Cloud) pickHost() string {
	n := c.nextHost.Add(1) - 1
	return c.computes[int(n)%len(c.computes)].Name()
}

// PlaceHosts picks n compute hosts for a middle-box group, spreading the
// members across the least-loaded hosts (guests already placed count as
// load) so a scaled group doesn't stack its instances on one machine.
func (c *Cloud) PlaceHosts(n int) []string {
	return c.PlaceHostsAvoiding(n, nil)
}

// PlaceHostsAvoiding is PlaceHosts with a deny-list: hosts in avoid are
// skipped unless nothing else exists. Crash recovery uses it to place a
// replacement instance away from the machine that just took its
// predecessor down.
func (c *Cloud) PlaceHostsAvoiding(n int, avoid map[string]bool) []string {
	load := make(map[string]int, len(c.computes))
	c.loadMu.Lock()
	for h, v := range c.hostLoad {
		load[h] = v
	}
	c.loadMu.Unlock()
	candidates := make([]*netsim.Host, 0, len(c.computes))
	for _, h := range c.computes {
		if !avoid[h.Name()] {
			candidates = append(candidates, h)
		}
	}
	if len(candidates) == 0 {
		candidates = c.computes // single-host cloud: nowhere else to go
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		best := ""
		for _, h := range candidates {
			if best == "" || load[h.Name()] < load[best] {
				best = h.Name()
			}
		}
		load[best]++
		out = append(out, best)
	}
	return out
}

// addLoad moves a host's guest count by d (negative on guest removal).
func (c *Cloud) addLoad(host string, d int) {
	c.loadMu.Lock()
	c.hostLoad[host] += d
	if c.hostLoad[host] <= 0 {
		delete(c.hostLoad, host)
	}
	c.loadMu.Unlock()
}

// LaunchVM boots a tenant VM on the named compute host ("" picks one).
func (c *Cloud) LaunchVM(name, host string) (*VM, error) {
	if host == "" {
		host = c.pickHost()
	}
	h := c.Fabric.Host(host)
	if h == nil {
		return nil, fmt.Errorf("cloud: unknown host %q", host)
	}
	sh := c.shard(name)
	sh.mu.Lock()
	if _, ok := sh.vms[name]; ok {
		sh.mu.Unlock()
		return nil, fmt.Errorf("cloud: VM %q already exists", name)
	}
	sh.mu.Unlock()
	ep, err := h.NewGuest(name, c.allocIP())
	if err != nil {
		return nil, err
	}
	vm := &VM{Name: name, Host: host, Endpoint: ep}
	sh.mu.Lock()
	sh.vms[name] = vm
	sh.mu.Unlock()
	c.addLoad(host, 1)
	return vm, nil
}

// VM returns a launched VM by name.
func (c *Cloud) VM(name string) (*VM, error) {
	sh := c.shard(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	vm, ok := sh.vms[name]
	if !ok {
		return nil, fmt.Errorf("cloud: unknown VM %q", name)
	}
	return vm, nil
}

// AttachVolume attaches a volume to a VM over the legacy direct path (no
// middle-boxes) and returns the VM-side block device. The attribution
// table records both halves of the binding.
func (c *Cloud) AttachVolume(vm *VM, volID string) (*initiator.Device, error) {
	vol, err := c.Volumes.Get(volID)
	if err != nil {
		return nil, err
	}
	if err := c.Volumes.MarkAttached(volID, vm.Name); err != nil {
		return nil, err
	}
	dev, err := c.loginAndOpen(vm.Endpoint, vm.Name, vol.IQN)
	if err != nil {
		_ = c.Volumes.MarkDetached(volID)
		return nil, err
	}
	c.Plane.Attributions().RecordAttachment(vm.Name, vol.IQN)
	return dev, nil
}

// loginAndOpen dials the volume service and opens the device.
func (c *Cloud) loginAndOpen(ep *netsim.Endpoint, vmName, iqn string) (*initiator.Device, error) {
	conn, err := ep.DialAddr(c.Volumes.TargetAddr())
	if err != nil {
		return nil, err
	}
	sess, err := initiator.Login(conn, initiator.Config{
		InitiatorIQN: "iqn.2016-04.edu.purdue.storm:init:" + vmName,
		TargetIQN:    iqn,
		AttachedVM:   vmName,
		Obs:          obs.Default(),
	})
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	dev, err := initiator.OpenDevice(sess)
	if err != nil {
		_ = sess.Close()
		return nil, err
	}
	return dev, nil
}

// DetachVolume releases the attachment bookkeeping (the device should be
// closed by the caller).
func (c *Cloud) DetachVolume(volID string) error {
	vol, err := c.Volumes.Get(volID)
	if err != nil {
		return err
	}
	c.Plane.Attributions().RemoveAttachment(vol.IQN)
	return c.Volumes.MarkDetached(volID)
}

// ErrNoSuchMiddleBox reports an unknown middle-box name.
var ErrNoSuchMiddleBox = errors.New("cloud: no such middle-box")

// MBSpec describes a middle-box to provision.
type MBSpec struct {
	Name string
	// Host pins placement ("" picks round-robin).
	Host string
	Mode middlebox.Mode
	// BuildServices constructs the tenant service chain once the
	// middle-box VM exists (so factories can use its network identity,
	// e.g. to attach replica volumes). May be nil.
	BuildServices func(mb *MiddleBox) ([]middlebox.ServiceFactory, error)
	// JournalCapacity bounds the active relay's NVRAM buffer.
	JournalCapacity int
	// JournalDir, when set, gives the relay a crash-durable journal: a
	// per-session WAL under this directory that survives CrashMiddleBox
	// and can be replayed by a replacement via Relay.RecoverFrom.
	JournalDir string
	// JournalSyncWindow is the durable journal's group-commit fsync window
	// (0 = sync every append).
	JournalSyncWindow time.Duration
	// Cost is the relay's interception cost model; a zero model keeps the
	// relay's defaults. CopyThreads in particular sizes the instance's
	// concurrent copy paths (its per-instance throughput ceiling).
	Cost middlebox.CostModel
	// ForwardConns widens the relay's downstream (pseudo-client) leg to
	// this many MC/S connections (default 1).
	ForwardConns int
}

// LaunchMiddleBox provisions a middle-box VM running a relay with the given
// service chain. Its relay listens inside the tenant network space and is
// isolated from tenant VMs.
func (c *Cloud) LaunchMiddleBox(spec MBSpec) (*MiddleBox, error) {
	name, host := spec.Name, spec.Host
	if host == "" {
		host = c.pickHost()
	}
	h := c.Fabric.Host(host)
	if h == nil {
		return nil, fmt.Errorf("cloud: unknown host %q", host)
	}
	ip := c.allocIP()
	ep, err := h.NewGuest(name, ip)
	if err != nil {
		return nil, err
	}
	mb := &MiddleBox{
		Name:       name,
		Host:       host,
		Mode:       spec.Mode,
		Endpoint:   ep,
		InstanceIP: ip,
	}
	var services []middlebox.ServiceFactory
	if spec.BuildServices != nil {
		if services, err = spec.BuildServices(mb); err != nil {
			return nil, fmt.Errorf("cloud: build services for %q: %w", name, err)
		}
	}
	relay, err := middlebox.NewRelay(middlebox.Config{
		Name:              name,
		Mode:              spec.Mode,
		Endpoint:          ep,
		Services:          services,
		JournalCapacity:   spec.JournalCapacity,
		JournalDir:        spec.JournalDir,
		JournalSyncWindow: spec.JournalSyncWindow,
		Cost:              spec.Cost,
		ForwardConns:      spec.ForwardConns,
		CPU:               h.CPU(),
		Obs:               obs.Default(),
	})
	if err != nil {
		return nil, err
	}
	addr := netsim.Addr{Net: netsim.InstanceNet, IP: ip, Port: 3260}
	ln, err := ep.ListenAddr(addr)
	if err != nil {
		return nil, err
	}
	go relay.Serve(ln)
	if err := c.Plane.RegisterMB(splice.MBInfo{Name: name, Host: host, InstanceIP: ip}); err != nil {
		_ = ln.Close()
		relay.Close()
		return nil, err
	}
	mb.Relay = relay
	mb.RelayAddr = addr
	mb.listener = ln
	sh := c.shard(name)
	sh.mu.Lock()
	sh.mbs[name] = mb
	sh.mu.Unlock()
	c.addLoad(host, 1)
	return mb, nil
}

// MiddleBox returns a launched middle-box by name.
func (c *Cloud) MiddleBox(name string) (*MiddleBox, error) {
	sh := c.shard(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	mb, ok := sh.mbs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchMiddleBox, name)
	}
	return mb, nil
}

// RemoveMiddleBox tears down a middle-box VM: the relay stops, the splice
// plane forgets the station, and the host releases the guest's address so
// the slot can be reused. The orchestrator calls this only after the
// instance has drained (no sessions, empty journal) — tearing down a live
// instance severs its established connections.
func (c *Cloud) RemoveMiddleBox(name string) error {
	sh := c.shard(name)
	sh.mu.Lock()
	mb, ok := sh.mbs[name]
	if ok {
		delete(sh.mbs, name)
	}
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchMiddleBox, name)
	}
	mb.Close()
	c.Plane.UnregisterMB(name)
	if h := c.Fabric.Host(mb.Host); h != nil {
		h.RemoveGuest(mb.InstanceIP)
	}
	c.addLoad(mb.Host, -1)
	return nil
}

// CrashMiddleBox simulates the middle-box VM dying: the relay crash-stops
// (journals freeze, appliers halt, sessions sever — see Relay.Kill), the
// splice plane forgets the station, and the host reclaims the guest slot.
// Unlike RemoveMiddleBox there is no drain: acknowledged-but-unapplied
// writes survive only in the relay's durable journal directory, which is
// deliberately left on disk for a replacement instance to recover.
func (c *Cloud) CrashMiddleBox(name string) error {
	sh := c.shard(name)
	sh.mu.Lock()
	mb, ok := sh.mbs[name]
	if ok {
		delete(sh.mbs, name)
	}
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchMiddleBox, name)
	}
	obs.Default().Eventf("cloud", "middle-box %s crashed on %s", name, mb.Host)
	mb.Relay.Kill()
	_ = mb.listener.Close()
	c.Plane.UnregisterMB(name)
	if h := c.Fabric.Host(mb.Host); h != nil {
		h.RemoveGuest(mb.InstanceIP)
	}
	c.addLoad(mb.Host, -1)
	return nil
}

// MBAttachVolume attaches a volume directly to a middle-box VM over the
// storage network (the replica service's backup volumes).
func (c *Cloud) MBAttachVolume(mb *MiddleBox, volID string) (*initiator.Device, error) {
	vol, err := c.Volumes.Get(volID)
	if err != nil {
		return nil, err
	}
	if err := c.Volumes.MarkAttached(volID, mb.Name); err != nil {
		return nil, err
	}
	dev, err := c.loginAndOpen(mb.Endpoint, mb.Name, vol.IQN)
	if err != nil {
		_ = c.Volumes.MarkDetached(volID)
		return nil, err
	}
	return dev, nil
}
