package cloud

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/middlebox"
	"repro/internal/netsim"
	"repro/internal/services/crypt"
)

func fastCloud(t *testing.T) *Cloud {
	t.Helper()
	model := netsim.Model{MTU: 8192, Bandwidth: 1 << 33,
		Latency: map[netsim.HopKind]time.Duration{}, PerPacket: map[netsim.HopKind]time.Duration{}}
	c, err := New(Config{ComputeHosts: 3, Model: model})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestTopology(t *testing.T) {
	c := fastCloud(t)
	hosts := c.ComputeHosts()
	if len(hosts) != 3 || hosts[0] != "compute1" {
		t.Errorf("ComputeHosts = %v", hosts)
	}
	if c.StorageHost() != "storage1" {
		t.Errorf("StorageHost = %q", c.StorageHost())
	}
	if c.HostCPU("compute1") == nil {
		t.Error("no CPU account for compute1")
	}
	if c.HostCPU("nope") != nil {
		t.Error("CPU account for unknown host")
	}
}

func TestLaunchVM(t *testing.T) {
	c := fastCloud(t)
	vm, err := c.LaunchVM("vm1", "compute2")
	if err != nil {
		t.Fatalf("LaunchVM: %v", err)
	}
	if vm.Host != "compute2" {
		t.Errorf("Host = %q", vm.Host)
	}
	if _, err := c.LaunchVM("vm1", ""); err == nil {
		t.Error("duplicate VM accepted")
	}
	if _, err := c.LaunchVM("vm2", "atlantis"); err == nil {
		t.Error("unknown host accepted")
	}
	got, err := c.VM("vm1")
	if err != nil || got != vm {
		t.Errorf("VM() = %v, %v", got, err)
	}
	if _, err := c.VM("ghost"); err == nil {
		t.Error("unknown VM lookup succeeded")
	}
	// Round-robin placement when host is unspecified.
	vm2, err := c.LaunchVM("vm2", "")
	if err != nil || vm2.Host == "" {
		t.Errorf("auto placement failed: %v, %v", vm2, err)
	}
}

func TestAttachDetachVolume(t *testing.T) {
	c := fastCloud(t)
	vm, err := c.LaunchVM("vm1", "")
	if err != nil {
		t.Fatal(err)
	}
	vol, err := c.Volumes.Create("data", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := c.AttachVolume(vm, vol.ID)
	if err != nil {
		t.Fatalf("AttachVolume: %v", err)
	}
	want := bytes.Repeat([]byte{1}, 512)
	if err := dev.WriteAt(want, 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	// Attribution recorded.
	if b, ok := c.Plane.Attributions().ByIQN(vol.IQN); !ok || !b.Complete() {
		t.Errorf("attribution = %+v, %v", b, ok)
	}
	_ = dev.Close()
	if err := c.DetachVolume(vol.ID); err != nil {
		t.Fatalf("DetachVolume: %v", err)
	}
	if _, ok := c.Plane.Attributions().ByIQN(vol.IQN); ok {
		t.Error("attribution survives detach")
	}
	// The volume can be attached again.
	dev2, err := c.AttachVolume(vm, vol.ID)
	if err != nil {
		t.Fatalf("re-attach: %v", err)
	}
	got := make([]byte, 512)
	if err := dev2.ReadAt(got, 0); err != nil || !bytes.Equal(got, want) {
		t.Errorf("data lost across detach: %v", err)
	}
	_ = dev2.Close()
}

func TestLaunchMiddleBoxAndDataPath(t *testing.T) {
	c := fastCloud(t)
	key := make([]byte, 32)
	mb, err := c.LaunchMiddleBox(MBSpec{
		Name: "mb1",
		Mode: middlebox.Active,
		BuildServices: func(m *MiddleBox) ([]middlebox.ServiceFactory, error) {
			if m.Name != "mb1" || m.Endpoint == nil {
				t.Errorf("builder got %+v", m)
			}
			return []middlebox.ServiceFactory{crypt.Service(key, crypt.CostModel{})}, nil
		},
	})
	if err != nil {
		t.Fatalf("LaunchMiddleBox: %v", err)
	}
	if mb.RelayAddr.IsZero() || mb.InstanceIP == "" {
		t.Errorf("mb = %+v", mb)
	}
	got, err := c.MiddleBox("mb1")
	if err != nil || got != mb {
		t.Errorf("MiddleBox() = %v, %v", got, err)
	}
	if _, err := c.MiddleBox("ghost"); !errors.Is(err, ErrNoSuchMiddleBox) {
		t.Errorf("unknown MB err = %v", err)
	}
	// Duplicate name fails (instance IP and registration conflicts).
	if _, err := c.LaunchMiddleBox(MBSpec{Name: "mb1", Mode: middlebox.Active}); err == nil {
		t.Error("duplicate MB accepted")
	}
}

func TestMBAttachVolume(t *testing.T) {
	c := fastCloud(t)
	mb, err := c.LaunchMiddleBox(MBSpec{Name: "mb1", Mode: middlebox.Active})
	if err != nil {
		t.Fatal(err)
	}
	vol, err := c.Volumes.Create("replica", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := c.MBAttachVolume(mb, vol.ID)
	if err != nil {
		t.Fatalf("MBAttachVolume: %v", err)
	}
	defer dev.Close()
	var _ blockdev.Device = dev
	if err := dev.WriteAt(make([]byte, 512), 0); err != nil {
		t.Errorf("WriteAt: %v", err)
	}
	got, _ := c.Volumes.Get(vol.ID)
	if got.AttachedTo != "mb1" {
		t.Errorf("AttachedTo = %q", got.AttachedTo)
	}
}
