package initiator

import (
	"bytes"
	"net"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/iscsi"
	"repro/internal/target"
)

const negIQN = "iqn.2016-04.edu.purdue.storm:neg"

// negSession builds an initiator<->target session over net.Pipe with
// explicit operational parameters on both sides, so tests can force
// pathological offers and watch them converge.
func negSession(t *testing.T, server, client iscsi.Params) *Session {
	t.Helper()
	dev, err := blockdev.NewMemDisk(512, 4096)
	if err != nil {
		t.Fatal(err)
	}
	srv := target.NewServer(target.WithParams(server))
	if err := srv.AddTarget(negIQN, dev); err != nil {
		t.Fatal(err)
	}
	ln := newChanListener()
	go srv.Serve(ln)
	t.Cleanup(srv.Close)

	cc, sc := net.Pipe()
	select {
	case ln.conns <- sc:
	case <-ln.done:
		t.Fatal("listener closed")
	}
	sess, err := Login(cc, Config{
		InitiatorIQN: "iqn.neg-client", TargetIQN: negIQN, Params: client,
	})
	if err != nil {
		t.Fatalf("Login: %v", err)
	}
	t.Cleanup(func() { _ = sess.Close() })
	return sess
}

// TestNegotiationInterop is the negotiation interop matrix: deliberately
// awkward offers on either side — tiny MaxBurstLength, ImmediateData=No,
// FirstBurstLength exceeding MaxBurstLength — must converge to an RFC-legal
// parameter set (FirstBurst ≤ MaxBurst, min/AND/OR result functions), and
// the session must still complete a 1 MiB write through whatever burst
// shape was agreed.
func TestNegotiationInterop(t *testing.T) {
	def := iscsi.DefaultParams()
	cases := []struct {
		name           string
		server, client iscsi.Params
		// invariants on the negotiated result beyond the always-checked
		// RFC-legality rules
		wantMaxBurst  int
		wantImmediate bool
		wantInitR2T   bool
	}{
		{
			// A 4 KiB MaxBurst forces the 1 MiB write into 256 solicited
			// sequences; FirstBurst (256 KiB offered) must clamp down to it.
			name:          "tiny server MaxBurst",
			server:        iscsi.Params{MaxRecvDataSegmentLength: def.MaxRecvDataSegmentLength, FirstBurstLength: def.FirstBurstLength, MaxBurstLength: 4096, ImmediateData: true},
			client:        def,
			wantMaxBurst:  4096,
			wantImmediate: true,
		},
		{
			// ImmediateData is an AND function: the server's No wins and
			// every write byte must travel the R2T-solicited path.
			name:          "server refuses immediate data",
			server:        iscsi.Params{MaxRecvDataSegmentLength: def.MaxRecvDataSegmentLength, FirstBurstLength: def.FirstBurstLength, MaxBurstLength: def.MaxBurstLength, ImmediateData: false, InitialR2T: true},
			client:        def,
			wantMaxBurst:  def.MaxBurstLength,
			wantImmediate: false,
			wantInitR2T:   true,
		},
		{
			// The client offers FirstBurst > MaxBurst — illegal as a final
			// combination. The merge must clamp FirstBurst to MaxBurst on
			// both sides rather than propagate the broken pair.
			name:          "client FirstBurst exceeds MaxBurst",
			server:        def,
			client:        iscsi.Params{MaxRecvDataSegmentLength: def.MaxRecvDataSegmentLength, FirstBurstLength: 512 * 1024, MaxBurstLength: 8192, ImmediateData: true},
			wantMaxBurst:  8192,
			wantImmediate: true,
		},
		{
			// Everything hostile at once: tiny segments (many Data-Out PDUs
			// per burst), no immediate data, mandatory initial R2T.
			name:          "tiny segments, no immediate, forced R2T",
			server:        iscsi.Params{MaxRecvDataSegmentLength: 1024, FirstBurstLength: 2048, MaxBurstLength: 2048, ImmediateData: false, InitialR2T: true},
			client:        iscsi.Params{MaxRecvDataSegmentLength: 8192, FirstBurstLength: 1 << 20, MaxBurstLength: 512, ImmediateData: true},
			wantMaxBurst:  512,
			wantImmediate: false,
			wantInitR2T:   true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sess := negSession(t, tc.server, tc.client)
			got := sess.Params()

			// RFC-legality invariants that must hold for any converged set.
			if got.FirstBurstLength > got.MaxBurstLength {
				t.Errorf("negotiated FirstBurst %d > MaxBurst %d (RFC 7143 violation)", got.FirstBurstLength, got.MaxBurstLength)
			}
			if got.MaxRecvDataSegmentLength <= 0 || got.MaxBurstLength <= 0 || got.FirstBurstLength <= 0 {
				t.Errorf("negotiated non-positive lengths: %+v", got)
			}

			if got.MaxBurstLength != tc.wantMaxBurst {
				t.Errorf("MaxBurstLength = %d, want %d", got.MaxBurstLength, tc.wantMaxBurst)
			}
			if got.ImmediateData != tc.wantImmediate {
				t.Errorf("ImmediateData = %v, want %v", got.ImmediateData, tc.wantImmediate)
			}
			if got.InitialR2T != tc.wantInitR2T {
				t.Errorf("InitialR2T = %v, want %v", got.InitialR2T, tc.wantInitR2T)
			}

			// The agreed shape must actually carry data: a 1 MiB write is
			// large enough to exercise first-burst, R2T solicitation, and
			// segment chopping under every case above.
			want := make([]byte, 1<<20)
			for i := range want {
				want[i] = byte(i*13 + 7)
			}
			if err := sess.Write(0, want, 512); err != nil {
				t.Fatalf("1 MiB write: %v", err)
			}
			gotData, err := sess.Read(0, uint32(len(want)/512), 512)
			if err != nil {
				t.Fatalf("read-back: %v", err)
			}
			if !bytes.Equal(gotData, want) {
				t.Fatal("1 MiB read-back differs from written data")
			}
		})
	}
}
