// Package initiator implements the iSCSI initiator used by tenant VMs (and
// by the active-relay middle-box's pseudo-client): login with the StorM
// source-port exposure, tag-based multiplexing of outstanding commands,
// immediate data, R2T-solicited Data-Out sequences, and multi-connection
// sessions (MC/S) for parallel wire legs.
package initiator

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/iscsi"
	"repro/internal/obs"
	"repro/internal/scsi"
	"repro/internal/xerr"
)

// ErrTargetBusy reports a command completed with SCSI BUSY status: the
// target (or a relay in front of it) is shedding load and wants the command
// retried after backoff. Classed xerr.Overload, so xerr.Retryable holds.
var ErrTargetBusy = xerr.New(xerr.Overload, "initiator: target busy")

// Errors returned by session operations.
var (
	ErrSessionClosed = errors.New("initiator: session closed")
	ErrLoginFailed   = errors.New("initiator: login failed")
)

// transientErr marks a connection-level failure the session may heal from —
// by redialing, or by redistributing onto the session's surviving MC/S
// connections: the command that observed it is safe to reissue. Protocol
// violations and user-initiated closes are never wrapped, so they stay
// terminal.
type transientErr struct{ err error }

func (e *transientErr) Error() string { return "initiator: connection failure: " + e.err.Error() }
func (e *transientErr) Unwrap() error { return e.err }

// maxCmdAttempts bounds how many times one command is reissued across
// reconnects, so a target that repeatedly accepts a login and then wedges
// cannot trap a caller forever.
const maxCmdAttempts = 8

// maxConns caps the MC/S connection count per session.
const maxConns = 8

// Config describes the session to establish.
type Config struct {
	// InitiatorIQN names this initiator.
	InitiatorIQN string
	// TargetIQN names the volume's target.
	TargetIQN string
	// AttachedVM optionally carries the owning VM's name for StorM's
	// connection attribution.
	AttachedVM string
	// Params are the desired operational parameters (DefaultParams when
	// zero).
	Params iscsi.Params
	// QueueDepth bounds locally outstanding commands (default 32,
	// Open-iSCSI's node.session.queue_depth).
	QueueDepth int
	// Conns asks for a multi-connection session (MC/S) of this many
	// transports (default 1, capped at 8). Commands round-robin across the
	// connections with per-command allegiance while CmdSN stays on one
	// session-wide window. Requires DialConn for the extra transports; the
	// effective count is clamped by the negotiated MaxConnections.
	Conns int
	// DialConn dials one additional MC/S transport to the same portal.
	// Also used to re-establish a failed secondary connection.
	DialConn func() (net.Conn, error)
	// Obs optionally records per-command latency spans into the registry
	// under "stage.<Stage>.read" / "stage.<Stage>.write". Nil disables
	// tracing (no histogram work on the hot path).
	Obs *obs.Registry
	// Stage labels this session's spans (obs.StageInitiator when empty);
	// a relay's pseudo-client session uses its relay.forward stage.
	Stage string
	// Redial, when non-nil, re-establishes the transport after a
	// connection failure: the session redials, re-logs-in with capped
	// exponential backoff, and reissues the idempotent commands that were
	// in flight instead of failing every caller with ErrSessionClosed.
	// Nil keeps the legacy fail-fast behaviour.
	Redial func() (net.Conn, error)
	// MaxRedials bounds consecutive failed reconnect attempts per outage
	// before the session fails terminally (default 4).
	MaxRedials int
	// RedialBackoffBase and RedialBackoffCap shape the reconnect backoff:
	// attempt n waits in [d/2, d) with d = min(Base·2ⁿ, Cap). Defaults
	// 2ms / 100ms.
	RedialBackoffBase time.Duration
	RedialBackoffCap  time.Duration
	// RedialSeed fixes the backoff jitter sequence, keeping fault tests
	// deterministic.
	RedialSeed int64
	// CommandTimeout bounds each command round-trip. A command that
	// exceeds it declares the connection dead: with Redial set the session
	// reconnects and reissues it, otherwise the command and session fail.
	// Zero disables deadlines.
	CommandTimeout time.Duration
}

// pendingCmd tracks one outstanding command. The done channel is buffered
// with capacity 1 and receives exactly one completion signal (the completer
// deletes the command from the pending map under the session mutex before
// signalling, so no command can be signalled twice). sc is the connection
// the command was issued on — its allegiance: R2Ts and completions arrive
// there, and a failure of that connection fails exactly its commands.
type pendingCmd struct {
	buf    []byte // Data-In assembly for reads
	filled int
	r2t    chan *iscsi.R2T
	done   chan struct{}
	cmd    iscsi.SCSICommand // per-command frame scratch, reused via the pool
	sc     *sconn

	status byte
	sense  *scsi.Sense
	err    error
}

// pcPool recycles pendingCmds (with their channels) across commands, so
// steady-state command issue allocates neither tracking state nor channels.
var pcPool = sync.Pool{New: func() any {
	return &pendingCmd{done: make(chan struct{}, 1), r2t: make(chan *iscsi.R2T, 4)}
}}

// r2tPool recycles the R2T structs the read loop hands to waiting writers.
var r2tPool = sync.Pool{New: func() any { return new(iscsi.R2T) }}

func getPending() *pendingCmd {
	p := pcPool.Get().(*pendingCmd)
	p.buf = nil
	p.filled = 0
	p.status = 0
	p.sense = nil
	p.err = nil
	return p
}

// putPending returns p to the pool. Only call after the command's single
// completion signal has been consumed (or before it was ever registered):
// a command abandoned mid-flight may still be signalled by a concurrent
// connFailed, and pooling it then would leak that signal into the next user.
func putPending(p *pendingCmd) {
	p.buf = nil      // don't pin the caller's buffer while pooled
	p.cmd.Data = nil // likewise for the write payload
	p.sc = nil
	for {
		select {
		case r := <-p.r2t: // unconsumed R2Ts from an aborted write
			r2tPool.Put(r)
		default:
			pcPool.Put(p)
			return
		}
	}
}

// sconn is one transport of the session. conns[0] is the leading connection;
// the rest are MC/S secondaries. Each has its own send lock, wire scratch,
// read loop, and StatSN expectation — only the CmdSN window is shared.
type sconn struct {
	conn net.Conn
	cid  uint16

	writeMu sync.Mutex
	wirePDU iscsi.PDU // reusable encode target for outgoing PDUs, guarded by writeMu

	done chan struct{} // closed when this connection's read loop exits

	// dead and expStatSN are guarded by the session mutex.
	dead      bool
	expStatSN uint32
}

// Session is a logged-in iSCSI session. All methods are safe for concurrent
// use; multiple application threads share one session, as Fio threads share
// a volume connection in the paper's setup.
type Session struct {
	cfg  Config
	isid [6]byte

	mu          sync.Mutex
	conns       []*sconn // conns[0] is the leading connection
	rr          uint32   // round-robin cursor for connection allegiance
	gen         uint64   // bumped when the connection set is rebuilt
	wantConns   int      // negotiated MC/S width to maintain
	tsih        uint16
	params      iscsi.Params
	itt         uint32
	cmdSN       uint32
	pending     map[uint32]*pendingCmd
	closedErr   error
	recovering  bool
	recoverDone chan struct{} // closed when the in-progress recovery settles

	backoff *faults.Backoff
	sem     chan struct{}

	stage string // obs stage name for command spans ("initiator", "relay.<x>.forward")
}

// isidSeq distinguishes concurrent sessions from the same initiator: RFC
// 7143 keys a session by (InitiatorName, ISID, TargetName), so two live
// sessions must not share an ISID or the second login reinstates (kills)
// the first.
var isidSeq atomic.Uint32

func newISID() [6]byte {
	n := isidSeq.Add(1)
	return [6]byte{0x80, 0, byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)}
}

// doLogin runs the login handshake on conn: a leading login when tsih is
// zero, an MC/S join of connection cid otherwise. It returns the negotiated
// parameters, the target's initial StatSN, and the session's TSIH.
func doLogin(conn net.Conn, cfg Config, isid [6]byte, tsih uint16, cid uint16) (iscsi.Params, uint32, uint16, error) {
	pairs := cfg.Params.Pairs()
	pairs[iscsi.KeyInitiatorName] = cfg.InitiatorIQN
	pairs[iscsi.KeyTargetName] = cfg.TargetIQN
	pairs[iscsi.KeySessionType] = "Normal"
	if port := localPort(conn); port != 0 {
		pairs[iscsi.KeySourcePort] = strconv.Itoa(port)
	}
	if cfg.AttachedVM != "" {
		pairs[iscsi.KeyAttachedVM] = cfg.AttachedVM
	}
	req := &iscsi.LoginRequest{
		Transit: true,
		CSG:     iscsi.StageOperational,
		NSG:     iscsi.StageFullFeature,
		ISID:    isid,
		TSIH:    tsih,
		CID:     cid,
		ITT:     1,
		CmdSN:   1,
		Pairs:   pairs,
	}
	if _, err := req.Encode().WriteTo(conn); err != nil {
		return iscsi.Params{}, 0, 0, fmt.Errorf("initiator: send login: %w", err)
	}
	pdu, err := iscsi.ReadPDU(conn)
	if err != nil {
		return iscsi.Params{}, 0, 0, fmt.Errorf("initiator: read login response: %w", err)
	}
	resp, err := iscsi.ParseLoginResponse(pdu)
	if err != nil {
		return iscsi.Params{}, 0, 0, err
	}
	if resp.StatusClass != iscsi.LoginStatusSuccess {
		err := fmt.Errorf("%w: status class 0x%02x detail 0x%02x",
			ErrLoginFailed, resp.StatusClass, resp.StatusDetail)
		// The wire status carries the target's error class: TargetErr means
		// "retry later" (transient or overload), while TargetRemoved under
		// InitiatorErr marks the refusal terminal — the target will never
		// accept this login, so redialing it is wasted budget.
		switch {
		case resp.StatusClass == iscsi.LoginStatusTargetErr:
			err = xerr.Wrap(xerr.Transient, err)
		case resp.StatusClass == iscsi.LoginStatusInitiatorErr && resp.StatusDetail == iscsi.LoginDetailTargetRemoved:
			err = xerr.Wrap(xerr.Terminal, err)
		}
		return iscsi.Params{}, 0, 0, err
	}
	params, err := cfg.Params.Negotiate(resp.Pairs)
	if err != nil {
		return iscsi.Params{}, 0, 0, err
	}
	return params, resp.StatSN, resp.TSIH, nil
}

// Login establishes a session over conn. The local TCP source port is
// exposed in the login text (the paper's modified Login Session code) so the
// platform can attribute the connection. With Conns > 1 and a DialConn hook,
// the session adds MC/S connections up to the negotiated MaxConnections.
func Login(conn net.Conn, cfg Config) (*Session, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 32
	}
	if cfg.Params == (iscsi.Params{}) {
		cfg.Params = iscsi.DefaultParams()
	}
	if cfg.MaxRedials <= 0 {
		cfg.MaxRedials = 4
	}
	if cfg.RedialBackoffBase <= 0 {
		cfg.RedialBackoffBase = 2 * time.Millisecond
	}
	if cfg.RedialBackoffCap <= 0 {
		cfg.RedialBackoffCap = 100 * time.Millisecond
	}
	if cfg.Conns > maxConns {
		cfg.Conns = maxConns
	}
	if cfg.Conns > 1 && cfg.Params.EffectiveMaxConnections() < cfg.Conns {
		// Offer the width we want; negotiation takes the minimum.
		cfg.Params.MaxConnections = cfg.Conns
	}
	isid := newISID()
	params, statSN, tsih, err := doLogin(conn, cfg, isid, 0, 0)
	if err != nil {
		return nil, err
	}
	want := cfg.Conns
	if want < 1 {
		want = 1
	}
	if want > params.EffectiveMaxConnections() {
		want = params.EffectiveMaxConnections()
	}
	if cfg.DialConn == nil {
		want = 1
	}
	lead := &sconn{conn: conn, cid: 0, done: make(chan struct{}), expStatSN: statSN}
	s := &Session{
		cfg:       cfg,
		isid:      isid,
		conns:     []*sconn{lead},
		wantConns: want,
		tsih:      tsih,
		params:    params,
		itt:       1,
		cmdSN:     2,
		pending:   make(map[uint32]*pendingCmd),
		backoff:   faults.NewBackoff(cfg.RedialBackoffBase, cfg.RedialBackoffCap, cfg.RedialSeed),
		sem:       make(chan struct{}, cfg.QueueDepth),
	}
	s.stage = cfg.Stage
	if s.stage == "" {
		s.stage = obs.StageInitiator
	}
	go s.readLoop(lead)
	// Best-effort MC/S widening: a failed secondary login degrades the
	// session to fewer connections rather than failing it.
	for cid := uint16(1); int(cid) < want; cid++ {
		_ = s.addConn(cid, 0)
	}
	return s, nil
}

// addConn dials, joins, and installs one MC/S secondary connection. gen
// guards against installing into a session whose connection set was rebuilt
// (or torn down) while the dial was in flight.
func (s *Session) addConn(cid uint16, gen uint64) error {
	conn, err := s.cfg.DialConn()
	if err != nil {
		return err
	}
	s.mu.Lock()
	tsih := s.tsih
	stale := s.closedErr != nil || s.gen != gen
	s.mu.Unlock()
	if stale {
		conn.Close()
		return ErrSessionClosed
	}
	_, statSN, _, err := doLogin(conn, s.cfg, s.isid, tsih, cid)
	if err != nil {
		conn.Close()
		return err
	}
	sc := &sconn{conn: conn, cid: cid, done: make(chan struct{}), expStatSN: statSN}
	s.mu.Lock()
	if s.closedErr != nil || s.gen != gen {
		s.mu.Unlock()
		conn.Close()
		return ErrSessionClosed
	}
	replaced := false
	for i, old := range s.conns {
		if old.cid == cid {
			s.conns[i] = sc
			replaced = true
			break
		}
	}
	if !replaced {
		s.conns = append(s.conns, sc)
	}
	s.mu.Unlock()
	go s.readLoop(sc)
	return nil
}

// reattach tries to restore a failed secondary connection in the background
// with the session's redial backoff, giving up once the connection set is
// rebuilt or the session closes.
func (s *Session) reattach(cid uint16, gen uint64) {
	for attempt := 0; attempt < s.cfg.MaxRedials; attempt++ {
		if attempt > 0 {
			time.Sleep(s.backoff.Delay(attempt - 1))
		}
		err := s.addConn(cid, gen)
		if err == nil || errors.Is(err, ErrSessionClosed) {
			return
		}
	}
}

// startCmdSpan opens the per-command stage span. With tracing enabled on
// the session's registry this also assigns (or continues) the command's
// trace: a fresh trace ID when the calling goroutine is unbound (the VM
// edge of the chain), a child span when a relay's service leg is driving
// this session as its downstream forward. Returns the zero span when the
// session has no registry.
func (s *Session) startCmdSpan(dir string, bytes int) obs.Span {
	return s.cfg.Obs.StartTraced(s.stage, dir, bytes)
}

// putTrace hands the command's span context to its connection's out-of-band
// trace carrier (keyed by task tag) so the next station can parent its spans
// under ours. No-op on untraced commands or transports without a carrier.
func (s *Session) putTrace(sc *sconn, itt uint32, spanCtx obs.SpanContext) {
	if !spanCtx.Valid() {
		return
	}
	if tbl := obs.CarrierOf(sc.conn); tbl != nil {
		tbl.Put(itt, spanCtx)
	}
}

// Params returns the negotiated operational parameters.
func (s *Session) Params() iscsi.Params {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.params
}

// Conn returns the current leading connection.
func (s *Session) Conn() net.Conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conns[0].conn
}

// NumConns reports how many healthy connections the session currently has.
func (s *Session) NumConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, sc := range s.conns {
		if !sc.dead {
			n++
		}
	}
	return n
}

// localPort extracts the TCP source port from the connection, if available.
func localPort(conn net.Conn) int {
	addr := conn.LocalAddr()
	if addr == nil {
		return 0
	}
	_, portStr, err := net.SplitHostPort(addr.String())
	if err != nil {
		return 0
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return 0
	}
	return port
}

// readLoop demultiplexes target PDUs to their outstanding commands. The
// Data-In and Response parse targets live across iterations — each is fully
// consumed before the next PDU, so the loop itself allocates nothing. sc is
// this loop's connection: a reconnect starts a fresh loop on a fresh sconn,
// and a stale loop's exit must not disturb the new connection.
func (s *Session) readLoop(sc *sconn) {
	defer close(sc.done)
	pr := iscsi.NewPDUReader(sc.conn)
	defer pr.Close()
	var (
		din  iscsi.DataIn
		resp iscsi.SCSIResponse
	)
	for {
		pdu, err := pr.ReadPDU()
		if err != nil {
			s.connFailed(sc, err, true)
			return
		}
		switch pdu.Op() {
		case iscsi.OpSCSIDataIn:
			if err := iscsi.ParseDataInInto(&din, pdu); err != nil {
				s.connFailed(sc, err, false)
				return
			}
			if err := s.handleDataIn(sc, &din); err != nil {
				s.connFailed(sc, err, false)
				return
			}
		case iscsi.OpSCSIResponse:
			if err := iscsi.ParseSCSIResponseInto(&resp, pdu); err != nil {
				s.connFailed(sc, err, false)
				return
			}
			s.handleResponse(sc, &resp)
		case iscsi.OpR2T:
			r2t := r2tPool.Get().(*iscsi.R2T)
			if err := iscsi.ParseR2TInto(r2t, pdu); err != nil {
				r2tPool.Put(r2t)
				s.connFailed(sc, err, false)
				return
			}
			s.mu.Lock()
			p := s.pending[r2t.ITT]
			s.mu.Unlock()
			if p != nil && p.r2t != nil {
				p.r2t <- r2t
			} else {
				r2tPool.Put(r2t)
			}
		case iscsi.OpNopIn:
			n, err := iscsi.ParseNopIn(pdu)
			if err != nil {
				s.connFailed(sc, err, false)
				return
			}
			s.completeNop(n)
		case iscsi.OpTextResp:
			s.mu.Lock()
			p := s.pending[pdu.ITT()]
			if p != nil {
				p.buf = append([]byte(nil), pdu.Data...)
				p.filled = len(pdu.Data)
				delete(s.pending, pdu.ITT())
			}
			s.mu.Unlock()
			if p != nil {
				p.done <- struct{}{}
			}
		case iscsi.OpLogoutResp:
			s.connFailed(sc, ErrSessionClosed, false)
			return
		case iscsi.OpReject:
			rej, _ := iscsi.ParseReject(pdu)
			s.connFailed(sc, fmt.Errorf("initiator: target rejected PDU (reason 0x%02x)", rej.Reason), false)
			return
		default:
			s.connFailed(sc, fmt.Errorf("initiator: unexpected PDU %v", pdu.Op()), false)
			return
		}
		// Every case above consumes the data segment synchronously (copying
		// into the pending command's buffer or decoding into typed fields),
		// so the pooled segment can be recycled here.
		pdu.Release()
	}
}

// handleDataIn places one Data-In segment. A segment that lands outside the
// command buffer, or that would deliver more bytes than the buffer holds, is
// a protocol violation: returning the error fails the command and tears down
// the session rather than completing the read GOOD with silently short data.
func (s *Session) handleDataIn(sc *sconn, din *iscsi.DataIn) error {
	s.mu.Lock()
	p := s.pending[din.ITT]
	if p == nil {
		s.mu.Unlock()
		return nil
	}
	off := int(din.BufferOffset)
	if off+len(din.Data) > len(p.buf) {
		s.mu.Unlock()
		return fmt.Errorf("initiator: Data-In for ITT %d spans [%d,%d) beyond %d-byte buffer",
			din.ITT, off, off+len(din.Data), len(p.buf))
	}
	if p.filled+len(din.Data) > len(p.buf) {
		s.mu.Unlock()
		return fmt.Errorf("initiator: Data-In for ITT %d over-delivers: %d bytes into a %d-byte buffer",
			din.ITT, p.filled+len(din.Data), len(p.buf))
	}
	copy(p.buf[off:], din.Data)
	p.filled += len(din.Data)
	if din.StatusPresent && din.Final {
		p.status = din.Status
		if iscsi.SNAfter(din.StatSN+1, sc.expStatSN) {
			sc.expStatSN = din.StatSN + 1
		}
		delete(s.pending, din.ITT)
		s.mu.Unlock()
		p.done <- struct{}{}
		return nil
	}
	s.mu.Unlock()
	return nil
}

func (s *Session) handleResponse(sc *sconn, resp *iscsi.SCSIResponse) {
	s.mu.Lock()
	p := s.pending[resp.ITT]
	if p == nil {
		s.mu.Unlock()
		return
	}
	p.status = resp.Status
	if len(resp.Sense) > 0 {
		if sense, err := scsi.DecodeSense(resp.Sense); err == nil {
			p.sense = sense
		}
	}
	if iscsi.SNAfter(resp.StatSN+1, sc.expStatSN) {
		sc.expStatSN = resp.StatSN + 1
	}
	delete(s.pending, resp.ITT)
	s.mu.Unlock()
	p.done <- struct{}{}
}

func (s *Session) completeNop(n *iscsi.NopIn) {
	s.mu.Lock()
	p := s.pending[n.ITT]
	if p != nil {
		delete(s.pending, n.ITT)
	}
	s.mu.Unlock()
	if p != nil {
		p.done <- struct{}{}
	}
}

// connFailed reacts to the loss of one connection. A transient loss of a
// secondary fails only the commands with allegiance to it — each with a
// retryable transientErr so its caller reissues on a surviving connection —
// and tries to reattach in the background. Loss of the leading connection
// (or any non-transient failure) is session-wide: with a Redial hook it
// starts (at most one) recovery goroutine, otherwise the session is
// terminal. Calls for an already-failed connection are ignored.
func (s *Session) connFailed(sc *sconn, err error, transient bool) {
	s.mu.Lock()
	if sc.dead {
		s.mu.Unlock()
		return
	}
	sc.dead = true
	leading := s.conns[0] == sc

	if !leading && transient && s.closedErr == nil {
		// Secondary loss: redistribute its in-flight commands.
		var failed []*pendingCmd
		for itt, p := range s.pending {
			if p.sc == sc {
				delete(s.pending, itt)
				failed = append(failed, p)
			}
		}
		gen := s.gen
		canReattach := s.cfg.DialConn != nil
		s.mu.Unlock()
		sc.conn.Close()
		for _, p := range failed {
			p.err = &transientErr{err}
			p.done <- struct{}{}
		}
		if canReattach {
			go s.reattach(sc.cid, gen)
		}
		return
	}

	var failErr error
	if leading && transient && s.cfg.Redial != nil && s.closedErr == nil {
		if !s.recovering {
			s.recovering = true
			s.recoverDone = make(chan struct{})
			go s.recover(err)
		}
		failErr = &transientErr{err}
	} else {
		if s.closedErr == nil {
			s.closedErr = err
		}
		failErr = s.closedErr
	}
	// Session-wide: the whole connection set goes down with the leading
	// connection (a reinstating re-login invalidates the old session, and
	// with it every joined connection).
	conns := make([]*sconn, 0, len(s.conns))
	for _, c := range s.conns {
		c.dead = true
		conns = append(conns, c)
	}
	pend := s.pending
	s.pending = make(map[uint32]*pendingCmd)
	s.mu.Unlock()
	for _, c := range conns {
		c.conn.Close()
	}
	for _, p := range pend {
		p.err = failErr
		p.done <- struct{}{}
	}
}

// recover redials and re-logs-in with capped exponential backoff. On success
// it installs a fresh leading connection (and re-widens the MC/S set) and
// starts new read loops; after MaxRedials consecutive failures (or an
// explicit Close racing in) the session fails terminally. Either way the
// recoverDone channel is closed so commands parked in awaitRecovery proceed.
func (s *Session) recover(cause error) {
	lastErr := cause
	for attempt := 0; attempt < s.cfg.MaxRedials; attempt++ {
		if attempt > 0 {
			time.Sleep(s.backoff.Delay(attempt - 1))
		}
		s.mu.Lock()
		closed := s.closedErr != nil
		s.mu.Unlock()
		if closed {
			break
		}
		conn, err := s.cfg.Redial()
		if err != nil {
			lastErr = err
			continue
		}
		params, statSN, tsih, err := doLogin(conn, s.cfg, s.isid, 0, 0)
		if err != nil {
			conn.Close()
			lastErr = err
			if xerr.IsTerminal(err) {
				// The target refused with a terminal status (e.g. a
				// draining relay): further redials cannot succeed, so fail
				// the session now instead of burning the remaining budget.
				break
			}
			continue
		}
		s.mu.Lock()
		if s.closedErr != nil {
			s.mu.Unlock()
			conn.Close()
			break
		}
		lead := &sconn{conn: conn, cid: 0, done: make(chan struct{}), expStatSN: statSN}
		s.conns = []*sconn{lead}
		s.gen++
		gen := s.gen
		s.tsih = tsih
		s.params = params
		s.itt = 1
		s.cmdSN = 2
		s.recovering = false
		rd := s.recoverDone
		want := s.wantConns
		s.mu.Unlock()
		go s.readLoop(lead)
		for cid := uint16(1); int(cid) < want; cid++ {
			_ = s.addConn(cid, gen)
		}
		close(rd)
		return
	}
	s.mu.Lock()
	if s.closedErr == nil {
		s.closedErr = fmt.Errorf("initiator: reconnect failed after %d attempts: %w", s.cfg.MaxRedials, lastErr)
	}
	s.recovering = false
	rd := s.recoverDone
	s.mu.Unlock()
	close(rd)
}

// awaitRecovery blocks until the in-progress reconnect settles. It returns
// nil when the session is usable again (the caller should reissue its
// command) and the terminal error when recovery gave up or the session was
// closed meanwhile.
func (s *Session) awaitRecovery() error {
	for {
		s.mu.Lock()
		if s.closedErr != nil {
			err := s.closedErr
			s.mu.Unlock()
			return err
		}
		if !s.recovering {
			s.mu.Unlock()
			return nil
		}
		ch := s.recoverDone
		s.mu.Unlock()
		<-ch
	}
}

// retryTransient reports whether err is a connection failure worth reissuing
// the command for on this session: there is a redial hook to rebuild the
// session, or a surviving MC/S connection to redistribute onto.
func (s *Session) retryTransient(err error) bool {
	var te *transientErr
	if !errors.As(err, &te) {
		return false
	}
	if s.cfg.Redial != nil {
		return true
	}
	return s.NumConns() > 0
}

// cmdTimer arms the per-command deadline. The returned channel is nil (and
// thus never fires in a select) when deadlines are disabled.
func (s *Session) cmdTimer() (<-chan time.Time, func()) {
	if s.cfg.CommandTimeout <= 0 {
		return nil, func() {}
	}
	t := time.NewTimer(s.cfg.CommandTimeout)
	return t.C, func() { t.Stop() }
}

// register allocates a task tag, picks the command's connection (round-robin
// over the healthy set — its allegiance for the command's lifetime), and
// tracks the command. CmdSN stays session-wide so MC/S preserves one command
// ordering window across connections.
func (s *Session) register(p *pendingCmd) (itt, cmdSN, expStatSN uint32, sc *sconn, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closedErr != nil {
		return 0, 0, 0, nil, s.closedErr
	}
	n := len(s.conns)
	for i := 0; i < n; i++ {
		c := s.conns[int(s.rr)%n]
		s.rr++
		if !c.dead {
			sc = c
			break
		}
	}
	if sc == nil {
		return 0, 0, 0, nil, &transientErr{errors.New("no healthy connection")}
	}
	s.itt++
	s.cmdSN++
	itt = s.itt
	p.sc = sc
	s.pending[itt] = p
	return itt, s.cmdSN, sc.expStatSN, sc, nil
}

// pduEncoder is a typed message that can encode into a caller-owned PDU.
// Raw *iscsi.PDU values satisfy it too (identity EncodeInto), so cold-path
// admin requests share this path instead of a separate raw-PDU sender.
type pduEncoder interface {
	EncodeInto(*iscsi.PDU) *iscsi.PDU
}

// send serializes m into the connection's reusable wire PDU under its write
// lock, so steady-state command issue allocates nothing for framing. Wire
// errors are wrapped as transient: the connection is presumed dead and the
// command may be reissued after redistribution or reconnect.
func (s *Session) send(sc *sconn, m pduEncoder) error {
	sc.writeMu.Lock()
	_, err := m.EncodeInto(&sc.wirePDU).WriteTo(sc.conn)
	sc.writeMu.Unlock()
	if err != nil {
		// The writer can notice a dead connection before the read loop
		// does; report it here so recovery starts immediately instead of
		// the caller burning its retry budget against the same corpse.
		s.connFailed(sc, err, true)
		return &transientErr{err}
	}
	return nil
}

func (s *Session) unregister(itt uint32) {
	s.mu.Lock()
	delete(s.pending, itt)
	s.mu.Unlock()
}

// Read reads blocks*BlockSize bytes at lba. blockSize is the device block
// size (learned via Capacity). Callers that already own a destination buffer
// should prefer ReadInto, which avoids the per-read allocation.
func (s *Session) Read(lba uint64, blocks uint32, blockSize int) ([]byte, error) {
	dst := make([]byte, int(blocks)*blockSize)
	n, err := s.ReadInto(dst, lba, blocks, blockSize)
	if err != nil {
		return nil, err
	}
	return dst[:n], nil
}

// ReadInto reads blocks*blockSize bytes at lba directly into dst, which must
// be at least that long. Data-In segments land in dst as they arrive, so the
// read path performs no per-command allocation or assembly copy. Returns the
// number of bytes the target delivered.
func (s *Session) ReadInto(dst []byte, lba uint64, blocks uint32, blockSize int) (int, error) {
	cdb := scsi.ReadCDB(lba, blocks)
	n := int(blocks) * blockSize
	if len(dst) < n {
		return 0, fmt.Errorf("initiator: destination %d bytes, transfer needs %d", len(dst), n)
	}
	sp := s.startCmdSpan("read", n)
	if spanCtx := sp.Context(); spanCtx.Valid() {
		// Bind the command's context so fabric hop charges on this
		// goroutine (gateway ingress/egress, MB-FWD) join the trace.
		prev, had := obs.Bind(spanCtx)
		defer obs.Restore(prev, had)
	}
	got, err := s.execRead(&cdb, dst[:n], sp.Context())
	if err != nil {
		sp.Abort()
		return 0, err
	}
	sp.End()
	return got, nil
}

// execRead issues a read-direction command whose Data-In sequence fills dst,
// reissuing it across reconnects while failures stay transient.
func (s *Session) execRead(cdb *scsi.CDB, dst []byte, spanCtx obs.SpanContext) (int, error) {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	var (
		n   int
		err error
	)
	for attempt := 0; attempt < maxCmdAttempts; attempt++ {
		n, err = s.execReadOnce(cdb, dst, spanCtx)
		if err == nil || !s.retryTransient(err) {
			return n, err
		}
		if rerr := s.awaitRecovery(); rerr != nil {
			return 0, rerr
		}
	}
	return 0, err
}

// execReadOnce runs one attempt of a read-direction command.
func (s *Session) execReadOnce(cdb *scsi.CDB, dst []byte, spanCtx obs.SpanContext) (int, error) {
	p := getPending()
	p.buf = dst
	p.cmd = iscsi.SCSICommand{
		Final:                      true,
		Read:                       len(dst) > 0,
		ExpectedDataTransferLength: uint32(len(dst)),
	}
	if _, err := cdb.EncodeInto(p.cmd.CDB[:]); err != nil {
		putPending(p)
		return 0, err
	}
	itt, cmdSN, expStatSN, sc, err := s.register(p)
	if err != nil {
		putPending(p)
		return 0, err
	}
	p.cmd.ITT = itt
	p.cmd.CmdSN = cmdSN
	p.cmd.ExpStatSN = expStatSN
	s.putTrace(sc, itt, spanCtx)
	if err := s.send(sc, &p.cmd); err != nil {
		// Not pooled: a concurrent connFailed may still signal this command.
		s.unregister(itt)
		return 0, err
	}
	tc, stop := s.cmdTimer()
	defer stop()
	select {
	case <-p.done:
	case <-tc:
		sc.conn.Close() // wakes the read loop, which fails the command
		<-p.done
	}
	filled, status, sense, perr := p.filled, p.status, p.sense, p.err
	putPending(p)
	if perr != nil {
		return 0, perr
	}
	if sense != nil {
		return 0, sense
	}
	if status == byte(scsi.StatusBusy) {
		return 0, ErrTargetBusy
	}
	if status != byte(scsi.StatusGood) {
		return 0, fmt.Errorf("initiator: %v", scsi.Status(status))
	}
	return filled, nil
}

// Write writes data at lba. len(data) must be a multiple of blockSize. The
// command is reissued across reconnects while failures stay transient
// (block writes are idempotent).
func (s *Session) Write(lba uint64, data []byte, blockSize int) error {
	if blockSize <= 0 || len(data)%blockSize != 0 {
		return fmt.Errorf("initiator: write length %d is not a multiple of block size %d", len(data), blockSize)
	}
	cdb := scsi.WriteCDB(lba, uint32(len(data)/blockSize))
	sp := s.startCmdSpan("write", len(data))
	defer sp.End()
	if spanCtx := sp.Context(); spanCtx.Valid() {
		// Bind the command's context so fabric hop charges on this
		// goroutine (gateway ingress/egress, MB-FWD) join the trace.
		prev, had := obs.Bind(spanCtx)
		defer obs.Restore(prev, had)
	}

	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	var err error
	for attempt := 0; attempt < maxCmdAttempts; attempt++ {
		err = s.execWriteOnce(&cdb, data, sp.Context())
		if err == nil || !s.retryTransient(err) {
			return err
		}
		if rerr := s.awaitRecovery(); rerr != nil {
			return rerr
		}
	}
	return err
}

// execWriteOnce runs one attempt of a write command: immediate data, then
// R2T-solicited Data-Out bursts, then the status wait.
func (s *Session) execWriteOnce(cdb *scsi.CDB, data []byte, spanCtx obs.SpanContext) error {
	params := s.Params()
	// Immediate (unsolicited) data up to FirstBurstLength.
	immediate := 0
	if params.ImmediateData && !params.InitialR2T {
		immediate = len(data)
		if immediate > params.FirstBurstLength {
			immediate = params.FirstBurstLength
		}
		if immediate > params.MaxRecvDataSegmentLength {
			immediate = params.MaxRecvDataSegmentLength
		}
	}
	p := getPending()
	p.cmd = iscsi.SCSICommand{
		Final:                      true,
		Write:                      true,
		ExpectedDataTransferLength: uint32(len(data)),
		Data:                       data[:immediate],
	}
	if _, err := cdb.EncodeInto(p.cmd.CDB[:]); err != nil {
		putPending(p)
		return err
	}
	itt, cmdSN, expStatSN, sc, err := s.register(p)
	if err != nil {
		putPending(p)
		return err
	}
	p.cmd.ITT = itt
	p.cmd.CmdSN = cmdSN
	p.cmd.ExpStatSN = expStatSN
	s.putTrace(sc, itt, spanCtx)
	if err := s.send(sc, &p.cmd); err != nil {
		// Not pooled: a concurrent connFailed may still signal this command.
		s.unregister(itt)
		return err
	}

	tc, stop := s.cmdTimer()
	defer stop()

	// Serve R2Ts until the transfer is fully solicited.
	sent := immediate
	for sent < len(data) {
		var r2t *iscsi.R2T
		select {
		case r2t = <-p.r2t:
		case <-p.done:
			perr, status := p.err, p.status
			putPending(p)
			if perr != nil {
				return perr
			}
			if status == byte(scsi.StatusBusy) {
				return ErrTargetBusy
			}
			return fmt.Errorf("initiator: write completed before data transfer (status %v)", scsi.Status(status))
		case <-tc:
			sc.conn.Close()
			<-p.done
			perr := p.err
			putPending(p)
			if perr != nil {
				return perr
			}
			return fmt.Errorf("initiator: write deadline exceeded awaiting R2T")
		}
		err := s.sendBurst(sc, itt, r2t, data, params)
		sent = int(r2t.BufferOffset) + int(r2t.DesiredLength)
		r2tPool.Put(r2t)
		if err != nil {
			// Not pooled: a concurrent connFailed may still signal this command.
			s.unregister(itt)
			return err
		}
	}

	select {
	case <-p.done:
	case <-tc:
		sc.conn.Close()
		<-p.done
	}
	status, sense, perr := p.status, p.sense, p.err
	putPending(p)
	if perr != nil {
		return perr
	}
	if sense != nil {
		return sense
	}
	if status == byte(scsi.StatusBusy) {
		return ErrTargetBusy
	}
	if status != byte(scsi.StatusGood) {
		return fmt.Errorf("initiator: %v", scsi.Status(status))
	}
	return nil
}

// sendBurst answers one R2T with Data-Out PDUs chunked to the negotiated
// segment length. Multi-segment bursts are encoded back-to-back and leave in
// a single vectored write — one wire rendezvous per burst, not per segment.
func (s *Session) sendBurst(sc *sconn, itt uint32, r2t *iscsi.R2T, data []byte, params iscsi.Params) error {
	start := int(r2t.BufferOffset)
	end := start + int(r2t.DesiredLength)
	if end > len(data) {
		return fmt.Errorf("initiator: R2T solicits bytes [%d,%d) beyond transfer of %d", start, end, len(data))
	}
	maxSeg := params.MaxRecvDataSegmentLength
	if maxSeg <= 0 {
		maxSeg = 8192
	}
	dout := iscsi.DataOut{ITT: itt, TTT: r2t.TTT}
	nseg := (end - start + maxSeg - 1) / maxSeg
	if nseg <= 1 {
		dout.Final = true
		dout.BufferOffset = uint32(start)
		dout.Data = data[start:end]
		return s.send(sc, &dout)
	}
	pdus := make([]iscsi.PDU, nseg)
	for i, off := 0, start; off < end; i++ {
		segEnd := off + maxSeg
		if segEnd > end {
			segEnd = end
		}
		dout.Final = segEnd == end
		dout.BufferOffset = uint32(off)
		dout.Data = data[off:segEnd]
		dout.EncodeInto(&pdus[i])
		dout.DataSN++
		off = segEnd
	}
	sc.writeMu.Lock()
	_, err := iscsi.WritePDUs(sc.conn, pdus)
	sc.writeMu.Unlock()
	if err != nil {
		s.connFailed(sc, err, true)
		return &transientErr{err}
	}
	return nil
}
