// Package initiator implements the iSCSI initiator used by tenant VMs (and
// by the active-relay middle-box's pseudo-client): login with the StorM
// source-port exposure, tag-based multiplexing of outstanding commands,
// immediate data, and R2T-solicited Data-Out sequences.
package initiator

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/iscsi"
	"repro/internal/obs"
	"repro/internal/scsi"
)

// Errors returned by session operations.
var (
	ErrSessionClosed = errors.New("initiator: session closed")
	ErrLoginFailed   = errors.New("initiator: login failed")
)

// transientErr marks a connection-level failure the session may heal from by
// redialing: the command that observed it is safe to reissue on a fresh
// connection. Protocol violations and user-initiated closes are never
// wrapped, so they stay terminal.
type transientErr struct{ err error }

func (e *transientErr) Error() string { return "initiator: connection failure: " + e.err.Error() }
func (e *transientErr) Unwrap() error { return e.err }

// maxCmdAttempts bounds how many times one command is reissued across
// reconnects, so a target that repeatedly accepts a login and then wedges
// cannot trap a caller forever.
const maxCmdAttempts = 8

// Config describes the session to establish.
type Config struct {
	// InitiatorIQN names this initiator.
	InitiatorIQN string
	// TargetIQN names the volume's target.
	TargetIQN string
	// AttachedVM optionally carries the owning VM's name for StorM's
	// connection attribution.
	AttachedVM string
	// Params are the desired operational parameters (DefaultParams when
	// zero).
	Params iscsi.Params
	// QueueDepth bounds locally outstanding commands (default 32,
	// Open-iSCSI's node.session.queue_depth).
	QueueDepth int
	// Obs optionally records per-command latency spans into the registry
	// under "stage.<Stage>.read" / "stage.<Stage>.write". Nil disables
	// tracing (no histogram work on the hot path).
	Obs *obs.Registry
	// Stage labels this session's spans (obs.StageInitiator when empty);
	// a relay's pseudo-client session uses its relay.forward stage.
	Stage string
	// Redial, when non-nil, re-establishes the transport after a
	// connection failure: the session redials, re-logs-in with capped
	// exponential backoff, and reissues the idempotent commands that were
	// in flight instead of failing every caller with ErrSessionClosed.
	// Nil keeps the legacy fail-fast behaviour.
	Redial func() (net.Conn, error)
	// MaxRedials bounds consecutive failed reconnect attempts per outage
	// before the session fails terminally (default 4).
	MaxRedials int
	// RedialBackoffBase and RedialBackoffCap shape the reconnect backoff:
	// attempt n waits in [d/2, d) with d = min(Base·2ⁿ, Cap). Defaults
	// 2ms / 100ms.
	RedialBackoffBase time.Duration
	RedialBackoffCap  time.Duration
	// RedialSeed fixes the backoff jitter sequence, keeping fault tests
	// deterministic.
	RedialSeed int64
	// CommandTimeout bounds each command round-trip. A command that
	// exceeds it declares the connection dead: with Redial set the session
	// reconnects and reissues it, otherwise the command and session fail.
	// Zero disables deadlines.
	CommandTimeout time.Duration
}

// pendingCmd tracks one outstanding command. The done channel is buffered
// with capacity 1 and receives exactly one completion signal (the completer
// deletes the command from the pending map under the session mutex before
// signalling, so no command can be signalled twice).
type pendingCmd struct {
	buf    []byte // Data-In assembly for reads
	filled int
	r2t    chan *iscsi.R2T
	done   chan struct{}
	cmd    iscsi.SCSICommand // per-command frame scratch, reused via the pool

	status byte
	sense  *scsi.Sense
	err    error
}

// pcPool recycles pendingCmds (with their channels) across commands, so
// steady-state command issue allocates neither tracking state nor channels.
var pcPool = sync.Pool{New: func() any {
	return &pendingCmd{done: make(chan struct{}, 1), r2t: make(chan *iscsi.R2T, 4)}
}}

// r2tPool recycles the R2T structs the read loop hands to waiting writers.
var r2tPool = sync.Pool{New: func() any { return new(iscsi.R2T) }}

func getPending() *pendingCmd {
	p := pcPool.Get().(*pendingCmd)
	p.buf = nil
	p.filled = 0
	p.status = 0
	p.sense = nil
	p.err = nil
	return p
}

// putPending returns p to the pool. Only call after the command's single
// completion signal has been consumed (or before it was ever registered):
// a command abandoned mid-flight may still be signalled by a concurrent
// connFailed, and pooling it then would leak that signal into the next user.
func putPending(p *pendingCmd) {
	p.buf = nil      // don't pin the caller's buffer while pooled
	p.cmd.Data = nil // likewise for the write payload
	for {
		select {
		case r := <-p.r2t: // unconsumed R2Ts from an aborted write
			r2tPool.Put(r)
		default:
			pcPool.Put(p)
			return
		}
	}
}

// Session is a logged-in iSCSI session. All methods are safe for concurrent
// use; multiple application threads share one session, as Fio threads share
// a volume connection in the paper's setup.
type Session struct {
	cfg Config

	writeMu sync.Mutex
	wirePDU iscsi.PDU // reusable encode target for outgoing PDUs, guarded by writeMu

	mu          sync.Mutex
	conn        net.Conn // current transport; replaced by the reconnect path
	params      iscsi.Params
	itt         uint32
	cmdSN       uint32
	expStatSN   uint32
	pending     map[uint32]*pendingCmd
	closedErr   error
	recovering  bool
	recoverDone chan struct{} // closed when the in-progress recovery settles
	readerDone  chan struct{} // current read loop's exit signal

	backoff *faults.Backoff
	sem     chan struct{}

	stage string // obs stage name for command spans ("initiator", "relay.<x>.forward")
}

// doLogin runs the login handshake on conn and returns the negotiated
// parameters and the target's initial StatSN. Shared by Login and the
// reconnect path.
func doLogin(conn net.Conn, cfg Config) (iscsi.Params, uint32, error) {
	pairs := cfg.Params.Pairs()
	pairs[iscsi.KeyInitiatorName] = cfg.InitiatorIQN
	pairs[iscsi.KeyTargetName] = cfg.TargetIQN
	pairs[iscsi.KeySessionType] = "Normal"
	if port := localPort(conn); port != 0 {
		pairs[iscsi.KeySourcePort] = strconv.Itoa(port)
	}
	if cfg.AttachedVM != "" {
		pairs[iscsi.KeyAttachedVM] = cfg.AttachedVM
	}
	req := &iscsi.LoginRequest{
		Transit: true,
		CSG:     iscsi.StageOperational,
		NSG:     iscsi.StageFullFeature,
		ISID:    [6]byte{0x80, 0, 0, 0, 0, 1},
		ITT:     1,
		CmdSN:   1,
		Pairs:   pairs,
	}
	if _, err := req.Encode().WriteTo(conn); err != nil {
		return iscsi.Params{}, 0, fmt.Errorf("initiator: send login: %w", err)
	}
	pdu, err := iscsi.ReadPDU(conn)
	if err != nil {
		return iscsi.Params{}, 0, fmt.Errorf("initiator: read login response: %w", err)
	}
	resp, err := iscsi.ParseLoginResponse(pdu)
	if err != nil {
		return iscsi.Params{}, 0, err
	}
	if resp.StatusClass != iscsi.LoginStatusSuccess {
		return iscsi.Params{}, 0, fmt.Errorf("%w: status class 0x%02x detail 0x%02x",
			ErrLoginFailed, resp.StatusClass, resp.StatusDetail)
	}
	params, err := cfg.Params.Negotiate(resp.Pairs)
	if err != nil {
		return iscsi.Params{}, 0, err
	}
	return params, resp.StatSN, nil
}

// Login establishes a session over conn. The local TCP source port is
// exposed in the login text (the paper's modified Login Session code) so the
// platform can attribute the connection.
func Login(conn net.Conn, cfg Config) (*Session, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 32
	}
	if cfg.Params == (iscsi.Params{}) {
		cfg.Params = iscsi.DefaultParams()
	}
	if cfg.MaxRedials <= 0 {
		cfg.MaxRedials = 4
	}
	if cfg.RedialBackoffBase <= 0 {
		cfg.RedialBackoffBase = 2 * time.Millisecond
	}
	if cfg.RedialBackoffCap <= 0 {
		cfg.RedialBackoffCap = 100 * time.Millisecond
	}
	params, statSN, err := doLogin(conn, cfg)
	if err != nil {
		return nil, err
	}
	s := &Session{
		conn:       conn,
		params:     params,
		cfg:        cfg,
		itt:        1,
		cmdSN:      2,
		expStatSN:  statSN,
		pending:    make(map[uint32]*pendingCmd),
		backoff:    faults.NewBackoff(cfg.RedialBackoffBase, cfg.RedialBackoffCap, cfg.RedialSeed),
		sem:        make(chan struct{}, cfg.QueueDepth),
		readerDone: make(chan struct{}),
	}
	s.stage = cfg.Stage
	if s.stage == "" {
		s.stage = obs.StageInitiator
	}
	go s.readLoop(conn, s.readerDone)
	return s, nil
}

// startCmdSpan opens the per-command stage span. With tracing enabled on
// the session's registry this also assigns (or continues) the command's
// trace: a fresh trace ID when the calling goroutine is unbound (the VM
// edge of the chain), a child span when a relay's service leg is driving
// this session as its downstream forward. Returns the zero span when the
// session has no registry.
func (s *Session) startCmdSpan(dir string, bytes int) obs.Span {
	return s.cfg.Obs.StartTraced(s.stage, dir, bytes)
}

// putTrace hands the command's span context to the connection's
// out-of-band trace carrier (keyed by task tag) so the next station can
// parent its spans under ours. No-op on untraced commands or transports
// without a carrier.
func (s *Session) putTrace(itt uint32, sc obs.SpanContext) {
	if !sc.Valid() {
		return
	}
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	if tbl := obs.CarrierOf(conn); tbl != nil {
		tbl.Put(itt, sc)
	}
}

// Params returns the negotiated operational parameters.
func (s *Session) Params() iscsi.Params {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.params
}

// Conn returns the current underlying connection.
func (s *Session) Conn() net.Conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conn
}

// localPort extracts the TCP source port from the connection, if available.
func localPort(conn net.Conn) int {
	addr := conn.LocalAddr()
	if addr == nil {
		return 0
	}
	_, portStr, err := net.SplitHostPort(addr.String())
	if err != nil {
		return 0
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return 0
	}
	return port
}

// readLoop demultiplexes target PDUs to their outstanding commands. The
// Data-In and Response parse targets live across iterations — each is fully
// consumed before the next PDU, so the loop itself allocates nothing. conn
// is this loop's generation of the transport: a reconnect starts a fresh
// loop, and a stale loop's exit must not disturb the new connection.
func (s *Session) readLoop(conn net.Conn, done chan struct{}) {
	defer close(done)
	var (
		din  iscsi.DataIn
		resp iscsi.SCSIResponse
	)
	for {
		pdu, err := iscsi.ReadPDU(conn)
		if err != nil {
			s.connFailed(conn, err, true)
			return
		}
		switch pdu.Op() {
		case iscsi.OpSCSIDataIn:
			if err := iscsi.ParseDataInInto(&din, pdu); err != nil {
				s.connFailed(conn, err, false)
				return
			}
			if err := s.handleDataIn(&din); err != nil {
				s.connFailed(conn, err, false)
				return
			}
		case iscsi.OpSCSIResponse:
			if err := iscsi.ParseSCSIResponseInto(&resp, pdu); err != nil {
				s.connFailed(conn, err, false)
				return
			}
			s.handleResponse(&resp)
		case iscsi.OpR2T:
			r2t := r2tPool.Get().(*iscsi.R2T)
			if err := iscsi.ParseR2TInto(r2t, pdu); err != nil {
				r2tPool.Put(r2t)
				s.connFailed(conn, err, false)
				return
			}
			s.mu.Lock()
			p := s.pending[r2t.ITT]
			s.mu.Unlock()
			if p != nil && p.r2t != nil {
				p.r2t <- r2t
			} else {
				r2tPool.Put(r2t)
			}
		case iscsi.OpNopIn:
			n, err := iscsi.ParseNopIn(pdu)
			if err != nil {
				s.connFailed(conn, err, false)
				return
			}
			s.completeNop(n)
		case iscsi.OpTextResp:
			s.mu.Lock()
			p := s.pending[pdu.ITT()]
			if p != nil {
				p.buf = append([]byte(nil), pdu.Data...)
				p.filled = len(pdu.Data)
				delete(s.pending, pdu.ITT())
			}
			s.mu.Unlock()
			if p != nil {
				p.done <- struct{}{}
			}
		case iscsi.OpLogoutResp:
			s.connFailed(conn, ErrSessionClosed, false)
			return
		case iscsi.OpReject:
			rej, _ := iscsi.ParseReject(pdu)
			s.connFailed(conn, fmt.Errorf("initiator: target rejected PDU (reason 0x%02x)", rej.Reason), false)
			return
		default:
			s.connFailed(conn, fmt.Errorf("initiator: unexpected PDU %v", pdu.Op()), false)
			return
		}
		// Every case above consumes the data segment synchronously (copying
		// into the pending command's buffer or decoding into typed fields),
		// so the pooled segment can be recycled here.
		pdu.Release()
	}
}

// handleDataIn places one Data-In segment. A segment that lands outside the
// command buffer, or that would deliver more bytes than the buffer holds, is
// a protocol violation: returning the error fails the command and tears down
// the session rather than completing the read GOOD with silently short data.
func (s *Session) handleDataIn(din *iscsi.DataIn) error {
	s.mu.Lock()
	p := s.pending[din.ITT]
	if p == nil {
		s.mu.Unlock()
		return nil
	}
	off := int(din.BufferOffset)
	if off+len(din.Data) > len(p.buf) {
		s.mu.Unlock()
		return fmt.Errorf("initiator: Data-In for ITT %d spans [%d,%d) beyond %d-byte buffer",
			din.ITT, off, off+len(din.Data), len(p.buf))
	}
	if p.filled+len(din.Data) > len(p.buf) {
		s.mu.Unlock()
		return fmt.Errorf("initiator: Data-In for ITT %d over-delivers: %d bytes into a %d-byte buffer",
			din.ITT, p.filled+len(din.Data), len(p.buf))
	}
	copy(p.buf[off:], din.Data)
	p.filled += len(din.Data)
	if din.StatusPresent && din.Final {
		p.status = din.Status
		if iscsi.SNAfter(din.StatSN+1, s.expStatSN) {
			s.expStatSN = din.StatSN + 1
		}
		delete(s.pending, din.ITT)
		s.mu.Unlock()
		p.done <- struct{}{}
		return nil
	}
	s.mu.Unlock()
	return nil
}

func (s *Session) handleResponse(resp *iscsi.SCSIResponse) {
	s.mu.Lock()
	p := s.pending[resp.ITT]
	if p == nil {
		s.mu.Unlock()
		return
	}
	p.status = resp.Status
	if len(resp.Sense) > 0 {
		if sense, err := scsi.DecodeSense(resp.Sense); err == nil {
			p.sense = sense
		}
	}
	if iscsi.SNAfter(resp.StatSN+1, s.expStatSN) {
		s.expStatSN = resp.StatSN + 1
	}
	delete(s.pending, resp.ITT)
	s.mu.Unlock()
	p.done <- struct{}{}
}

func (s *Session) completeNop(n *iscsi.NopIn) {
	s.mu.Lock()
	p := s.pending[n.ITT]
	if p != nil {
		delete(s.pending, n.ITT)
	}
	s.mu.Unlock()
	if p != nil {
		p.done <- struct{}{}
	}
}

// connFailed reacts to the loss of conn. Transient failures on a session
// with a Redial hook start (at most one) recovery goroutine and fail the
// outstanding commands with a retryable transientErr so their callers
// reissue them after reconnect; anything else — protocol violations,
// explicit closes, sessions without Redial — is terminal. Calls for a
// superseded connection are ignored.
func (s *Session) connFailed(conn net.Conn, err error, transient bool) {
	s.mu.Lock()
	if s.conn != conn {
		s.mu.Unlock()
		return
	}
	var failErr error
	if transient && s.cfg.Redial != nil && s.closedErr == nil {
		if !s.recovering {
			s.recovering = true
			s.recoverDone = make(chan struct{})
			go s.recover(conn, err)
		}
		failErr = &transientErr{err}
	} else {
		if s.closedErr == nil {
			s.closedErr = err
		}
		failErr = s.closedErr
	}
	pend := s.pending
	s.pending = make(map[uint32]*pendingCmd)
	s.mu.Unlock()
	conn.Close()
	for _, p := range pend {
		p.err = failErr
		p.done <- struct{}{}
	}
}

// recover redials and re-logs-in with capped exponential backoff. On success
// it installs the fresh connection and sequence state and starts a new read
// loop; after MaxRedials consecutive failures (or an explicit Close racing
// in) the session fails terminally. Either way the recoverDone channel is
// closed so commands parked in awaitRecovery proceed.
func (s *Session) recover(oldConn net.Conn, cause error) {
	oldConn.Close()
	lastErr := cause
	for attempt := 0; attempt < s.cfg.MaxRedials; attempt++ {
		if attempt > 0 {
			time.Sleep(s.backoff.Delay(attempt - 1))
		}
		s.mu.Lock()
		closed := s.closedErr != nil
		s.mu.Unlock()
		if closed {
			break
		}
		conn, err := s.cfg.Redial()
		if err != nil {
			lastErr = err
			continue
		}
		params, statSN, err := doLogin(conn, s.cfg)
		if err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		s.writeMu.Lock()
		s.mu.Lock()
		if s.closedErr != nil {
			s.mu.Unlock()
			s.writeMu.Unlock()
			conn.Close()
			break
		}
		s.conn = conn
		s.params = params
		s.itt = 1
		s.cmdSN = 2
		s.expStatSN = statSN
		done := make(chan struct{})
		s.readerDone = done
		s.recovering = false
		rd := s.recoverDone
		s.mu.Unlock()
		s.writeMu.Unlock()
		go s.readLoop(conn, done)
		close(rd)
		return
	}
	s.mu.Lock()
	if s.closedErr == nil {
		s.closedErr = fmt.Errorf("initiator: reconnect failed after %d attempts: %w", s.cfg.MaxRedials, lastErr)
	}
	s.recovering = false
	rd := s.recoverDone
	s.mu.Unlock()
	close(rd)
}

// awaitRecovery blocks until the in-progress reconnect settles. It returns
// nil when the session is usable again (the caller should reissue its
// command) and the terminal error when recovery gave up or the session was
// closed meanwhile.
func (s *Session) awaitRecovery() error {
	for {
		s.mu.Lock()
		if s.closedErr != nil {
			err := s.closedErr
			s.mu.Unlock()
			return err
		}
		if !s.recovering {
			s.mu.Unlock()
			return nil
		}
		ch := s.recoverDone
		s.mu.Unlock()
		<-ch
	}
}

// retryTransient reports whether err is a connection failure worth reissuing
// the command for on this session.
func (s *Session) retryTransient(err error) bool {
	var te *transientErr
	return errors.As(err, &te) && s.cfg.Redial != nil
}

// kickConn declares the current connection dead (a command deadline
// expired): closing it wakes the read loop, which fails outstanding
// commands and — with a Redial hook — starts recovery.
func (s *Session) kickConn() {
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	conn.Close()
}

// cmdTimer arms the per-command deadline. The returned channel is nil (and
// thus never fires in a select) when deadlines are disabled.
func (s *Session) cmdTimer() (<-chan time.Time, func()) {
	if s.cfg.CommandTimeout <= 0 {
		return nil, func() {}
	}
	t := time.NewTimer(s.cfg.CommandTimeout)
	return t.C, func() { t.Stop() }
}

// register allocates a task tag and tracks the command.
func (s *Session) register(p *pendingCmd) (itt, cmdSN, expStatSN uint32, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closedErr != nil {
		return 0, 0, 0, s.closedErr
	}
	s.itt++
	s.cmdSN++
	itt = s.itt
	s.pending[itt] = p
	return itt, s.cmdSN, s.expStatSN, nil
}

// pduEncoder is a typed message that can encode into a caller-owned PDU.
// Raw *iscsi.PDU values satisfy it too (identity EncodeInto), so cold-path
// admin requests share this path instead of a separate raw-PDU sender.
type pduEncoder interface {
	EncodeInto(*iscsi.PDU) *iscsi.PDU
}

// send serializes m into the session's reusable wire PDU under writeMu, so
// steady-state command issue allocates nothing for framing. Wire errors are
// wrapped as transient: the connection is presumed dead and the command may
// be reissued after reconnect.
func (s *Session) send(m pduEncoder) error {
	s.writeMu.Lock()
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	_, err := m.EncodeInto(&s.wirePDU).WriteTo(conn)
	s.writeMu.Unlock()
	if err != nil {
		// The writer can notice a dead connection before the read loop
		// does; report it here so recovery starts immediately instead of
		// the caller burning its retry budget against the same corpse.
		s.connFailed(conn, err, true)
		return &transientErr{err}
	}
	return nil
}

func (s *Session) unregister(itt uint32) {
	s.mu.Lock()
	delete(s.pending, itt)
	s.mu.Unlock()
}

// Read reads blocks*BlockSize bytes at lba. blockSize is the device block
// size (learned via Capacity). Callers that already own a destination buffer
// should prefer ReadInto, which avoids the per-read allocation.
func (s *Session) Read(lba uint64, blocks uint32, blockSize int) ([]byte, error) {
	dst := make([]byte, int(blocks)*blockSize)
	n, err := s.ReadInto(dst, lba, blocks, blockSize)
	if err != nil {
		return nil, err
	}
	return dst[:n], nil
}

// ReadInto reads blocks*blockSize bytes at lba directly into dst, which must
// be at least that long. Data-In segments land in dst as they arrive, so the
// read path performs no per-command allocation or assembly copy. Returns the
// number of bytes the target delivered.
func (s *Session) ReadInto(dst []byte, lba uint64, blocks uint32, blockSize int) (int, error) {
	cdb := scsi.ReadCDB(lba, blocks)
	n := int(blocks) * blockSize
	if len(dst) < n {
		return 0, fmt.Errorf("initiator: destination %d bytes, transfer needs %d", len(dst), n)
	}
	sp := s.startCmdSpan("read", n)
	if sc := sp.Context(); sc.Valid() {
		// Bind the command's context so fabric hop charges on this
		// goroutine (gateway ingress/egress, MB-FWD) join the trace.
		prev, had := obs.Bind(sc)
		defer obs.Restore(prev, had)
	}
	got, err := s.execRead(&cdb, dst[:n], sp.Context())
	if err != nil {
		sp.Abort()
		return 0, err
	}
	sp.End()
	return got, nil
}

// execRead issues a read-direction command whose Data-In sequence fills dst,
// reissuing it across reconnects while failures stay transient.
func (s *Session) execRead(cdb *scsi.CDB, dst []byte, sc obs.SpanContext) (int, error) {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	var (
		n   int
		err error
	)
	for attempt := 0; attempt < maxCmdAttempts; attempt++ {
		n, err = s.execReadOnce(cdb, dst, sc)
		if err == nil || !s.retryTransient(err) {
			return n, err
		}
		if rerr := s.awaitRecovery(); rerr != nil {
			return 0, rerr
		}
	}
	return 0, err
}

// execReadOnce runs one attempt of a read-direction command.
func (s *Session) execReadOnce(cdb *scsi.CDB, dst []byte, sc obs.SpanContext) (int, error) {
	p := getPending()
	p.buf = dst
	p.cmd = iscsi.SCSICommand{
		Final:                      true,
		Read:                       len(dst) > 0,
		ExpectedDataTransferLength: uint32(len(dst)),
	}
	if _, err := cdb.EncodeInto(p.cmd.CDB[:]); err != nil {
		putPending(p)
		return 0, err
	}
	itt, cmdSN, expStatSN, err := s.register(p)
	if err != nil {
		putPending(p)
		return 0, err
	}
	p.cmd.ITT = itt
	p.cmd.CmdSN = cmdSN
	p.cmd.ExpStatSN = expStatSN
	s.putTrace(itt, sc)
	if err := s.send(&p.cmd); err != nil {
		// Not pooled: a concurrent connFailed may still signal this command.
		s.unregister(itt)
		return 0, err
	}
	tc, stop := s.cmdTimer()
	defer stop()
	select {
	case <-p.done:
	case <-tc:
		s.kickConn()
		<-p.done
	}
	filled, status, sense, perr := p.filled, p.status, p.sense, p.err
	putPending(p)
	if perr != nil {
		return 0, perr
	}
	if sense != nil {
		return 0, sense
	}
	if status != byte(scsi.StatusGood) {
		return 0, fmt.Errorf("initiator: %v", scsi.Status(status))
	}
	return filled, nil
}

// Write writes data at lba. len(data) must be a multiple of blockSize. The
// command is reissued across reconnects while failures stay transient
// (block writes are idempotent).
func (s *Session) Write(lba uint64, data []byte, blockSize int) error {
	if blockSize <= 0 || len(data)%blockSize != 0 {
		return fmt.Errorf("initiator: write length %d is not a multiple of block size %d", len(data), blockSize)
	}
	cdb := scsi.WriteCDB(lba, uint32(len(data)/blockSize))
	sp := s.startCmdSpan("write", len(data))
	defer sp.End()
	if sc := sp.Context(); sc.Valid() {
		// Bind the command's context so fabric hop charges on this
		// goroutine (gateway ingress/egress, MB-FWD) join the trace.
		prev, had := obs.Bind(sc)
		defer obs.Restore(prev, had)
	}

	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	var err error
	for attempt := 0; attempt < maxCmdAttempts; attempt++ {
		err = s.execWriteOnce(&cdb, data, sp.Context())
		if err == nil || !s.retryTransient(err) {
			return err
		}
		if rerr := s.awaitRecovery(); rerr != nil {
			return rerr
		}
	}
	return err
}

// execWriteOnce runs one attempt of a write command: immediate data, then
// R2T-solicited Data-Out bursts, then the status wait.
func (s *Session) execWriteOnce(cdb *scsi.CDB, data []byte, sc obs.SpanContext) error {
	params := s.Params()
	// Immediate (unsolicited) data up to FirstBurstLength.
	immediate := 0
	if params.ImmediateData && !params.InitialR2T {
		immediate = len(data)
		if immediate > params.FirstBurstLength {
			immediate = params.FirstBurstLength
		}
		if immediate > params.MaxRecvDataSegmentLength {
			immediate = params.MaxRecvDataSegmentLength
		}
	}
	p := getPending()
	p.cmd = iscsi.SCSICommand{
		Final:                      true,
		Write:                      true,
		ExpectedDataTransferLength: uint32(len(data)),
		Data:                       data[:immediate],
	}
	if _, err := cdb.EncodeInto(p.cmd.CDB[:]); err != nil {
		putPending(p)
		return err
	}
	itt, cmdSN, expStatSN, err := s.register(p)
	if err != nil {
		putPending(p)
		return err
	}
	p.cmd.ITT = itt
	p.cmd.CmdSN = cmdSN
	p.cmd.ExpStatSN = expStatSN
	s.putTrace(itt, sc)
	if err := s.send(&p.cmd); err != nil {
		// Not pooled: a concurrent connFailed may still signal this command.
		s.unregister(itt)
		return err
	}

	tc, stop := s.cmdTimer()
	defer stop()

	// Serve R2Ts until the transfer is fully solicited.
	sent := immediate
	for sent < len(data) {
		var r2t *iscsi.R2T
		select {
		case r2t = <-p.r2t:
		case <-p.done:
			perr, status := p.err, p.status
			putPending(p)
			if perr != nil {
				return perr
			}
			return fmt.Errorf("initiator: write completed before data transfer (status %v)", scsi.Status(status))
		case <-tc:
			s.kickConn()
			<-p.done
			perr := p.err
			putPending(p)
			if perr != nil {
				return perr
			}
			return fmt.Errorf("initiator: write deadline exceeded awaiting R2T")
		}
		err := s.sendBurst(itt, r2t, data, params)
		sent = int(r2t.BufferOffset) + int(r2t.DesiredLength)
		r2tPool.Put(r2t)
		if err != nil {
			// Not pooled: a concurrent connFailed may still signal this command.
			s.unregister(itt)
			return err
		}
	}

	select {
	case <-p.done:
	case <-tc:
		s.kickConn()
		<-p.done
	}
	status, sense, perr := p.status, p.sense, p.err
	putPending(p)
	if perr != nil {
		return perr
	}
	if sense != nil {
		return sense
	}
	if status != byte(scsi.StatusGood) {
		return fmt.Errorf("initiator: %v", scsi.Status(status))
	}
	return nil
}

// sendBurst answers one R2T with Data-Out PDUs chunked to the negotiated
// segment length.
func (s *Session) sendBurst(itt uint32, r2t *iscsi.R2T, data []byte, params iscsi.Params) error {
	start := int(r2t.BufferOffset)
	end := start + int(r2t.DesiredLength)
	if end > len(data) {
		return fmt.Errorf("initiator: R2T solicits bytes [%d,%d) beyond transfer of %d", start, end, len(data))
	}
	maxSeg := params.MaxRecvDataSegmentLength
	if maxSeg <= 0 {
		maxSeg = 8192
	}
	dout := iscsi.DataOut{ITT: itt, TTT: r2t.TTT}
	for off := start; off < end; {
		segEnd := off + maxSeg
		if segEnd > end {
			segEnd = end
		}
		dout.Final = segEnd == end
		dout.BufferOffset = uint32(off)
		dout.Data = data[off:segEnd]
		if err := s.send(&dout); err != nil {
			return err
		}
		dout.DataSN++
		off = segEnd
	}
	return nil
}
