// Package initiator implements the iSCSI initiator used by tenant VMs (and
// by the active-relay middle-box's pseudo-client): login with the StorM
// source-port exposure, tag-based multiplexing of outstanding commands,
// immediate data, and R2T-solicited Data-Out sequences.
package initiator

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"repro/internal/iscsi"
	"repro/internal/obs"
	"repro/internal/scsi"
)

// Errors returned by session operations.
var (
	ErrSessionClosed = errors.New("initiator: session closed")
	ErrLoginFailed   = errors.New("initiator: login failed")
)

// Config describes the session to establish.
type Config struct {
	// InitiatorIQN names this initiator.
	InitiatorIQN string
	// TargetIQN names the volume's target.
	TargetIQN string
	// AttachedVM optionally carries the owning VM's name for StorM's
	// connection attribution.
	AttachedVM string
	// Params are the desired operational parameters (DefaultParams when
	// zero).
	Params iscsi.Params
	// QueueDepth bounds locally outstanding commands (default 32,
	// Open-iSCSI's node.session.queue_depth).
	QueueDepth int
	// Obs optionally records per-command latency spans into the registry
	// under "stage.<Stage>.read" / "stage.<Stage>.write". Nil disables
	// tracing (no histogram work on the hot path).
	Obs *obs.Registry
	// Stage labels this session's spans (obs.StageInitiator when empty);
	// a relay's pseudo-client session uses its relay.forward stage.
	Stage string
}

// pendingCmd tracks one outstanding command. The done channel is buffered
// with capacity 1 and receives exactly one completion signal (the completer
// deletes the command from the pending map under the session mutex before
// signalling, so no command can be signalled twice).
type pendingCmd struct {
	buf    []byte // Data-In assembly for reads
	filled int
	r2t    chan *iscsi.R2T
	done   chan struct{}
	cmd    iscsi.SCSICommand // per-command frame scratch, reused via the pool

	status byte
	sense  *scsi.Sense
	err    error
}

// pcPool recycles pendingCmds (with their channels) across commands, so
// steady-state command issue allocates neither tracking state nor channels.
var pcPool = sync.Pool{New: func() any {
	return &pendingCmd{done: make(chan struct{}, 1), r2t: make(chan *iscsi.R2T, 4)}
}}

// r2tPool recycles the R2T structs the read loop hands to waiting writers.
var r2tPool = sync.Pool{New: func() any { return new(iscsi.R2T) }}

func getPending() *pendingCmd {
	p := pcPool.Get().(*pendingCmd)
	p.buf = nil
	p.filled = 0
	p.status = 0
	p.sense = nil
	p.err = nil
	return p
}

// putPending returns p to the pool. Only call after the command's single
// completion signal has been consumed (or before it was ever registered):
// a command abandoned mid-flight may still be signalled by a concurrent
// failAll, and pooling it then would leak that signal into the next user.
func putPending(p *pendingCmd) {
	p.buf = nil      // don't pin the caller's buffer while pooled
	p.cmd.Data = nil // likewise for the write payload
	for {
		select {
		case r := <-p.r2t: // unconsumed R2Ts from an aborted write
			r2tPool.Put(r)
		default:
			pcPool.Put(p)
			return
		}
	}
}

// Session is a logged-in iSCSI session. All methods are safe for concurrent
// use; multiple application threads share one session, as Fio threads share
// a volume connection in the paper's setup.
type Session struct {
	conn   net.Conn
	params iscsi.Params
	cfg    Config

	writeMu sync.Mutex
	wirePDU iscsi.PDU // reusable encode target for outgoing PDUs, guarded by writeMu

	mu        sync.Mutex
	itt       uint32
	cmdSN     uint32
	expStatSN uint32
	pending   map[uint32]*pendingCmd
	closedErr error

	sem        chan struct{}
	readerDone chan struct{}

	readTimer  obs.Timer
	writeTimer obs.Timer
}

// Login establishes a session over conn. The local TCP source port is
// exposed in the login text (the paper's modified Login Session code) so the
// platform can attribute the connection.
func Login(conn net.Conn, cfg Config) (*Session, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 32
	}
	if cfg.Params == (iscsi.Params{}) {
		cfg.Params = iscsi.DefaultParams()
	}
	pairs := cfg.Params.Pairs()
	pairs[iscsi.KeyInitiatorName] = cfg.InitiatorIQN
	pairs[iscsi.KeyTargetName] = cfg.TargetIQN
	pairs[iscsi.KeySessionType] = "Normal"
	if port := localPort(conn); port != 0 {
		pairs[iscsi.KeySourcePort] = strconv.Itoa(port)
	}
	if cfg.AttachedVM != "" {
		pairs[iscsi.KeyAttachedVM] = cfg.AttachedVM
	}
	req := &iscsi.LoginRequest{
		Transit: true,
		CSG:     iscsi.StageOperational,
		NSG:     iscsi.StageFullFeature,
		ISID:    [6]byte{0x80, 0, 0, 0, 0, 1},
		ITT:     1,
		CmdSN:   1,
		Pairs:   pairs,
	}
	if _, err := req.Encode().WriteTo(conn); err != nil {
		return nil, fmt.Errorf("initiator: send login: %w", err)
	}
	pdu, err := iscsi.ReadPDU(conn)
	if err != nil {
		return nil, fmt.Errorf("initiator: read login response: %w", err)
	}
	resp, err := iscsi.ParseLoginResponse(pdu)
	if err != nil {
		return nil, err
	}
	if resp.StatusClass != iscsi.LoginStatusSuccess {
		return nil, fmt.Errorf("%w: status class 0x%02x detail 0x%02x",
			ErrLoginFailed, resp.StatusClass, resp.StatusDetail)
	}
	params, err := cfg.Params.Negotiate(resp.Pairs)
	if err != nil {
		return nil, err
	}
	s := &Session{
		conn:       conn,
		params:     params,
		cfg:        cfg,
		itt:        1,
		cmdSN:      2,
		expStatSN:  resp.StatSN,
		pending:    make(map[uint32]*pendingCmd),
		sem:        make(chan struct{}, cfg.QueueDepth),
		readerDone: make(chan struct{}),
	}
	if cfg.Obs != nil {
		stage := cfg.Stage
		if stage == "" {
			stage = obs.StageInitiator
		}
		s.readTimer = cfg.Obs.Timer(obs.StagePrefix + stage + ".read")
		s.writeTimer = cfg.Obs.Timer(obs.StagePrefix + stage + ".write")
	}
	go s.readLoop()
	return s, nil
}

// Params returns the negotiated operational parameters.
func (s *Session) Params() iscsi.Params { return s.params }

// Conn returns the underlying connection.
func (s *Session) Conn() net.Conn { return s.conn }

// localPort extracts the TCP source port from the connection, if available.
func localPort(conn net.Conn) int {
	addr := conn.LocalAddr()
	if addr == nil {
		return 0
	}
	_, portStr, err := net.SplitHostPort(addr.String())
	if err != nil {
		return 0
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return 0
	}
	return port
}

// readLoop demultiplexes target PDUs to their outstanding commands. The
// Data-In and Response parse targets live across iterations — each is fully
// consumed before the next PDU, so the loop itself allocates nothing.
func (s *Session) readLoop() {
	defer close(s.readerDone)
	var (
		din  iscsi.DataIn
		resp iscsi.SCSIResponse
	)
	for {
		pdu, err := iscsi.ReadPDU(s.conn)
		if err != nil {
			s.failAll(err)
			return
		}
		switch pdu.Op() {
		case iscsi.OpSCSIDataIn:
			if err := iscsi.ParseDataInInto(&din, pdu); err != nil {
				s.failAll(err)
				return
			}
			s.handleDataIn(&din)
		case iscsi.OpSCSIResponse:
			if err := iscsi.ParseSCSIResponseInto(&resp, pdu); err != nil {
				s.failAll(err)
				return
			}
			s.handleResponse(&resp)
		case iscsi.OpR2T:
			r2t := r2tPool.Get().(*iscsi.R2T)
			if err := iscsi.ParseR2TInto(r2t, pdu); err != nil {
				r2tPool.Put(r2t)
				s.failAll(err)
				return
			}
			s.mu.Lock()
			p := s.pending[r2t.ITT]
			s.mu.Unlock()
			if p != nil && p.r2t != nil {
				p.r2t <- r2t
			} else {
				r2tPool.Put(r2t)
			}
		case iscsi.OpNopIn:
			n, err := iscsi.ParseNopIn(pdu)
			if err != nil {
				s.failAll(err)
				return
			}
			s.completeNop(n)
		case iscsi.OpTextResp:
			s.mu.Lock()
			p := s.pending[pdu.ITT()]
			if p != nil {
				p.buf = append([]byte(nil), pdu.Data...)
				p.filled = len(pdu.Data)
				delete(s.pending, pdu.ITT())
			}
			s.mu.Unlock()
			if p != nil {
				p.done <- struct{}{}
			}
		case iscsi.OpLogoutResp:
			s.failAll(ErrSessionClosed)
			return
		case iscsi.OpReject:
			rej, _ := iscsi.ParseReject(pdu)
			s.failAll(fmt.Errorf("initiator: target rejected PDU (reason 0x%02x)", rej.Reason))
			return
		default:
			s.failAll(fmt.Errorf("initiator: unexpected PDU %v", pdu.Op()))
			return
		}
		// Every case above consumes the data segment synchronously (copying
		// into the pending command's buffer or decoding into typed fields),
		// so the pooled segment can be recycled here.
		pdu.Release()
	}
}

func (s *Session) handleDataIn(din *iscsi.DataIn) {
	s.mu.Lock()
	p := s.pending[din.ITT]
	if p == nil {
		s.mu.Unlock()
		return
	}
	off := int(din.BufferOffset)
	if off+len(din.Data) <= len(p.buf) {
		copy(p.buf[off:], din.Data)
		p.filled += len(din.Data)
	}
	if din.StatusPresent && din.Final {
		p.status = din.Status
		if din.StatSN+1 > s.expStatSN {
			s.expStatSN = din.StatSN + 1
		}
		delete(s.pending, din.ITT)
		s.mu.Unlock()
		p.done <- struct{}{}
		return
	}
	s.mu.Unlock()
}

func (s *Session) handleResponse(resp *iscsi.SCSIResponse) {
	s.mu.Lock()
	p := s.pending[resp.ITT]
	if p == nil {
		s.mu.Unlock()
		return
	}
	p.status = resp.Status
	if len(resp.Sense) > 0 {
		if sense, err := scsi.DecodeSense(resp.Sense); err == nil {
			p.sense = sense
		}
	}
	if resp.StatSN+1 > s.expStatSN {
		s.expStatSN = resp.StatSN + 1
	}
	delete(s.pending, resp.ITT)
	s.mu.Unlock()
	p.done <- struct{}{}
}

func (s *Session) completeNop(n *iscsi.NopIn) {
	s.mu.Lock()
	p := s.pending[n.ITT]
	if p != nil {
		delete(s.pending, n.ITT)
	}
	s.mu.Unlock()
	if p != nil {
		p.done <- struct{}{}
	}
}

func (s *Session) failAll(err error) {
	s.mu.Lock()
	if s.closedErr == nil {
		s.closedErr = err
	}
	pend := s.pending
	s.pending = make(map[uint32]*pendingCmd)
	s.mu.Unlock()
	for _, p := range pend {
		p.err = err
		p.done <- struct{}{}
	}
}

// register allocates a task tag and tracks the command.
func (s *Session) register(p *pendingCmd) (itt, cmdSN, expStatSN uint32, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closedErr != nil {
		return 0, 0, 0, s.closedErr
	}
	s.itt++
	s.cmdSN++
	itt = s.itt
	s.pending[itt] = p
	return itt, s.cmdSN, s.expStatSN, nil
}

func (s *Session) sendPDU(p *iscsi.PDU) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	_, err := p.WriteTo(s.conn)
	return err
}

// pduEncoder is a typed message that can encode into a caller-owned PDU.
type pduEncoder interface {
	EncodeInto(*iscsi.PDU) *iscsi.PDU
}

// send serializes m into the session's reusable wire PDU under writeMu, so
// steady-state command issue allocates nothing for framing.
func (s *Session) send(m pduEncoder) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	_, err := m.EncodeInto(&s.wirePDU).WriteTo(s.conn)
	return err
}

func (s *Session) unregister(itt uint32) {
	s.mu.Lock()
	delete(s.pending, itt)
	s.mu.Unlock()
}

// Read reads blocks*BlockSize bytes at lba. blockSize is the device block
// size (learned via Capacity). Callers that already own a destination buffer
// should prefer ReadInto, which avoids the per-read allocation.
func (s *Session) Read(lba uint64, blocks uint32, blockSize int) ([]byte, error) {
	dst := make([]byte, int(blocks)*blockSize)
	n, err := s.ReadInto(dst, lba, blocks, blockSize)
	if err != nil {
		return nil, err
	}
	return dst[:n], nil
}

// ReadInto reads blocks*blockSize bytes at lba directly into dst, which must
// be at least that long. Data-In segments land in dst as they arrive, so the
// read path performs no per-command allocation or assembly copy. Returns the
// number of bytes the target delivered.
func (s *Session) ReadInto(dst []byte, lba uint64, blocks uint32, blockSize int) (int, error) {
	cdb := scsi.ReadCDB(lba, blocks)
	n := int(blocks) * blockSize
	if len(dst) < n {
		return 0, fmt.Errorf("initiator: destination %d bytes, transfer needs %d", len(dst), n)
	}
	var t0 time.Time
	if s.readTimer.Enabled() {
		t0 = time.Now()
	}
	got, err := s.execRead(&cdb, dst[:n])
	if err != nil {
		return 0, err
	}
	if s.readTimer.Enabled() {
		s.readTimer.Since(t0)
	}
	return got, nil
}

// execRead issues a read-direction command whose Data-In sequence fills dst.
func (s *Session) execRead(cdb *scsi.CDB, dst []byte) (int, error) {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	p := getPending()
	p.buf = dst
	p.cmd = iscsi.SCSICommand{
		Final:                      true,
		Read:                       len(dst) > 0,
		ExpectedDataTransferLength: uint32(len(dst)),
	}
	if _, err := cdb.EncodeInto(p.cmd.CDB[:]); err != nil {
		putPending(p)
		return 0, err
	}
	itt, cmdSN, expStatSN, err := s.register(p)
	if err != nil {
		putPending(p)
		return 0, err
	}
	p.cmd.ITT = itt
	p.cmd.CmdSN = cmdSN
	p.cmd.ExpStatSN = expStatSN
	if err := s.send(&p.cmd); err != nil {
		// Not pooled: a concurrent failAll may still signal this command.
		s.unregister(itt)
		return 0, err
	}
	<-p.done
	filled, status, sense, perr := p.filled, p.status, p.sense, p.err
	putPending(p)
	if perr != nil {
		return 0, perr
	}
	if sense != nil {
		return 0, sense
	}
	if status != byte(scsi.StatusGood) {
		return 0, fmt.Errorf("initiator: %v", scsi.Status(status))
	}
	return filled, nil
}

// Write writes data at lba. len(data) must be a multiple of blockSize.
func (s *Session) Write(lba uint64, data []byte, blockSize int) error {
	if blockSize <= 0 || len(data)%blockSize != 0 {
		return fmt.Errorf("initiator: write length %d is not a multiple of block size %d", len(data), blockSize)
	}
	cdb := scsi.WriteCDB(lba, uint32(len(data)/blockSize))
	var t0 time.Time
	if s.writeTimer.Enabled() {
		t0 = time.Now()
		defer func() { s.writeTimer.Since(t0) }()
	}

	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	// Immediate (unsolicited) data up to FirstBurstLength.
	immediate := 0
	if s.params.ImmediateData && !s.params.InitialR2T {
		immediate = len(data)
		if immediate > s.params.FirstBurstLength {
			immediate = s.params.FirstBurstLength
		}
		if immediate > s.params.MaxRecvDataSegmentLength {
			immediate = s.params.MaxRecvDataSegmentLength
		}
	}
	p := getPending()
	p.cmd = iscsi.SCSICommand{
		Final:                      true,
		Write:                      true,
		ExpectedDataTransferLength: uint32(len(data)),
		Data:                       data[:immediate],
	}
	if _, err := cdb.EncodeInto(p.cmd.CDB[:]); err != nil {
		putPending(p)
		return err
	}
	itt, cmdSN, expStatSN, err := s.register(p)
	if err != nil {
		putPending(p)
		return err
	}
	p.cmd.ITT = itt
	p.cmd.CmdSN = cmdSN
	p.cmd.ExpStatSN = expStatSN
	if err := s.send(&p.cmd); err != nil {
		// Not pooled: a concurrent failAll may still signal this command.
		s.unregister(itt)
		return err
	}

	// Serve R2Ts until the transfer is fully solicited.
	sent := immediate
	for sent < len(data) {
		var r2t *iscsi.R2T
		select {
		case r2t = <-p.r2t:
		case <-p.done:
			perr, status := p.err, p.status
			putPending(p)
			if perr != nil {
				return perr
			}
			return fmt.Errorf("initiator: write completed before data transfer (status %v)", scsi.Status(status))
		}
		err := s.sendBurst(itt, r2t, data)
		sent = int(r2t.BufferOffset) + int(r2t.DesiredLength)
		r2tPool.Put(r2t)
		if err != nil {
			// Not pooled: a concurrent failAll may still signal this command.
			s.unregister(itt)
			return err
		}
	}

	<-p.done
	status, sense, perr := p.status, p.sense, p.err
	putPending(p)
	if perr != nil {
		return perr
	}
	if sense != nil {
		return sense
	}
	if status != byte(scsi.StatusGood) {
		return fmt.Errorf("initiator: %v", scsi.Status(status))
	}
	return nil
}

// sendBurst answers one R2T with Data-Out PDUs chunked to the negotiated
// segment length.
func (s *Session) sendBurst(itt uint32, r2t *iscsi.R2T, data []byte) error {
	start := int(r2t.BufferOffset)
	end := start + int(r2t.DesiredLength)
	if end > len(data) {
		return fmt.Errorf("initiator: R2T solicits bytes [%d,%d) beyond transfer of %d", start, end, len(data))
	}
	maxSeg := s.params.MaxRecvDataSegmentLength
	if maxSeg <= 0 {
		maxSeg = 8192
	}
	dout := iscsi.DataOut{ITT: itt, TTT: r2t.TTT}
	for off := start; off < end; {
		segEnd := off + maxSeg
		if segEnd > end {
			segEnd = end
		}
		dout.Final = segEnd == end
		dout.BufferOffset = uint32(off)
		dout.Data = data[off:segEnd]
		if err := s.send(&dout); err != nil {
			return err
		}
		dout.DataSN++
		off = segEnd
	}
	return nil
}
