package initiator

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/iscsi"
	"repro/internal/obs"
	"repro/internal/scsi"
)

// adminRead issues a small read-direction admin command, allocating the
// response buffer (cold path; the data-path reads go through ReadInto).
func (s *Session) adminRead(cdb *scsi.CDB, n int) ([]byte, error) {
	buf := make([]byte, n)
	got, err := s.execRead(cdb, buf, obs.SpanContext{})
	if err != nil {
		return nil, err
	}
	return buf[:got], nil
}

// Capacity queries the device geometry with READ CAPACITY(10), escalating
// to READ CAPACITY(16) for large devices per SBC-3.
func (s *Session) Capacity() (scsi.Capacity, error) {
	data, err := s.adminRead(scsi.NewReadCapacity10(), 8)
	if err != nil {
		return scsi.Capacity{}, err
	}
	cap10, err := scsi.DecodeCapacity10(data)
	if err != nil {
		return scsi.Capacity{}, err
	}
	if cap10.LastLBA != 0xFFFFFFFF {
		return cap10, nil
	}
	data, err = s.adminRead(scsi.NewReadCapacity16(), 32)
	if err != nil {
		return scsi.Capacity{}, err
	}
	return scsi.DecodeCapacity16(data)
}

// Inquiry queries the standard inquiry data.
func (s *Session) Inquiry() (*scsi.InquiryData, error) {
	data, err := s.adminRead(scsi.NewInquiry(36), 36)
	if err != nil {
		return nil, err
	}
	return scsi.DecodeInquiry(data)
}

// TestUnitReady probes the logical unit.
func (s *Session) TestUnitReady() error {
	_, err := s.adminRead(scsi.NewTestUnitReady(), 0)
	return err
}

// Flush issues SYNCHRONIZE CACHE over the whole medium.
func (s *Session) Flush() error {
	_, err := s.adminRead(scsi.NewSyncCache(0, 0), 0)
	return err
}

// Ping round-trips a NOP-Out/NOP-In pair.
func (s *Session) Ping() error {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	p := &pendingCmd{done: make(chan struct{}, 1)}
	itt, cmdSN, expStatSN, sc, err := s.register(p)
	if err != nil {
		return err
	}
	nop := &iscsi.NopOut{ITT: itt, TTT: 0xFFFFFFFF, CmdSN: cmdSN, ExpStatSN: expStatSN}
	if err := s.send(sc, nop); err != nil {
		s.unregister(itt)
		return err
	}
	<-p.done
	return p.err
}

// Discover issues a SendTargets=All text request and returns the target
// names the server exports (the discovery-session flow).
func (s *Session) Discover() ([]string, error) {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	p := &pendingCmd{done: make(chan struct{}, 1)}
	itt, cmdSN, expStatSN, sc, err := s.register(p)
	if err != nil {
		return nil, err
	}
	req := &iscsi.PDU{}
	req.SetOp(iscsi.OpTextReq)
	req.SetImmediate(true)
	req.BHS[1] = 0x80 // final
	req.SetITT(itt)
	binary.BigEndian.PutUint32(req.BHS[20:24], 0xFFFFFFFF) // TTT reserved
	binary.BigEndian.PutUint32(req.BHS[24:28], cmdSN)
	binary.BigEndian.PutUint32(req.BHS[28:32], expStatSN)
	data := []byte("SendTargets=All\x00")
	req.Data = data
	req.BHS[5] = byte(len(data) >> 16)
	req.BHS[6] = byte(len(data) >> 8)
	req.BHS[7] = byte(len(data))
	if err := s.send(sc, req); err != nil {
		s.unregister(itt)
		return nil, err
	}
	<-p.done
	if p.err != nil {
		return nil, p.err
	}
	var names []string
	for _, kv := range bytes.Split(p.buf[:p.filled], []byte{0}) {
		const prefix = "TargetName="
		if v, ok := bytes.CutPrefix(kv, []byte(prefix)); ok && len(v) > 0 {
			names = append(names, string(v))
		}
	}
	return names, nil
}

// Logout ends the session gracefully and closes every connection (a session
// logout on the leading connection closes the whole MC/S set). The session
// is terminal afterwards: a reconnect-enabled session will not redial.
func (s *Session) Logout() error {
	s.mu.Lock()
	s.cmdSN++
	lead := s.conns[0]
	req := &iscsi.LogoutRequest{Reason: 0, ITT: s.itt + 1, CmdSN: s.cmdSN, ExpStatSN: lead.expStatSN}
	conns := append([]*sconn(nil), s.conns...)
	s.mu.Unlock()
	err := s.send(lead, req.Encode())
	s.mu.Lock()
	if s.closedErr == nil {
		s.closedErr = ErrSessionClosed
	}
	s.mu.Unlock()
	<-lead.done
	var cerr error
	for _, sc := range conns {
		e := sc.conn.Close()
		if sc == lead {
			cerr = e
		}
	}
	for _, sc := range conns {
		<-sc.done
	}
	if err != nil {
		return err
	}
	return cerr
}

// Close abandons the session, failing outstanding commands and closing every
// connection. No reconnect is attempted.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closedErr == nil {
		s.closedErr = ErrSessionClosed
	}
	conns := append([]*sconn(nil), s.conns...)
	s.mu.Unlock()
	var err error
	for i, sc := range conns {
		e := sc.conn.Close()
		if i == 0 {
			err = e
		}
	}
	for _, sc := range conns {
		<-sc.done
	}
	return err
}

// Device adapts a session to the blockdev.Device interface so upper layers
// (file systems, databases, workloads) can use a remote volume exactly like
// a local disk — this is the virtual block device a tenant VM sees.
type Device struct {
	sess      *Session
	blockSize int
	blocks    uint64
}

var _ blockdev.Device = (*Device)(nil)

// OpenDevice queries the session's capacity and returns a device view.
func OpenDevice(sess *Session) (*Device, error) {
	c, err := sess.Capacity()
	if err != nil {
		return nil, fmt.Errorf("initiator: read capacity: %w", err)
	}
	if c.BlockSize == 0 {
		return nil, fmt.Errorf("initiator: target reported zero block size")
	}
	return &Device{sess: sess, blockSize: int(c.BlockSize), blocks: c.Blocks()}, nil
}

// Session returns the underlying session.
func (d *Device) Session() *Session { return d.sess }

// BlockSize implements blockdev.Device.
func (d *Device) BlockSize() int { return d.blockSize }

// Blocks implements blockdev.Device.
func (d *Device) Blocks() uint64 { return d.blocks }

// ReadAt implements blockdev.Device. Data-In segments land directly in p —
// no staging buffer or assembly copy.
func (d *Device) ReadAt(p []byte, lba uint64) error {
	if len(p) == 0 || len(p)%d.blockSize != 0 {
		return blockdev.ErrBadLength
	}
	n, err := d.sess.ReadInto(p, lba, uint32(len(p)/d.blockSize), d.blockSize)
	if err != nil {
		return err
	}
	if n != len(p) {
		return fmt.Errorf("initiator: short read: %d of %d bytes", n, len(p))
	}
	return nil
}

// WriteAt implements blockdev.Device.
func (d *Device) WriteAt(p []byte, lba uint64) error {
	if len(p) == 0 || len(p)%d.blockSize != 0 {
		return blockdev.ErrBadLength
	}
	return d.sess.Write(lba, p, d.blockSize)
}

// Flush implements blockdev.Device.
func (d *Device) Flush() error { return d.sess.Flush() }

// Close implements blockdev.Device by logging out the session.
func (d *Device) Close() error { return d.sess.Logout() }
