package initiator

import (
	"bytes"
	"net"
	"sync"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/iscsi"
	"repro/internal/target"
)

// chanListener feeds pre-connected pipes to a target server.
type chanListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

func newChanListener() *chanListener {
	return &chanListener{conns: make(chan net.Conn), done: make(chan struct{})}
}

func (l *chanListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *chanListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *chanListener) Addr() net.Addr { return &net.TCPAddr{} }

const rtIQN = "iqn.2016-04.edu.purdue.storm:rt"

// rtSession builds a full initiator<->target session over net.Pipe.
func rtSession(t *testing.T, cfg Config) *Session {
	t.Helper()
	dev, err := blockdev.NewMemDisk(512, 4096)
	if err != nil {
		t.Fatal(err)
	}
	srv := target.NewServer()
	if err := srv.AddTarget(rtIQN, dev); err != nil {
		t.Fatal(err)
	}
	ln := newChanListener()
	go srv.Serve(ln)
	t.Cleanup(srv.Close)

	client, server := net.Pipe()
	select {
	case ln.conns <- server:
	case <-ln.done:
		t.Fatal("listener closed")
	}
	if cfg.InitiatorIQN == "" {
		cfg.InitiatorIQN = "iqn.rt-client"
	}
	if cfg.TargetIQN == "" {
		cfg.TargetIQN = rtIQN
	}
	sess, err := Login(client, cfg)
	if err != nil {
		t.Fatalf("Login: %v", err)
	}
	t.Cleanup(func() { _ = sess.Close() })
	return sess
}

func TestRoundTripReadWrite(t *testing.T) {
	sess := rtSession(t, Config{})
	want := bytes.Repeat([]byte{0x3C}, 8192)
	if err := sess.Write(32, want, 512); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := sess.Read(32, 16, 512)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("round trip corrupted data")
	}
}

func TestRoundTripLargeWriteSolicited(t *testing.T) {
	// Force the R2T path with a tiny first burst.
	params := iscsi.DefaultParams()
	params.ImmediateData = true
	params.FirstBurstLength = 8 * 1024
	params.MaxBurstLength = 16 * 1024
	params.MaxRecvDataSegmentLength = 8 * 1024
	sess := rtSession(t, Config{Params: params})
	want := make([]byte, 128*1024)
	for i := range want {
		want[i] = byte(i * 13)
	}
	if err := sess.Write(0, want, 512); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := sess.Read(0, uint32(len(want)/512), 512)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("multi-R2T write corrupted")
	}
}

func TestRoundTripHelpers(t *testing.T) {
	sess := rtSession(t, Config{})
	c, err := sess.Capacity()
	if err != nil || c.Blocks() != 4096 || c.BlockSize != 512 {
		t.Errorf("Capacity = %+v, %v", c, err)
	}
	inq, err := sess.Inquiry()
	if err != nil || inq.Vendor != "STORM" {
		t.Errorf("Inquiry = %+v, %v", inq, err)
	}
	if err := sess.TestUnitReady(); err != nil {
		t.Errorf("TestUnitReady: %v", err)
	}
	if err := sess.Flush(); err != nil {
		t.Errorf("Flush: %v", err)
	}
	if err := sess.Ping(); err != nil {
		t.Errorf("Ping: %v", err)
	}
	names, err := sess.Discover()
	if err != nil || len(names) != 1 || names[0] != rtIQN {
		t.Errorf("Discover = %v, %v", names, err)
	}
}

func TestRoundTripDeviceAndLogout(t *testing.T) {
	sess := rtSession(t, Config{})
	dev, err := OpenDevice(sess)
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	want := bytes.Repeat([]byte{5}, 1024)
	if err := dev.WriteAt(want, 8); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1024)
	if err := dev.ReadAt(got, 8); err != nil || !bytes.Equal(got, want) {
		t.Errorf("device round trip: %v", err)
	}
	if err := dev.Flush(); err != nil {
		t.Errorf("Flush: %v", err)
	}
	if dev.Session() != sess {
		t.Error("Session accessor wrong")
	}
	if err := dev.Close(); err != nil { // Logout path
		t.Errorf("Close/Logout: %v", err)
	}
}

func TestRoundTripConcurrentClients(t *testing.T) {
	sess := rtSession(t, Config{QueueDepth: 8})
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lba := uint64(g * 128)
			want := bytes.Repeat([]byte{byte(g + 1)}, 1024)
			for i := 0; i < 8; i++ {
				if err := sess.Write(lba, want, 512); err != nil {
					t.Errorf("g=%d Write: %v", g, err)
					return
				}
				got, err := sess.Read(lba, 2, 512)
				if err != nil || !bytes.Equal(got, want) {
					t.Errorf("g=%d Read: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
