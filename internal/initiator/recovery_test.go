package initiator

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/faults"
	"repro/internal/iscsi"
	"repro/internal/scsi"
	"repro/internal/target"
)

// stubSession logs a session in against a scripted target. The stub answers
// the login handshake with the given initial StatSN, then hands the server
// half of the pipe to serve.
func stubSession(t *testing.T, cfg Config, statSN uint32, serve func(conn net.Conn)) *Session {
	t.Helper()
	client, server := net.Pipe()
	go func() {
		pdu, err := iscsi.ReadPDU(server)
		if err != nil {
			return
		}
		req, err := iscsi.ParseLoginRequest(pdu)
		if err != nil {
			return
		}
		resp := &iscsi.LoginResponse{
			Transit:  true,
			CSG:      iscsi.StageOperational,
			NSG:      iscsi.StageFullFeature,
			ISID:     req.ISID,
			TSIH:     1,
			ITT:      req.ITT,
			StatSN:   statSN,
			ExpCmdSN: req.CmdSN + 1,
			MaxCmdSN: req.CmdSN + 32,
		}
		if _, err := resp.Encode().WriteTo(server); err != nil {
			return
		}
		serve(server)
	}()
	cfg.InitiatorIQN = "iqn.stub-client"
	cfg.TargetIQN = "iqn.stub-target"
	sess, err := Login(client, cfg)
	if err != nil {
		t.Fatalf("Login against stub: %v", err)
	}
	t.Cleanup(func() { _ = sess.Close() })
	return sess
}

// TestDataInOutOfBoundsFailsCommandAndSession covers the latent bug where a
// Data-In segment landing beyond the command buffer was silently dropped and
// the read completed GOOD with short data: it must fail the command and tear
// down the session.
func TestDataInOutOfBoundsFailsCommandAndSession(t *testing.T) {
	sess := stubSession(t, Config{}, 1, func(conn net.Conn) {
		pdu, err := iscsi.ReadPDU(conn)
		if err != nil {
			return
		}
		cmd, err := iscsi.ParseSCSICommand(pdu)
		if err != nil {
			return
		}
		din := &iscsi.DataIn{
			Final:         true,
			StatusPresent: true,
			Status:        byte(scsi.StatusGood),
			ITT:           cmd.ITT,
			StatSN:        2,
			BufferOffset:  1 << 20, // far beyond the 512-byte buffer
			Data:          bytes.Repeat([]byte{0xAB}, 64),
		}
		din.Encode().WriteTo(conn)
	})
	_, err := sess.Read(0, 1, 512)
	if err == nil {
		t.Fatal("Read with out-of-bounds Data-In returned nil error")
	}
	if !strings.Contains(err.Error(), "beyond") {
		t.Fatalf("Read error = %v, want out-of-bounds protocol error", err)
	}
	// The session must be dead, not limping.
	if _, err := sess.Read(0, 1, 512); err == nil {
		t.Fatal("session still accepts commands after protocol violation")
	}
}

// TestDataInOverDeliveryFails covers the second half of the same bug: total
// delivered bytes exceeding the buffer (overlapping segments) must also fail
// the command rather than complete GOOD.
func TestDataInOverDeliveryFails(t *testing.T) {
	sess := stubSession(t, Config{}, 1, func(conn net.Conn) {
		pdu, err := iscsi.ReadPDU(conn)
		if err != nil {
			return
		}
		cmd, err := iscsi.ParseSCSICommand(pdu)
		if err != nil {
			return
		}
		seg := bytes.Repeat([]byte{0x11}, 512)
		first := &iscsi.DataIn{ITT: cmd.ITT, BufferOffset: 0, Data: seg}
		first.Encode().WriteTo(conn)
		second := &iscsi.DataIn{
			Final: true, StatusPresent: true, Status: byte(scsi.StatusGood),
			ITT: cmd.ITT, StatSN: 2, BufferOffset: 0, Data: seg,
		}
		second.Encode().WriteTo(conn)
	})
	if _, err := sess.Read(0, 1, 512); err == nil || !strings.Contains(err.Error(), "over-delivers") {
		t.Fatalf("Read error = %v, want over-delivery protocol error", err)
	}
}

// TestStatSNWraparound drives expStatSN across the uint32 boundary and
// asserts every command acknowledges the previous status (the plain > would
// stall ExpStatSN at 0xFFFFFFFF forever).
func TestStatSNWraparound(t *testing.T) {
	statSNs := []uint32{0xFFFFFFFE, 0xFFFFFFFF, 0, 1}
	wantExp := []uint32{0xFFFFFFFE, 0xFFFFFFFF, 0, 1}
	got := make(chan []uint32, 1)
	sess := stubSession(t, Config{}, 0xFFFFFFFE, func(conn net.Conn) {
		var exps []uint32
		for _, sn := range statSNs {
			pdu, err := iscsi.ReadPDU(conn)
			if err != nil {
				return
			}
			cmd, err := iscsi.ParseSCSICommand(pdu)
			if err != nil {
				return
			}
			exps = append(exps, cmd.ExpStatSN)
			resp := &iscsi.SCSIResponse{ITT: cmd.ITT, Status: byte(scsi.StatusGood), StatSN: sn}
			if _, err := resp.Encode().WriteTo(conn); err != nil {
				return
			}
		}
		got <- exps
	})
	for i := range statSNs {
		if err := sess.TestUnitReady(); err != nil {
			t.Fatalf("command %d: %v", i, err)
		}
	}
	exps := <-got
	for i, want := range wantExp {
		if exps[i] != want {
			t.Errorf("command %d carried ExpStatSN %#x, want %#x", i, exps[i], want)
		}
	}
}

// redialHarness serves a real target and returns a session whose Redial hook
// feeds fresh pipes into it, plus the backing disk for verification.
func redialHarness(t *testing.T, cfg Config) (*Session, *blockdev.MemDisk) {
	t.Helper()
	dev, err := blockdev.NewMemDisk(512, 4096)
	if err != nil {
		t.Fatal(err)
	}
	srv := target.NewServer()
	if err := srv.AddTarget(rtIQN, dev); err != nil {
		t.Fatal(err)
	}
	ln := newChanListener()
	go srv.Serve(ln)
	t.Cleanup(srv.Close)

	dial := func() (net.Conn, error) {
		client, server := net.Pipe()
		select {
		case ln.conns <- server:
			return client, nil
		case <-ln.done:
			return nil, net.ErrClosed
		}
	}
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	cfg.InitiatorIQN = "iqn.rt-client"
	cfg.TargetIQN = rtIQN
	if cfg.Redial == nil {
		cfg.Redial = dial
	}
	cfg.RedialBackoffBase = time.Millisecond
	cfg.RedialBackoffCap = 4 * time.Millisecond
	sess, err := Login(conn, cfg)
	if err != nil {
		t.Fatalf("Login: %v", err)
	}
	t.Cleanup(func() { _ = sess.Close() })
	return sess, dev
}

// TestReconnectRetriesInFlightCommands kills the transport twice mid-workload
// (at schedule-determined points, no wall clocks) and asserts every write
// completes and lands: the session redials, re-logs-in, and reissues the
// failed commands instead of surfacing ErrSessionClosed.
func TestReconnectRetriesInFlightCommands(t *testing.T) {
	sess, dev := redialHarness(t, Config{QueueDepth: 8})

	sched := faults.NewSchedule()
	sched.At(6, "cut-1", func() { sess.Conn().Close() })
	sched.At(14, "cut-2", func() { sess.Conn().Close() })

	const (
		writers   = 4
		perWriter = 6
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers*perWriter)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(g + 1)}, 1024)
			for i := 0; i < perWriter; i++ {
				lba := uint64(g*perWriter+i) * 2
				if err := sess.Write(lba, payload, 512); err != nil {
					errs <- err
					return
				}
				sched.Step()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("write failed across reconnect: %v", err)
	}
	if fired := sched.Fired(); len(fired) != 2 {
		t.Fatalf("schedule fired %v, want both cuts", fired)
	}
	// Every write must be present on the backing disk.
	for g := 0; g < writers; g++ {
		want := bytes.Repeat([]byte{byte(g + 1)}, 1024)
		for i := 0; i < perWriter; i++ {
			lba := uint64(g*perWriter+i) * 2
			got := make([]byte, 1024)
			if err := dev.ReadAt(got, lba); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("writer %d block %d lost or corrupted after reconnects", g, i)
			}
		}
	}
}

// TestRedialExhaustionFailsTerminally verifies the backoff loop gives up
// after MaxRedials and the session reports a terminal error from then on.
func TestRedialExhaustionFailsTerminally(t *testing.T) {
	refused := errors.New("stub: dial refused")
	cfg := Config{
		MaxRedials: 2,
		Redial:     func() (net.Conn, error) { return nil, refused },
	}
	sess, _ := redialHarness(t, cfg)
	if err := sess.Write(0, make([]byte, 512), 512); err != nil {
		t.Fatalf("write before cut: %v", err)
	}
	sess.Conn().Close()
	err := sess.Write(0, make([]byte, 512), 512)
	if err == nil {
		t.Fatal("write succeeded with no reachable target")
	}
	if !strings.Contains(err.Error(), "reconnect failed") || !errors.Is(err, refused) {
		t.Fatalf("error = %v, want terminal reconnect failure wrapping the dial error", err)
	}
	if err := sess.Write(0, make([]byte, 512), 512); err == nil {
		t.Fatal("session accepted a command after terminal reconnect failure")
	}
}

// TestCommandTimeoutWithoutRedial verifies a per-command deadline fails a
// command stuck on an unresponsive target instead of hanging forever.
func TestCommandTimeoutWithoutRedial(t *testing.T) {
	sess := stubSession(t, Config{CommandTimeout: 30 * time.Millisecond}, 1, func(conn net.Conn) {
		// Black hole: swallow every PDU, answer nothing.
		for {
			if _, err := iscsi.ReadPDU(conn); err != nil {
				return
			}
		}
	})
	done := make(chan error, 1)
	go func() {
		_, err := sess.Read(0, 1, 512)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Read against black-hole target returned nil")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Read hung despite CommandTimeout")
	}
	if _, err := sess.Read(0, 1, 512); err == nil {
		t.Fatal("session alive after deadline blew with no Redial hook")
	}
}

// TestCommandTimeoutRedialsAndRetries starts against a black-hole target and
// verifies the deadline + reconnect path migrates the in-flight write onto a
// healthy target transparently.
func TestCommandTimeoutRedialsAndRetries(t *testing.T) {
	dev, err := blockdev.NewMemDisk(512, 4096)
	if err != nil {
		t.Fatal(err)
	}
	srv := target.NewServer()
	if err := srv.AddTarget("iqn.stub-target", dev); err != nil {
		t.Fatal(err)
	}
	ln := newChanListener()
	go srv.Serve(ln)
	t.Cleanup(srv.Close)

	cfg := Config{
		CommandTimeout:    30 * time.Millisecond,
		RedialBackoffBase: time.Millisecond,
		RedialBackoffCap:  4 * time.Millisecond,
		Redial: func() (net.Conn, error) {
			client, server := net.Pipe()
			select {
			case ln.conns <- server:
				return client, nil
			case <-ln.done:
				return nil, net.ErrClosed
			}
		},
	}
	sess := stubSession(t, cfg, 1, func(conn net.Conn) {
		for {
			if _, err := iscsi.ReadPDU(conn); err != nil {
				return
			}
		}
	})
	want := bytes.Repeat([]byte{0x7E}, 1024)
	if err := sess.Write(16, want, 512); err != nil {
		t.Fatalf("Write across deadline+redial: %v", err)
	}
	got := make([]byte, 1024)
	if err := dev.ReadAt(got, 16); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("write retried after timeout did not land on the healthy target")
	}
}
