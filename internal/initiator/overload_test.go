package initiator

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"

	"repro/internal/iscsi"
	"repro/internal/xerr"
)

// refusingRedial returns a Redial hook whose target always refuses the
// login with the given wire status, counting the attempts.
func refusingRedial(t *testing.T, attempts *atomic.Int32, class, detail byte) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		attempts.Add(1)
		client, server := net.Pipe()
		fakeTarget(t, server, class, detail)
		return client, nil
	}
}

// TestTerminalLoginRefusalStopsRedial is the regression test for redialing
// a target that has said "gone for good" (a draining relay advertises
// TargetRemoved): the session must fail after the first refusal instead of
// burning the whole MaxRedials budget against a refusal that cannot change.
func TestTerminalLoginRefusalStopsRedial(t *testing.T) {
	var attempts atomic.Int32
	cfg := Config{
		MaxRedials: 4,
		Redial:     refusingRedial(t, &attempts, iscsi.LoginStatusInitiatorErr, iscsi.LoginDetailTargetRemoved),
	}
	sess, _ := redialHarness(t, cfg)
	if err := sess.Write(0, make([]byte, 512), 512); err != nil {
		t.Fatalf("write before cut: %v", err)
	}
	sess.Conn().Close()
	err := sess.Write(0, make([]byte, 512), 512)
	if err == nil {
		t.Fatal("write succeeded against a terminally refusing target")
	}
	if !errors.Is(err, ErrLoginFailed) {
		t.Fatalf("error = %v, want ErrLoginFailed in the chain", err)
	}
	if !xerr.IsTerminal(err) {
		t.Fatalf("error = %v classed %v, want Terminal", err, xerr.Classify(err))
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("session redialed %d times against a terminal refusal, want 1", got)
	}
}

// TestTransientLoginRefusalKeepsRetrying is the contrast case: a TargetErr
// refusal ("retry later") must consume the full redial budget.
func TestTransientLoginRefusalKeepsRetrying(t *testing.T) {
	var attempts atomic.Int32
	cfg := Config{
		MaxRedials: 3,
		Redial:     refusingRedial(t, &attempts, iscsi.LoginStatusTargetErr, iscsi.LoginDetailOutOfResources),
	}
	sess, _ := redialHarness(t, cfg)
	sess.Conn().Close()
	err := sess.Write(0, make([]byte, 512), 512)
	if err == nil {
		t.Fatal("write succeeded against a refusing target")
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("session redialed %d times against a transient refusal, want MaxRedials=3", got)
	}
}
