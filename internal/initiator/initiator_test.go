package initiator

import (
	"net"
	"testing"

	"repro/internal/iscsi"
)

// fakeTarget answers the login on the server side of a pipe so unit tests
// exercise the initiator without the full target package (which has its own
// integration tests against this one).
func fakeTarget(t *testing.T, conn net.Conn, statusClass, statusDetail byte) {
	t.Helper()
	go func() {
		pdu, err := iscsi.ReadPDU(conn)
		if err != nil {
			return
		}
		req, err := iscsi.ParseLoginRequest(pdu)
		if err != nil {
			return
		}
		resp := &iscsi.LoginResponse{
			Transit:      true,
			CSG:          iscsi.StageOperational,
			NSG:          iscsi.StageFullFeature,
			ISID:         req.ISID,
			ITT:          req.ITT,
			StatSN:       1,
			ExpCmdSN:     req.CmdSN + 1,
			MaxCmdSN:     req.CmdSN + 32,
			StatusClass:  statusClass,
			StatusDetail: statusDetail,
			Pairs:        iscsi.DefaultParams().Pairs(),
		}
		_, _ = resp.Encode().WriteTo(conn)
	}()
}

func TestLoginExposesSourcePortAndVM(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()

	pairsCh := make(chan map[string]string, 1)
	go func() {
		pdu, err := iscsi.ReadPDU(server)
		if err != nil {
			return
		}
		req, _ := iscsi.ParseLoginRequest(pdu)
		pairsCh <- req.Pairs
		resp := &iscsi.LoginResponse{
			Transit: true, CSG: iscsi.StageOperational, NSG: iscsi.StageFullFeature,
			ISID: req.ISID, ITT: req.ITT, StatSN: 1,
			ExpCmdSN: req.CmdSN + 1, MaxCmdSN: req.CmdSN + 32,
			Pairs: iscsi.DefaultParams().Pairs(),
		}
		_, _ = resp.Encode().WriteTo(server)
	}()

	sess, err := Login(client, Config{
		InitiatorIQN: "iqn.x:vm1", TargetIQN: "iqn.x:vol1", AttachedVM: "vm1",
	})
	if err != nil {
		t.Fatalf("Login: %v", err)
	}
	defer sess.Close()
	pairs := <-pairsCh
	if pairs[iscsi.KeyInitiatorName] != "iqn.x:vm1" || pairs[iscsi.KeyTargetName] != "iqn.x:vol1" {
		t.Errorf("names not sent: %v", pairs)
	}
	if pairs[iscsi.KeyAttachedVM] != "vm1" {
		t.Errorf("AttachedVM not sent: %v", pairs)
	}
	// net.Pipe addresses carry no port, so the StorM key is absent here;
	// fabric connections carry it (covered by the splice tests).
	if sess.Params().MaxRecvDataSegmentLength <= 0 {
		t.Error("params not negotiated")
	}
}

func TestLoginFailureStatus(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	fakeTarget(t, server, iscsi.LoginStatusInitiatorErr, iscsi.LoginDetailNone)
	if _, err := Login(client, Config{InitiatorIQN: "i", TargetIQN: "t"}); err == nil {
		t.Fatal("login succeeded against error status")
	}
}

func TestLoginConnectionDrop(t *testing.T) {
	client, server := net.Pipe()
	go func() {
		_, _ = iscsi.ReadPDU(server)
		server.Close()
	}()
	if _, err := Login(client, Config{InitiatorIQN: "i", TargetIQN: "t"}); err == nil {
		t.Fatal("login succeeded on dropped connection")
	}
}

func TestOperationsFailAfterConnClose(t *testing.T) {
	client, server := net.Pipe()
	fakeTarget(t, server, iscsi.LoginStatusSuccess, iscsi.LoginDetailNone)
	sess, err := Login(client, Config{InitiatorIQN: "i", TargetIQN: "t"})
	if err != nil {
		t.Fatalf("Login: %v", err)
	}
	server.Close()
	if _, err := sess.Read(0, 1, 512); err == nil {
		t.Error("Read succeeded on dead session")
	}
	if err := sess.Write(0, make([]byte, 512), 512); err == nil {
		t.Error("Write succeeded on dead session")
	}
	_ = sess.Close()
}

func TestWriteValidatesAlignment(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	fakeTarget(t, server, iscsi.LoginStatusSuccess, iscsi.LoginDetailNone)
	sess, err := Login(client, Config{InitiatorIQN: "i", TargetIQN: "t"})
	if err != nil {
		t.Fatalf("Login: %v", err)
	}
	defer sess.Close()
	if err := sess.Write(0, make([]byte, 100), 512); err == nil {
		t.Error("unaligned Write accepted")
	}
	if err := sess.Write(0, nil, 0); err == nil {
		t.Error("zero block size accepted")
	}
}
