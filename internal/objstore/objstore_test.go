package objstore

import (
	"bytes"
	"errors"
	"fmt"
	"net/url"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/blockdev"
	"repro/internal/extfs"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	disk, err := blockdev.NewMemDisk(512, 65536)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := extfs.Mkfs(disk, extfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(fs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestBucketLifecycle(t *testing.T) {
	s := newStore(t)
	if err := s.CreateBucket("photos"); err != nil {
		t.Fatalf("CreateBucket: %v", err)
	}
	if err := s.CreateBucket("photos"); !errors.Is(err, ErrBucketExists) {
		t.Errorf("duplicate bucket err = %v", err)
	}
	buckets, err := s.ListBuckets()
	if err != nil || len(buckets) != 1 || buckets[0] != "photos" {
		t.Errorf("ListBuckets = %v, %v", buckets, err)
	}
	if err := s.DeleteBucket("photos"); err != nil {
		t.Fatalf("DeleteBucket: %v", err)
	}
	if err := s.DeleteBucket("photos"); !errors.Is(err, ErrNoBucket) {
		t.Errorf("double delete err = %v", err)
	}
}

func TestPutGetDelete(t *testing.T) {
	s := newStore(t)
	if err := s.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	want := []byte("object payload with some bytes")
	etag, err := s.Put("b", "reports/q3.txt", want)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if len(etag) != 64 {
		t.Errorf("etag = %q", etag)
	}
	got, gotTag, err := s.Get("b", "reports/q3.txt")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, want) || gotTag != etag {
		t.Error("Get returned wrong content or etag")
	}
	info, err := s.Head("b", "reports/q3.txt")
	if err != nil || info.Size != uint64(len(want)) || info.ETag != etag {
		t.Errorf("Head = %+v, %v", info, err)
	}
	if err := s.Delete("b", "reports/q3.txt"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, _, err := s.Get("b", "reports/q3.txt"); !errors.Is(err, ErrNoObject) {
		t.Errorf("Get after Delete err = %v", err)
	}
}

func TestBucketRequiredForPut(t *testing.T) {
	s := newStore(t)
	if _, err := s.Put("ghost", "k", []byte("x")); !errors.Is(err, ErrNoBucket) {
		t.Errorf("Put to missing bucket err = %v", err)
	}
	if _, _, err := s.Get("ghost", "k"); !errors.Is(err, ErrNoBucket) {
		t.Errorf("Get from missing bucket err = %v", err)
	}
	if _, err := s.List("ghost", ""); !errors.Is(err, ErrNoBucket) {
		t.Errorf("List of missing bucket err = %v", err)
	}
}

func TestOverwriteChangesETag(t *testing.T) {
	s := newStore(t)
	if err := s.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	tag1, err := s.Put("b", "k", []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	tag2, err := s.Put("b", "k", []byte("v2 longer"))
	if err != nil {
		t.Fatal(err)
	}
	if tag1 == tag2 {
		t.Error("etag unchanged across overwrite")
	}
	got, _, err := s.Get("b", "k")
	if err != nil || string(got) != "v2 longer" {
		t.Errorf("Get = %q, %v", got, err)
	}
}

func TestListWithPrefix(t *testing.T) {
	s := newStore(t)
	if err := s.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"logs/a", "logs/b", "data/x"} {
		if _, err := s.Put("b", k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.List("b", "logs/")
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(got) != 2 || got[0].Key != "logs/a" || got[1].Key != "logs/b" {
		t.Errorf("List = %+v", got)
	}
	all, err := s.List("b", "")
	if err != nil || len(all) != 3 {
		t.Errorf("List all = %d, %v", len(all), err)
	}
	// A non-empty bucket cannot be deleted.
	if err := s.DeleteBucket("b"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("DeleteBucket(non-empty) err = %v", err)
	}
}

func TestNameValidation(t *testing.T) {
	s := newStore(t)
	if err := s.CreateBucket("a/b"); !errors.Is(err, ErrBadName) {
		t.Errorf("bucket with slash err = %v", err)
	}
	if err := s.CreateBucket(""); !errors.Is(err, ErrBadName) {
		t.Errorf("empty bucket err = %v", err)
	}
	if err := s.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("b", "", []byte("x")); !errors.Is(err, ErrBadName) {
		t.Errorf("empty key err = %v", err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	s := newStore(t)
	if err := s.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("b", "k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Flip a content byte behind the store's back.
	if err := s.fs.WriteAt(root+"/b/k", []byte{'X'}, 64); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get("b", "k"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Get of corrupted object err = %v", err)
	}
}

// TestConcurrentPutGetDelete hammers the store from many goroutines at
// once — disjoint per-worker keys round-trip exactly, while a contended
// shared key sees only whole objects (a valid generation or ErrNoObject,
// never torn content or a failed etag check). Run under -race this also
// proves the gateway path over the shared file system mutex is sound.
func TestConcurrentPutGetDelete(t *testing.T) {
	s := newStore(t)
	if err := s.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	const workers, iters = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, workers*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("w%d/obj-%d", w, i%5)
				want := bytes.Repeat([]byte{byte(w*31 + i)}, 128+i)
				etag, err := s.Put("b", key, want)
				if err != nil {
					errs <- fmt.Errorf("worker %d put %s: %w", w, key, err)
					return
				}
				got, gotTag, err := s.Get("b", key)
				if err != nil || gotTag != etag || !bytes.Equal(got, want) {
					errs <- fmt.Errorf("worker %d get %s: %v (content match %v)", w, key, err, bytes.Equal(got, want))
					return
				}
				if i%3 == 2 {
					if err := s.Delete("b", key); err != nil {
						errs <- fmt.Errorf("worker %d delete %s: %w", w, key, err)
						return
					}
				}
			}
		}(w)
	}
	// Contended writers and readers on one shared key.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if w%2 == 0 {
					payload := bytes.Repeat([]byte{byte(i)}, 64+w)
					if _, err := s.Put("b", "shared", payload); err != nil {
						errs <- fmt.Errorf("shared put: %w", err)
						return
					}
				} else {
					_, _, err := s.Get("b", "shared")
					if err != nil && !errors.Is(err, ErrNoObject) {
						errs <- fmt.Errorf("shared get: %w", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCorruptionInjectedUnderneath rots stored bytes at several offsets —
// the etag header, the first content byte, and the object's tail — and
// verifies every read detects the damage instead of returning it.
func TestCorruptionInjectedUnderneath(t *testing.T) {
	s := newStore(t)
	if err := s.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("integrity"), 100)
	for _, tc := range []struct {
		name   string
		offset uint64
	}{
		{"etag header", 3},
		{"first content byte", 64},
		{"content tail", 64 + uint64(len(payload)) - 1},
	} {
		key := "victim-" + tc.name
		if _, err := s.Put("b", key, payload); err != nil {
			t.Fatal(err)
		}
		raw := make([]byte, 1)
		path := root + "/b/" + url.PathEscape(key)
		if err := s.fs.ReadAt(path, raw, tc.offset); err != nil {
			t.Fatalf("%s: read byte: %v", tc.name, err)
		}
		if err := s.fs.WriteAt(path, []byte{raw[0] ^ 0xFF}, tc.offset); err != nil {
			t.Fatalf("%s: flip byte: %v", tc.name, err)
		}
		if _, _, err := s.Get("b", key); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: Get after corruption err = %v, want ErrCorrupt", tc.name, err)
		}
	}
}

func TestObjectModelProperty(t *testing.T) {
	type op struct {
		Key  uint8
		Data []byte
		Del  bool
	}
	f := func(ops []op) bool {
		s := newStore(&testing.T{})
		if err := s.CreateBucket("b"); err != nil {
			return false
		}
		model := make(map[string][]byte)
		for _, o := range ops {
			key := fmt.Sprintf("key-%d", o.Key%10)
			if o.Del {
				err := s.Delete("b", key)
				_, existed := model[key]
				if existed != (err == nil) {
					return false
				}
				delete(model, key)
				continue
			}
			data := o.Data
			if len(data) > 8192 {
				data = data[:8192]
			}
			if _, err := s.Put("b", key, data); err != nil {
				return false
			}
			model[key] = append([]byte(nil), data...)
		}
		for key, want := range model {
			got, _, err := s.Get("b", key)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		list, err := s.List("b", "")
		if err != nil || len(list) != len(model) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
