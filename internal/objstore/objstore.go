// Package objstore implements a minimal object storage service (the Swift
// analogue) layered on a StorM-attached volume, demonstrating the paper's
// claim that "while its current design is tailored for block storage, StorM
// is equally applicable to other storage systems such as object storage":
// because the gateway performs all I/O through the volume's block device,
// every object operation transparently traverses whatever middle-box chain
// the tenant's policy wired — monitoring, encryption, replication.
//
// Buckets map to directories and objects to files of the ext-style file
// system; object keys are escaped so arbitrary names (including '/') are
// safe. ETags are SHA-256 over the content, verified on every read.
package objstore

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"net/url"
	"sort"
	"strings"

	"repro/internal/extfs"
)

// Errors.
var (
	ErrNoBucket     = errors.New("objstore: bucket does not exist")
	ErrNoObject     = errors.New("objstore: object does not exist")
	ErrBucketExists = errors.New("objstore: bucket already exists")
	ErrNotEmpty     = errors.New("objstore: bucket not empty")
	ErrCorrupt      = errors.New("objstore: content does not match its etag")
	ErrBadName      = errors.New("objstore: invalid bucket or object name")
)

// ObjectInfo describes one stored object.
type ObjectInfo struct {
	Key  string
	Size uint64
	ETag string
}

// Store is an object store over a mounted file system.
type Store struct {
	fs *extfs.FS
}

// root is the store's directory on the volume.
const root = "/objects"

// New initializes (or reopens) an object store on fs.
func New(fs *extfs.FS) (*Store, error) {
	if err := fs.MkdirAll(root); err != nil && err != extfs.ErrExists {
		return nil, err
	}
	return &Store{fs: fs}, nil
}

// bucketPath validates and resolves a bucket name.
func bucketPath(bucket string) (string, error) {
	if bucket == "" || strings.ContainsAny(bucket, "/\x00") {
		return "", fmt.Errorf("%w: bucket %q", ErrBadName, bucket)
	}
	return root + "/" + bucket, nil
}

// objectPath escapes an object key into a file name.
func objectPath(bucket, key string) (string, error) {
	bp, err := bucketPath(bucket)
	if err != nil {
		return "", err
	}
	if key == "" {
		return "", fmt.Errorf("%w: empty key", ErrBadName)
	}
	return bp + "/" + url.PathEscape(key), nil
}

// CreateBucket makes a new bucket.
func (s *Store) CreateBucket(bucket string) error {
	bp, err := bucketPath(bucket)
	if err != nil {
		return err
	}
	if err := s.fs.Mkdir(bp); err == extfs.ErrExists {
		return fmt.Errorf("%w: %s", ErrBucketExists, bucket)
	} else if err != nil {
		return err
	}
	return nil
}

// DeleteBucket removes an empty bucket.
func (s *Store) DeleteBucket(bucket string) error {
	bp, err := bucketPath(bucket)
	if err != nil {
		return err
	}
	switch err := s.fs.Rmdir(bp); err {
	case nil:
		return nil
	case extfs.ErrNotFound:
		return fmt.Errorf("%w: %s", ErrNoBucket, bucket)
	case extfs.ErrNotEmpty:
		return fmt.Errorf("%w: %s", ErrNotEmpty, bucket)
	default:
		return err
	}
}

// ListBuckets returns all bucket names, sorted.
func (s *Store) ListBuckets() ([]string, error) {
	ents, err := s.fs.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if e.Type == extfs.TypeDir {
			out = append(out, e.Name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Put stores an object, returning its ETag.
func (s *Store) Put(bucket, key string, data []byte) (string, error) {
	op, err := objectPath(bucket, key)
	if err != nil {
		return "", err
	}
	if ok := s.bucketExists(bucket); !ok {
		return "", fmt.Errorf("%w: %s", ErrNoBucket, bucket)
	}
	sum := sha256.Sum256(data)
	etag := hex.EncodeToString(sum[:])
	// Layout: 64-byte hex etag header, then the content.
	buf := make([]byte, 64+len(data))
	copy(buf, etag)
	copy(buf[64:], data)
	if err := s.fs.WriteFile(op, buf); err != nil {
		return "", err
	}
	return etag, nil
}

// Get retrieves an object and verifies its ETag.
func (s *Store) Get(bucket, key string) ([]byte, string, error) {
	op, err := objectPath(bucket, key)
	if err != nil {
		return nil, "", err
	}
	raw, err := s.fs.ReadFile(op)
	if err == extfs.ErrNotFound {
		return nil, "", s.missing(bucket, key)
	} else if err != nil {
		return nil, "", err
	}
	if len(raw) < 64 {
		return nil, "", ErrCorrupt
	}
	etag := string(raw[:64])
	data := raw[64:]
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != etag {
		return nil, "", fmt.Errorf("%w: %s/%s", ErrCorrupt, bucket, key)
	}
	return data, etag, nil
}

// Head returns an object's metadata without its content.
func (s *Store) Head(bucket, key string) (ObjectInfo, error) {
	op, err := objectPath(bucket, key)
	if err != nil {
		return ObjectInfo{}, err
	}
	fi, err := s.fs.Stat(op)
	if err == extfs.ErrNotFound {
		return ObjectInfo{}, s.missing(bucket, key)
	} else if err != nil {
		return ObjectInfo{}, err
	}
	etagBuf := make([]byte, 64)
	if err := s.fs.ReadAt(op, etagBuf, 0); err != nil {
		return ObjectInfo{}, err
	}
	size := uint64(0)
	if fi.Size >= 64 {
		size = fi.Size - 64
	}
	return ObjectInfo{Key: key, Size: size, ETag: string(etagBuf)}, nil
}

// Delete removes an object.
func (s *Store) Delete(bucket, key string) error {
	op, err := objectPath(bucket, key)
	if err != nil {
		return err
	}
	if err := s.fs.Remove(op); err == extfs.ErrNotFound {
		return s.missing(bucket, key)
	} else if err != nil {
		return err
	}
	return nil
}

// List returns the bucket's objects with the given key prefix, sorted.
func (s *Store) List(bucket, prefix string) ([]ObjectInfo, error) {
	bp, err := bucketPath(bucket)
	if err != nil {
		return nil, err
	}
	ents, err := s.fs.ReadDir(bp)
	if err == extfs.ErrNotFound {
		return nil, fmt.Errorf("%w: %s", ErrNoBucket, bucket)
	} else if err != nil {
		return nil, err
	}
	var out []ObjectInfo
	for _, e := range ents {
		key, err := url.PathUnescape(e.Name)
		if err != nil || !strings.HasPrefix(key, prefix) {
			continue
		}
		info, err := s.Head(bucket, key)
		if err != nil {
			return nil, err
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

func (s *Store) bucketExists(bucket string) bool {
	bp, err := bucketPath(bucket)
	if err != nil {
		return false
	}
	return s.fs.Exists(bp)
}

func (s *Store) missing(bucket, key string) error {
	if !s.bucketExists(bucket) {
		return fmt.Errorf("%w: %s", ErrNoBucket, bucket)
	}
	return fmt.Errorf("%w: %s/%s", ErrNoObject, bucket, key)
}
