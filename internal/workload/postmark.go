package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/extfs"
)

// PostmarkConfig mirrors the PostMark mail-server workload used in the
// Figure 11 comparison: a pool of small files receives a stream of
// transactions mixing reads, appends, creations, and deletions.
type PostmarkConfig struct {
	FS *extfs.FS
	// Files is the initial pool size (default 100).
	Files int
	// MinSize/MaxSize bound file sizes (defaults 512 B / 16 KiB).
	MinSize, MaxSize int
	// Transactions is the number of transactions (default 200).
	Transactions int
	// Seed makes runs reproducible.
	Seed int64
}

// PostmarkResult reports the decomposed component rates of Figure 11.
type PostmarkResult struct {
	Elapsed time.Duration

	ReadOps   int
	AppendOps int
	CreateOps int
	DeleteOps int

	ReadBytes  int64
	WriteBytes int64

	// Per-second rates.
	ReadOpsPerSec   float64
	AppendOpsPerSec float64
	CreateOpsPerSec float64
	DeleteOpsPerSec float64
	ReadMBps        float64
	WriteMBps       float64
}

// String renders the component table row.
func (r *PostmarkResult) String() string {
	return fmt.Sprintf("postmark: read %.0f/s append %.0f/s create %.0f/s delete %.0f/s, %.1f MB/s read %.1f MB/s write",
		r.ReadOpsPerSec, r.AppendOpsPerSec, r.CreateOpsPerSec, r.DeleteOpsPerSec, r.ReadMBps, r.WriteMBps)
}

// RunPostmark executes the workload.
func RunPostmark(cfg PostmarkConfig) (*PostmarkResult, error) {
	if cfg.FS == nil {
		return nil, fmt.Errorf("workload: postmark needs a file system")
	}
	if cfg.Files <= 0 {
		cfg.Files = 100
	}
	if cfg.MinSize <= 0 {
		cfg.MinSize = 512
	}
	if cfg.MaxSize <= cfg.MinSize {
		cfg.MaxSize = cfg.MinSize + 16*1024
	}
	if cfg.Transactions <= 0 {
		cfg.Transactions = 200
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	fs := cfg.FS

	const dir = "/postmark"
	if err := fs.MkdirAll(dir); err != nil && err != extfs.ErrExists {
		return nil, err
	}
	randSize := func() int { return cfg.MinSize + rng.Intn(cfg.MaxSize-cfg.MinSize) }
	payload := func(n int) []byte {
		b := make([]byte, n)
		rng.Read(b[:min(256, n)])
		return b
	}

	res := &PostmarkResult{}
	// Pool setup: create the initial file set (counted, as PostMark does).
	var pool []string
	nextFile := 0
	start := time.Now()
	for i := 0; i < cfg.Files; i++ {
		name := fmt.Sprintf("%s/f%06d", dir, nextFile)
		nextFile++
		n := randSize()
		if err := fs.WriteFile(name, payload(n)); err != nil {
			return nil, fmt.Errorf("workload: postmark create: %w", err)
		}
		pool = append(pool, name)
		res.CreateOps++
		res.WriteBytes += int64(n)
	}

	// Transaction phase.
	for i := 0; i < cfg.Transactions; i++ {
		if len(pool) == 0 {
			break
		}
		victim := pool[rng.Intn(len(pool))]
		// Half the transactions touch data (read or append), half churn
		// the namespace (create or delete) — PostMark's default biases.
		if rng.Intn(2) == 0 {
			if rng.Intn(2) == 0 {
				data, err := fs.ReadFile(victim)
				if err != nil {
					return nil, fmt.Errorf("workload: postmark read: %w", err)
				}
				res.ReadOps++
				res.ReadBytes += int64(len(data))
			} else {
				n := randSize() / 4
				if err := fs.Append(victim, payload(n)); err != nil {
					return nil, fmt.Errorf("workload: postmark append: %w", err)
				}
				res.AppendOps++
				res.WriteBytes += int64(n)
			}
			continue
		}
		if rng.Intn(2) == 0 {
			name := fmt.Sprintf("%s/f%06d", dir, nextFile)
			nextFile++
			n := randSize()
			if err := fs.WriteFile(name, payload(n)); err != nil {
				return nil, fmt.Errorf("workload: postmark create: %w", err)
			}
			pool = append(pool, name)
			res.CreateOps++
			res.WriteBytes += int64(n)
		} else {
			idx := rng.Intn(len(pool))
			if err := fs.Remove(pool[idx]); err != nil {
				return nil, fmt.Errorf("workload: postmark delete: %w", err)
			}
			pool[idx] = pool[len(pool)-1]
			pool = pool[:len(pool)-1]
			res.DeleteOps++
		}
	}
	res.Elapsed = time.Since(start)
	if sec := res.Elapsed.Seconds(); sec > 0 {
		res.ReadOpsPerSec = float64(res.ReadOps) / sec
		res.AppendOpsPerSec = float64(res.AppendOps) / sec
		res.CreateOpsPerSec = float64(res.CreateOps) / sec
		res.DeleteOpsPerSec = float64(res.DeleteOps) / sec
		res.ReadMBps = float64(res.ReadBytes) / sec / (1 << 20)
		res.WriteMBps = float64(res.WriteBytes) / sec / (1 << 20)
	}
	return res, nil
}
