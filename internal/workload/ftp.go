package workload

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/blockdev"
	"repro/internal/simtime"
)

// FTPConfig mirrors the Section V-B2 FTP test: a server in the tenant VM
// streams a large file to/from the attached volume. The transfer runs
// directly against the block device in large sequential chunks (the file
// system cache's streaming behaviour).
type FTPConfig struct {
	Dev blockdev.Device
	// FileSize is the transferred size in bytes (default 8 MiB).
	FileSize int64
	// ChunkSize is the streaming granularity (default 256 KiB).
	ChunkSize int
	// RateMBps paces the transfer to a fixed offered load (0 = as fast as
	// possible); CPU-utilization comparisons use a common pace.
	RateMBps float64
}

// FTPResult reports the sustained bandwidth.
type FTPResult struct {
	Bytes   int64
	Elapsed time.Duration
	MBps    float64
}

// String renders the result.
func (r *FTPResult) String() string {
	return fmt.Sprintf("ftp: %d MiB in %v = %.1f MB/s", r.Bytes>>20, r.Elapsed.Round(time.Millisecond), r.MBps)
}

func (c *FTPConfig) defaults() error {
	if c.Dev == nil {
		return fmt.Errorf("workload: ftp needs a device")
	}
	if c.FileSize <= 0 {
		c.FileSize = 8 << 20
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 256 * 1024
	}
	if c.ChunkSize%c.Dev.BlockSize() != 0 {
		return fmt.Errorf("workload: ftp chunk %d not a block multiple", c.ChunkSize)
	}
	if c.FileSize%int64(c.ChunkSize) != 0 {
		c.FileSize = (c.FileSize/int64(c.ChunkSize) + 1) * int64(c.ChunkSize)
	}
	return nil
}

// RunFTPUpload streams data onto the volume (an FTP put).
func RunFTPUpload(cfg FTPConfig) (*FTPResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	chunk := bytes.Repeat([]byte{0x46}, cfg.ChunkSize)
	blocksPerChunk := uint64(cfg.ChunkSize / cfg.Dev.BlockSize())
	start := time.Now()
	var lba uint64
	for sent := int64(0); sent < cfg.FileSize; sent += int64(cfg.ChunkSize) {
		if err := cfg.Dev.WriteAt(chunk, lba); err != nil {
			return nil, fmt.Errorf("workload: ftp upload: %w", err)
		}
		lba += blocksPerChunk
		cfg.pace(start, sent+int64(cfg.ChunkSize))
	}
	if err := cfg.Dev.Flush(); err != nil {
		return nil, err
	}
	return ftpResult(cfg.FileSize, time.Since(start)), nil
}

// RunFTPDownload streams data off the volume (an FTP get).
func RunFTPDownload(cfg FTPConfig) (*FTPResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	buf := make([]byte, cfg.ChunkSize)
	blocksPerChunk := uint64(cfg.ChunkSize / cfg.Dev.BlockSize())
	start := time.Now()
	var lba uint64
	for got := int64(0); got < cfg.FileSize; got += int64(cfg.ChunkSize) {
		if err := cfg.Dev.ReadAt(buf, lba); err != nil {
			return nil, fmt.Errorf("workload: ftp download: %w", err)
		}
		lba += blocksPerChunk
		cfg.pace(start, got+int64(cfg.ChunkSize))
	}
	return ftpResult(cfg.FileSize, time.Since(start)), nil
}

// pace throttles the transfer to the configured rate.
func (c *FTPConfig) pace(start time.Time, transferred int64) {
	if c.RateMBps <= 0 {
		return
	}
	target := time.Duration(float64(transferred) / (c.RateMBps * (1 << 20)) * float64(time.Second))
	if ahead := target - time.Since(start); ahead > 0 {
		simtime.Sleep(ahead)
	}
}

func ftpResult(n int64, el time.Duration) *FTPResult {
	r := &FTPResult{Bytes: n, Elapsed: el}
	if sec := el.Seconds(); sec > 0 {
		r.MBps = float64(n) / sec / (1 << 20)
	}
	return r
}
