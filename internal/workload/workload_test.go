package workload

import (
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/extfs"
	"repro/internal/minidb"
)

func testDisk(t *testing.T, blocks uint64) *blockdev.MemDisk {
	t.Helper()
	d, err := blockdev.NewMemDisk(512, blocks)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRunFioBasic(t *testing.T) {
	dev := testDisk(t, 4096)
	res, err := RunFio(FioConfig{
		Dev:          dev,
		RequestSize:  4096,
		Threads:      2,
		ReadFraction: 0.5,
		Ops:          200,
		Seed:         1,
	})
	if err != nil {
		t.Fatalf("RunFio: %v", err)
	}
	if res.Ops != 200 {
		t.Errorf("Ops = %d, want 200", res.Ops)
	}
	if res.Reads == 0 || res.Writes == 0 {
		t.Errorf("mix = %d reads / %d writes, want both nonzero", res.Reads, res.Writes)
	}
	if res.IOPS <= 0 || res.Bytes != int64(200*4096) {
		t.Errorf("IOPS=%v Bytes=%d", res.IOPS, res.Bytes)
	}
	if res.Latency.Count != 200 {
		t.Errorf("latency samples = %d", res.Latency.Count)
	}
	if res.String() == "" {
		t.Error("String empty")
	}
}

func TestRunFioReproducible(t *testing.T) {
	dev := testDisk(t, 4096)
	run := func() (int, int) {
		res, err := RunFio(FioConfig{Dev: dev, RequestSize: 512, Ops: 100, ReadFraction: 0.5, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return res.Reads, res.Writes
	}
	r1, w1 := run()
	r2, w2 := run()
	if r1 != r2 || w1 != w2 {
		t.Errorf("runs differ: %d/%d vs %d/%d", r1, w1, r2, w2)
	}
}

func TestRunFioValidation(t *testing.T) {
	dev := testDisk(t, 64)
	if _, err := RunFio(FioConfig{RequestSize: 512}); err == nil {
		t.Error("nil device: want error")
	}
	if _, err := RunFio(FioConfig{Dev: dev, RequestSize: 100}); err == nil {
		t.Error("unaligned request: want error")
	}
	if _, err := RunFio(FioConfig{Dev: dev, RequestSize: 512 * 128}); err == nil {
		t.Error("request larger than device: want error")
	}
}

func TestRunFioLatencyReflectsDevice(t *testing.T) {
	slow := blockdev.NewLatencyDisk(testDisk(t, 256), blockdev.ServiceModel{PerRequest: 2 * time.Millisecond})
	res, err := RunFio(FioConfig{Dev: slow, RequestSize: 512, Ops: 20, ReadFraction: 1.0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Mean < time.Millisecond {
		t.Errorf("mean latency %v, want >= ~2ms from the device model", res.Latency.Mean)
	}
	if res.Writes != 0 {
		t.Errorf("ReadFraction=1.0 produced %d writes", res.Writes)
	}
}

func TestRunPostmark(t *testing.T) {
	dev := testDisk(t, 131072) // 64 MiB
	fs, err := extfs.Mkfs(dev, extfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPostmark(PostmarkConfig{FS: fs, Files: 30, Transactions: 100, Seed: 7})
	if err != nil {
		t.Fatalf("RunPostmark: %v", err)
	}
	if res.CreateOps < 30 {
		t.Errorf("CreateOps = %d, want >= initial pool", res.CreateOps)
	}
	if res.ReadOps+res.AppendOps+res.DeleteOps == 0 {
		t.Error("no transactions recorded")
	}
	if res.ReadOpsPerSec < 0 || res.String() == "" {
		t.Error("rates malformed")
	}
	// The file system survives the churn.
	if _, err := fs.ReadDir("/postmark"); err != nil {
		t.Errorf("ReadDir after postmark: %v", err)
	}
}

func TestRunPostmarkValidation(t *testing.T) {
	if _, err := RunPostmark(PostmarkConfig{}); err == nil {
		t.Error("nil fs: want error")
	}
}

func TestRunFTPBothDirections(t *testing.T) {
	dev := testDisk(t, 32768) // 16 MiB
	up, err := RunFTPUpload(FTPConfig{Dev: dev, FileSize: 4 << 20, ChunkSize: 64 * 1024})
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	if up.Bytes != 4<<20 || up.MBps <= 0 {
		t.Errorf("upload = %+v", up)
	}
	down, err := RunFTPDownload(FTPConfig{Dev: dev, FileSize: 4 << 20, ChunkSize: 64 * 1024})
	if err != nil {
		t.Fatalf("download: %v", err)
	}
	if down.Bytes != 4<<20 {
		t.Errorf("download = %+v", down)
	}
	if up.String() == "" || down.String() == "" {
		t.Error("String empty")
	}
}

func TestRunFTPValidation(t *testing.T) {
	if _, err := RunFTPUpload(FTPConfig{}); err == nil {
		t.Error("nil device: want error")
	}
	dev := testDisk(t, 64)
	if _, err := RunFTPUpload(FTPConfig{Dev: dev, ChunkSize: 100}); err == nil {
		t.Error("unaligned chunk: want error")
	}
}

func TestRunFTPRoundsFileSize(t *testing.T) {
	dev := testDisk(t, 32768)
	res, err := RunFTPUpload(FTPConfig{Dev: dev, FileSize: 100000, ChunkSize: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes%(64*1024) != 0 {
		t.Errorf("Bytes = %d, want chunk multiple", res.Bytes)
	}
}

func TestRunOLTP(t *testing.T) {
	dev := testDisk(t, 16384) // 8 MiB
	db, err := minidb.Open(dev, 4096)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOLTP(OLTPConfig{
		DB:       db,
		Rows:     200,
		Threads:  4,
		Duration: 300 * time.Millisecond,
		Bucket:   50 * time.Millisecond,
		Seed:     11,
	})
	if err != nil {
		t.Fatalf("RunOLTP: %v", err)
	}
	if res.Transactions == 0 {
		t.Fatal("no transactions completed")
	}
	if res.TPS <= 0 {
		t.Errorf("TPS = %v", res.TPS)
	}
	if len(res.Timeline) == 0 {
		t.Error("no timeline buckets")
	}
	var nonzero int
	for _, v := range res.Timeline {
		if v > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Error("timeline all zero")
	}
	if res.String() == "" {
		t.Error("String empty")
	}
}

func TestRunOLTPValidation(t *testing.T) {
	if _, err := RunOLTP(OLTPConfig{}); err == nil {
		t.Error("nil db: want error")
	}
}
