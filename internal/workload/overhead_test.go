package workload

import (
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/obs"
)

// TestTracingOverheadOnFioHotPath bounds the cost of the observability
// instrumentation on the fio hot path: the same workload against the same
// modelled disk, bare versus wrapped in an ObservedDisk recording every
// request into stage histograms, must not slow down by more than ~5%.
// The modelled service time (~100µs/request) dominates; the probe adds one
// time.Now plus one histogram observation (~hundreds of ns).
func TestTracingOverheadOnFioHotPath(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	run := func(dev blockdev.Device) time.Duration {
		res, err := RunFio(FioConfig{
			Dev:          dev,
			RequestSize:  4096,
			Threads:      2,
			ReadFraction: 0.5,
			Ops:          400,
			Seed:         7,
		})
		if err != nil {
			t.Fatalf("RunFio: %v", err)
		}
		return res.Elapsed
	}
	newDisk := func() blockdev.Device {
		mem, err := blockdev.NewMemDisk(512, 8192)
		if err != nil {
			t.Fatal(err)
		}
		return blockdev.NewLatencyDisk(mem, blockdev.ServiceModel{PerRequest: 100 * time.Microsecond})
	}

	// Warm up scheduling and caches once before timing.
	run(newDisk())

	const rounds = 3
	var bare, traced time.Duration
	reg := obs.NewRegistry()
	for i := 0; i < rounds; i++ {
		bare += run(newDisk())
		traced += run(blockdev.NewObservedDisk(newDisk(), reg, "overhead"))
	}

	if n := reg.Histogram(obs.StagePrefix + "overhead.read").Snapshot().Count; n == 0 {
		t.Fatal("traced run recorded no observations")
	}
	ratio := float64(traced) / float64(bare)
	t.Logf("bare=%v traced=%v ratio=%.3f", bare, traced, ratio)
	// Generous slack over the ~5% budget to keep the test robust on loaded
	// CI machines; the true instrumentation cost is well under 1%.
	if ratio > 1.10 {
		t.Errorf("tracing overhead ratio = %.3f, want <= ~1.05", ratio)
	}
}

// TestTracePlaneOverheadAtDefaultSampling bounds the cost of the full
// tracing plane — root span per request, goroutine binding, tail-based
// retention decision — at the default sampling config, against the same
// instrumented path with the plane off. The PR budget is 5%; comparing
// per-round minima filters scheduler noise so the assertion can sit at
// the budget rather than needing extra slack.
func TestTracePlaneOverheadAtDefaultSampling(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	newDisk := func(reg *obs.Registry) blockdev.Device {
		mem, err := blockdev.NewMemDisk(512, 8192)
		if err != nil {
			t.Fatal(err)
		}
		lat := blockdev.NewLatencyDisk(mem, blockdev.ServiceModel{PerRequest: 100 * time.Microsecond})
		return blockdev.NewObservedDisk(lat, reg, "overhead")
	}
	run := func(reg *obs.Registry) time.Duration {
		res, err := RunFio(FioConfig{
			Dev:          newDisk(reg),
			RequestSize:  4096,
			Threads:      2,
			ReadFraction: 0.5,
			Ops:          400,
			Seed:         7,
		})
		if err != nil {
			t.Fatalf("RunFio: %v", err)
		}
		return res.Elapsed
	}

	regOff := obs.NewRegistry()
	regOn := obs.NewRegistry()
	regOn.EnableTracing(obs.TraceConfig{}) // default sampling
	run(regOff)                            // warm-up
	run(regOn)

	const rounds = 5
	minOff, minOn := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < rounds; i++ {
		if d := run(regOff); d < minOff {
			minOff = d
		}
		if d := run(regOn); d < minOn {
			minOn = d
		}
	}
	if len(regOn.Traces()) == 0 {
		t.Fatal("tracing plane retained no traces")
	}
	ratio := float64(minOn) / float64(minOff)
	t.Logf("plane off=%v on=%v ratio=%.3f", minOff, minOn, ratio)
	if ratio > 1.05 {
		t.Errorf("tracing-plane overhead ratio = %.3f, want <= 1.05", ratio)
	}
}
