package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/minidb"
)

// OLTPConfig mirrors the Sysbench complex-mode run of Figure 12/13: client
// threads issue mixed read/write transactions against the database server.
type OLTPConfig struct {
	DB *minidb.DB
	// Rows is the preloaded table size (default 1000).
	Rows int
	// Threads is the total requesting threads across all client VMs
	// (the paper: 4 VMs x 6 threads).
	Threads int
	// Duration bounds the run.
	Duration time.Duration
	// Bucket is the TPS sampling interval for the Figure 13 timeline
	// (default Duration/20).
	Bucket time.Duration
	// Seed makes runs reproducible.
	Seed int64
	// Preloaded skips table loading (set when reusing a DB).
	Preloaded bool
}

// OLTPResult holds the throughput timeline.
type OLTPResult struct {
	Transactions int64
	Elapsed      time.Duration
	TPS          float64
	// Timeline is transactions-per-second per bucket.
	Timeline []float64
	// Errors counts failed transactions (tolerated during failover).
	Errors int64
}

// String renders the headline number.
func (r *OLTPResult) String() string {
	return fmt.Sprintf("oltp: %d tx in %v = %.0f TPS (%d errors)",
		r.Transactions, r.Elapsed.Round(time.Millisecond), r.TPS, r.Errors)
}

// RunOLTP executes the workload.
func RunOLTP(cfg OLTPConfig) (*OLTPResult, error) {
	if cfg.DB == nil {
		return nil, fmt.Errorf("workload: oltp needs a database")
	}
	if cfg.Rows <= 0 {
		cfg.Rows = 1000
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 6
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Bucket <= 0 {
		cfg.Bucket = cfg.Duration / 20
	}
	db := cfg.DB
	if !cfg.Preloaded {
		row := make([]byte, 100)
		for i := 0; i < cfg.Rows; i++ {
			row[0] = byte(i)
			if err := db.Put(uint64(i+1), row); err != nil {
				return nil, fmt.Errorf("workload: oltp preload: %w", err)
			}
		}
	}

	nBuckets := int(cfg.Duration/cfg.Bucket) + 1
	buckets := make([]atomic.Int64, nBuckets)
	var (
		txCount atomic.Int64
		errs    atomic.Int64
	)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for tIdx := 0; tIdx < cfg.Threads; tIdx++ {
		wg.Add(1)
		go func(tIdx int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(tIdx)*104729))
			row := make([]byte, 100)
			for time.Now().Before(deadline) {
				if err := oneTransaction(db, rng, cfg.Rows, row); err != nil {
					errs.Add(1)
					if errors.Is(err, minidb.ErrCorrupt) {
						return
					}
					continue
				}
				txCount.Add(1)
				b := int(time.Since(start) / cfg.Bucket)
				if b >= 0 && b < nBuckets {
					buckets[b].Add(1)
				}
			}
		}(tIdx)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &OLTPResult{
		Transactions: txCount.Load(),
		Elapsed:      elapsed,
		Errors:       errs.Load(),
	}
	if sec := elapsed.Seconds(); sec > 0 {
		res.TPS = float64(res.Transactions) / sec
	}
	perBucket := cfg.Bucket.Seconds()
	for i := range buckets {
		res.Timeline = append(res.Timeline, float64(buckets[i].Load())/perBucket)
	}
	return res, nil
}

// oneTransaction is the Sysbench complex-mode shape: ten point selects,
// one range select, one update, one insert-equivalent, one delete-
// equivalent (modelled as a rewrite to keep the table dense).
func oneTransaction(db *minidb.DB, rng *rand.Rand, rows int, scratch []byte) error {
	id := func() uint64 { return uint64(rng.Intn(rows) + 1) }
	for i := 0; i < 10; i++ {
		if _, err := db.Get(id()); err != nil && !errors.Is(err, minidb.ErrRowNotFound) {
			return err
		}
	}
	if _, err := db.RangeScan(id(), 10); err != nil {
		return err
	}
	rng.Read(scratch[:16])
	if err := db.Put(id(), scratch); err != nil {
		return err
	}
	if err := db.Put(id(), scratch); err != nil {
		return err
	}
	if err := db.Delete(id()); err != nil && !errors.Is(err, minidb.ErrRowNotFound) {
		return err
	}
	return nil
}
