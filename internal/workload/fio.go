// Package workload implements the paper's benchmark drivers: a Fio-like
// block I/O micro-benchmark (request-size and thread sweeps, mixed random
// read/write), a PostMark-like small-file workload, an FTP-like streaming
// transfer, and a Sysbench-like OLTP driver against minidb. Each reports
// the same metrics the evaluation section plots.
package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/blockdev"
	"repro/internal/metrics"
)

// FioConfig mirrors the paper's fio invocations: vary the I/O request size
// (the amount of data read/written per transaction) and the parallelism
// (the number of threads issuing I/O simultaneously).
type FioConfig struct {
	// Dev is the device under test (must be safe for concurrent use).
	Dev blockdev.Device
	// RequestSize is the bytes per I/O (must be a block multiple).
	RequestSize int
	// Threads is the number of concurrent submitters (default 1).
	Threads int
	// ReadFraction is the read share of the mix (0.5 = the paper's 50/50
	// random read/write pattern).
	ReadFraction float64
	// Ops is the total operation count across all threads.
	Ops int
	// Seed makes runs reproducible.
	Seed int64
	// SpanBlocks restricts the access range (0 = whole device).
	SpanBlocks uint64
}

// FioResult aggregates one run.
type FioResult struct {
	Ops      int
	Reads    int
	Writes   int
	Bytes    int64
	Elapsed  time.Duration
	IOPS     float64
	MBps     float64
	Latency  metrics.Summary
	ReadLat  metrics.Summary
	WriteLat metrics.Summary
}

// String renders the headline numbers.
func (r *FioResult) String() string {
	return fmt.Sprintf("fio: %d ops in %v = %.0f IOPS, %.1f MB/s, mean lat %v",
		r.Ops, r.Elapsed.Round(time.Millisecond), r.IOPS, r.MBps, r.Latency.Mean)
}

// RunFio executes the workload and reports aggregate results.
func RunFio(cfg FioConfig) (*FioResult, error) {
	if cfg.Dev == nil {
		return nil, fmt.Errorf("workload: fio needs a device")
	}
	bs := cfg.Dev.BlockSize()
	if cfg.RequestSize <= 0 || cfg.RequestSize%bs != 0 {
		return nil, fmt.Errorf("workload: request size %d is not a multiple of block size %d", cfg.RequestSize, bs)
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 100
	}
	span := cfg.SpanBlocks
	if span == 0 {
		span = cfg.Dev.Blocks()
	}
	blocksPerOp := uint64(cfg.RequestSize / bs)
	if span < blocksPerOp {
		return nil, fmt.Errorf("workload: span %d blocks < request of %d blocks", span, blocksPerOp)
	}
	maxStart := span - blocksPerOp

	var (
		all, readLat, writeLat metrics.Histogram
		reads, writes          int
		mu                     sync.Mutex
		firstErr               error
	)
	opsPerThread := cfg.Ops / cfg.Threads
	if opsPerThread == 0 {
		opsPerThread = 1
	}

	start := time.Now()
	var wg sync.WaitGroup
	for tIdx := 0; tIdx < cfg.Threads; tIdx++ {
		wg.Add(1)
		go func(tIdx int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(tIdx)*7919))
			buf := make([]byte, cfg.RequestSize)
			for i := 0; i < opsPerThread; i++ {
				lba := uint64(rng.Int63n(int64(maxStart + 1)))
				// Align to the request size for a realistic random map.
				lba -= lba % blocksPerOp
				isRead := rng.Float64() < cfg.ReadFraction
				t0 := time.Now()
				var err error
				if isRead {
					err = cfg.Dev.ReadAt(buf, lba)
				} else {
					rng.Read(buf[:min(64, len(buf))]) // cheap variation
					err = cfg.Dev.WriteAt(buf, lba)
				}
				lat := time.Since(t0)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				if err == nil {
					all.Observe(lat)
					if isRead {
						reads++
						readLat.Observe(lat)
					} else {
						writes++
						writeLat.Observe(lat)
					}
				}
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}(tIdx)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return nil, fmt.Errorf("workload: fio I/O failed: %w", firstErr)
	}

	total := reads + writes
	res := &FioResult{
		Ops:      total,
		Reads:    reads,
		Writes:   writes,
		Bytes:    int64(total) * int64(cfg.RequestSize),
		Elapsed:  elapsed,
		Latency:  all.Snapshot(),
		ReadLat:  readLat.Snapshot(),
		WriteLat: writeLat.Snapshot(),
	}
	if sec := elapsed.Seconds(); sec > 0 {
		res.IOPS = float64(total) / sec
		res.MBps = float64(res.Bytes) / sec / (1 << 20)
	}
	return res, nil
}
