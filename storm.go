// Package storm is a from-scratch reproduction of "StorM: Enabling
// Tenant-Defined Cloud Storage Middle-Box Services" (Lu, Srivastava,
// Saltaformaggio, Xu — DSN 2016): a middle-box platform that lets cloud
// tenants deploy their own storage security and reliability services
// (access monitoring, encryption, replication) between their VMs and the
// cloud's block storage, with the provider supplying all infrastructural
// support.
//
// The package re-exports the platform's public surface:
//
//   - NewCloud boots the simulated IaaS of Figure 1 (compute hosts, storage
//     host, the isolated instance and storage networks, an iSCSI volume
//     service, the SDN controller and the splice forwarding plane).
//   - NewPlatform wraps the cloud with the StorM control plane; Apply takes
//     a tenant Policy and provisions middle-boxes, gateway pairs, forwarding
//     chains, and attached volumes.
//   - ParsePolicy reads the JSON policy format of Section III-D.
//   - The workload runners (RunFio, RunPostmark, RunFTPUpload/Download,
//     RunOLTP) drive attached volumes the way the paper's evaluation does.
//   - Mkfs/Mount give tenants the ext-style file system whose metadata the
//     monitoring service reconstructs.
//
// A minimal session:
//
//	c, _ := storm.NewCloud(storm.CloudConfig{})
//	defer c.Close()
//	p := storm.NewPlatform(c)
//	vm, _ := c.LaunchVM("vm1", "")
//	vol, _ := c.Volumes.Create("data", 64<<20)
//	pol, _ := storm.ParsePolicy(policyJSON)
//	dep, _ := p.Apply(pol)
//	dev := dep.Volumes["vm1/"+vol.ID].Device // block I/O through the chain
//	_ = vm
//	_ = dev
package storm

import (
	"repro/internal/blockdev"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/extfs"
	"repro/internal/initiator"
	"repro/internal/metrics"
	"repro/internal/minidb"
	"repro/internal/netsim"
	"repro/internal/objstore"
	"repro/internal/orchestrator"
	"repro/internal/policy"
	"repro/internal/semantic"
	"repro/internal/services/crypt"
	"repro/internal/services/monitor"
	"repro/internal/services/replica"
	"repro/internal/workload"
)

// Infrastructure types.
type (
	// Cloud is the simulated IaaS (Figure 1).
	Cloud = cloud.Cloud
	// CloudConfig sizes the cloud.
	CloudConfig = cloud.Config
	// VM is a tenant virtual machine.
	VM = cloud.VM
	// MiddleBox is a provisioned storage middle-box VM.
	MiddleBox = cloud.MiddleBox
	// NetworkModel holds the fabric's latency and cost constants.
	NetworkModel = netsim.Model
	// DiskModel is the storage medium's service-time model.
	DiskModel = blockdev.ServiceModel
	// Device is the block device abstraction volumes and services share.
	Device = blockdev.Device
	// RemoteDevice is the VM-side view of an attached volume.
	RemoteDevice = initiator.Device
)

// Platform types.
type (
	// Platform is the StorM control plane.
	Platform = core.Platform
	// TenantDeployment is the realized state of one applied policy.
	TenantDeployment = core.TenantDeployment
	// AttachedVolume is one volume connected through its middle-box chain.
	AttachedVolume = core.AttachedVolume
	// Policy is a tenant's middle-box deployment request (Section III-D).
	Policy = policy.Policy
	// MiddleBoxSpec declares one middle-box VM in a policy.
	MiddleBoxSpec = policy.MiddleBoxSpec
	// VolumeBinding routes one VM's volume through a middle-box chain.
	VolumeBinding = policy.VolumeBinding
)

// Scale-out orchestration types.
type (
	// Orchestrator is the autoscaling control loop for elastic middle-box
	// instance groups (minInstances/maxInstances in a MiddleBoxSpec).
	Orchestrator = orchestrator.Orchestrator
	// OrchestratorConfig tunes the reconcile loop.
	OrchestratorConfig = orchestrator.Config
	// MemberStatus reports one group member's sessions and drain progress.
	MemberStatus = core.MemberStatus
	// MBInstance is one member of a middle-box instance group.
	MBInstance = core.MBInstance
)

// Service types.
type (
	// Monitor is the storage access monitor engine (Section V-B1).
	Monitor = monitor.Monitor
	// Alert reports a watched access.
	Alert = monitor.Alert
	// Signature is a known-malware access pattern the monitor can detect.
	Signature = monitor.Signature
	// SignatureMatch reports a completed malware signature.
	SignatureMatch = monitor.SignatureMatch
	// Event is one reconstructed high-level file operation.
	Event = semantic.Event
	// Cipher is the per-sector AES-256 cipher (Section V-B2).
	Cipher = crypt.Cipher
	// ReplicaDispatcher fans writes out to replicas and stripes reads
	// (Section V-B3).
	ReplicaDispatcher = replica.Dispatcher
	// CPUAccount tracks simulated per-host CPU busy time.
	CPUAccount = metrics.CPUAccount
)

// File system and database types.
type (
	// FS is the ext-style file system tenants put on their volumes.
	FS = extfs.FS
	// FSOptions configures Mkfs.
	FSOptions = extfs.Options
	// FSView is the initial high-level system view (Section III-C).
	FSView = extfs.View
	// DB is the miniature OLTP database used by the replication study.
	DB = minidb.DB
	// ObjectStore is the Swift-like object gateway over a volume's file
	// system (the paper's object-storage applicability claim).
	ObjectStore = objstore.Store
	// ObjectInfo describes one stored object.
	ObjectInfo = objstore.ObjectInfo
)

// Workload types.
type (
	// FioConfig / FioResult mirror the paper's fio runs.
	FioConfig = workload.FioConfig
	FioResult = workload.FioResult
	// PostmarkConfig / PostmarkResult mirror the PostMark comparison.
	PostmarkConfig = workload.PostmarkConfig
	PostmarkResult = workload.PostmarkResult
	// FTPConfig / FTPResult mirror the FTP bandwidth test.
	FTPConfig = workload.FTPConfig
	FTPResult = workload.FTPResult
	// OLTPConfig / OLTPResult mirror the Sysbench-style runs.
	OLTPConfig = workload.OLTPConfig
	OLTPResult = workload.OLTPResult
)

// Service type and mode constants for policies.
const (
	TypeMonitor     = policy.TypeMonitor
	TypeEncryption  = policy.TypeEncryption
	TypeReplication = policy.TypeReplication
	TypeForward     = policy.TypeForward

	ModeActive  = policy.ModeActive
	ModePassive = policy.ModePassive
)

// NewCloud boots the simulated IaaS.
func NewCloud(cfg CloudConfig) (*Cloud, error) { return cloud.New(cfg) }

// NewPlatform wraps a cloud with the StorM control plane.
func NewPlatform(c *Cloud) *Platform { return core.New(c) }

// NewOrchestrator builds the autoscaling control loop for middle-box
// instance groups; Manage enrolls a tenant's group, Start runs the loop.
func NewOrchestrator(cfg OrchestratorConfig) *Orchestrator { return orchestrator.New(cfg) }

// ParsePolicy decodes and validates a JSON tenant policy.
func ParsePolicy(data []byte) (*Policy, error) { return policy.Parse(data) }

// Mkfs formats a device with the ext-style file system.
func Mkfs(dev Device, opts FSOptions) (*FS, error) { return extfs.Mkfs(dev, opts) }

// Mount opens an already-formatted device.
func Mount(dev Device) (*FS, error) { return extfs.Mount(dev) }

// OpenDB opens the miniature OLTP database over a device.
func OpenDB(dev Device, pageSize int) (*DB, error) { return minidb.Open(dev, pageSize) }

// NewObjectStore initializes (or reopens) an object store on a mounted
// file system.
func NewObjectStore(fs *FS) (*ObjectStore, error) { return objstore.New(fs) }

// RunFio executes the fio-like block workload.
func RunFio(cfg FioConfig) (*FioResult, error) { return workload.RunFio(cfg) }

// RunPostmark executes the PostMark-like small-file workload.
func RunPostmark(cfg PostmarkConfig) (*PostmarkResult, error) { return workload.RunPostmark(cfg) }

// RunFTPUpload streams data onto a volume.
func RunFTPUpload(cfg FTPConfig) (*FTPResult, error) { return workload.RunFTPUpload(cfg) }

// RunFTPDownload streams data off a volume.
func RunFTPDownload(cfg FTPConfig) (*FTPResult, error) { return workload.RunFTPDownload(cfg) }

// RunOLTP executes the Sysbench-style transaction workload.
func RunOLTP(cfg OLTPConfig) (*OLTPResult, error) { return workload.RunOLTP(cfg) }
