package storm

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section V). Each benchmark runs the corresponding experiment
// from internal/experiments and reports the paper's headline ratios as
// custom metrics, so `go test -bench=. -benchmem` regenerates the whole
// evaluation. These are macro-benchmarks — run them with -benchtime=1x for
// a single full pass (the default time-based iteration also works; each
// iteration is one complete experiment).

import (
	"testing"
	"time"

	"repro/internal/experiments"
)

// benchOps keeps each iteration fast while preserving the shapes.
const benchOps = 80

func BenchmarkFigure4RoutingIOPS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RoutingOverhead(experiments.Options{FioOps: benchOps})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].NormIOPS(), "norm4K")
		b.ReportMetric(rows[len(rows)-1].NormIOPS(), "norm256K")
	}
}

func BenchmarkFigure7RoutingLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RoutingOverhead(experiments.Options{FioOps: benchOps})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].NormLatency(), "latnorm4K")
		b.ReportMetric(rows[len(rows)-1].NormLatency(), "latnorm256K")
	}
}

func BenchmarkFigure5ProcessingIOPS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ProcessingOverheadBySize(experiments.Options{FioOps: benchOps})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].NormIOPS(experiments.MBActive), "act4K")
		b.ReportMetric(rows[len(rows)-1].NormIOPS(experiments.MBActive), "act256K")
		b.ReportMetric(rows[len(rows)-1].NormIOPS(experiments.MBPassive), "pas256K")
	}
}

func BenchmarkFigure8ProcessingLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ProcessingOverheadBySize(experiments.Options{FioOps: benchOps})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].NormLatency(experiments.MBActive), "actlat256K")
		b.ReportMetric(rows[len(rows)-1].NormLatency(experiments.MBPassive), "paslat256K")
	}
}

func BenchmarkFigure6ThreadsIOPS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ProcessingOverheadByThreads(experiments.Options{FioOps: benchOps / 2})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].NormIOPS(experiments.MBActive), "act4t")
		b.ReportMetric(rows[len(rows)-1].NormIOPS(experiments.MBActive), "act32t")
	}
}

func BenchmarkFigure9ThreadsLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ProcessingOverheadByThreads(experiments.Options{FioOps: benchOps / 2})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].NormLatency(experiments.MBActive), "actlat4t")
		b.ReportMetric(rows[len(rows)-1].NormLatency(experiments.MBActive), "actlat32t")
	}
}

func BenchmarkFigure10CPUBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CPUBreakdown()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Total*100, "tenant-total-%")
		b.ReportMetric(rows[1].Total*100, "mb-total-%")
		b.ReportMetric(rows[1].Total/rows[0].Total, "mb/tenant")
	}
}

func BenchmarkFigure11PostMark(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmp, err := experiments.RunPostmarkComparison()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cmp.MiddleBox.CreateOpsPerSec/cmp.TenantSide.CreateOpsPerSec, "create-x")
		b.ReportMetric(cmp.MiddleBox.ReadOpsPerSec/cmp.TenantSide.ReadOpsPerSec, "read-x")
	}
}

func BenchmarkFigure13ReplicaTPS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunReplication(1500 * time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Avg3RBefore/rep.Avg1R, "3R/1R")
		b.ReportMetric(rep.Avg3RAfter/rep.Avg3RBefore, "after/before")
		b.ReportMetric(float64(rep.Errors3R), "failover-errs")
	}
}

func BenchmarkTableIReconstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableI()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Log)), "log-entries")
	}
}

func BenchmarkTableIIIMalware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		steps, log, err := experiments.TableIII()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(steps)), "steps")
		b.ReportMetric(float64(len(log)), "events")
	}
}

func BenchmarkAblationGatewayPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationGatewayPlacement(benchOps)
		if err != nil {
			b.Fatal(err)
		}
		legacy := rows[0].Latency
		b.ReportMetric(float64(rows[1].Latency-legacy)/float64(time.Microsecond), "worst-ovh-us")
		b.ReportMetric(float64(rows[len(rows)-1].Latency-legacy)/float64(time.Microsecond), "coloc-ovh-us")
	}
}

func BenchmarkAblationChainLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationChainLength(benchOps)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[len(rows)-1].Latency-rows[0].Latency)/float64(time.Microsecond)/3,
			"per-mb-us")
	}
}

func BenchmarkAblationJournalCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationJournalCapacity(benchOps / 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].IOPS/rows[0].IOPS, "big/small")
	}
}

func BenchmarkAblationReplicaFactor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationReplicaFactor(500 * time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].IOPS/rows[0].IOPS, "4R/2R")
	}
}
