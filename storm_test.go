package storm_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	storm "repro"
)

const keyHex = "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"

// fastCloud builds a cloud with negligible network costs for API tests.
func fastCloud(t *testing.T) (*storm.Cloud, *storm.Platform) {
	t.Helper()
	c, err := storm.NewCloud(storm.CloudConfig{ComputeHosts: 4})
	if err != nil {
		t.Fatalf("NewCloud: %v", err)
	}
	t.Cleanup(c.Close)
	return c, storm.NewPlatform(c)
}

func TestPublicAPIEndToEnd(t *testing.T) {
	c, p := fastCloud(t)
	if _, err := c.LaunchVM("vm1", ""); err != nil {
		t.Fatal(err)
	}
	vol, err := c.Volumes.Create("data", 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := storm.ParsePolicy([]byte(`{
	  "tenant": "acme",
	  "middleboxes": [
	    {"name": "mon", "type": "access-monitor", "params": {"watch": "/secrets"}},
	    {"name": "enc", "type": "encryption", "params": {"key": "` + keyHex + `"}}
	  ],
	  "volumes": [{"vm": "vm1", "volume": "` + vol.ID + `", "chain": ["mon", "enc"]}]
	}`))
	if err != nil {
		t.Fatalf("ParsePolicy: %v", err)
	}
	dep, err := p.Apply(pol)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}

	// Format through the chain, store a secret, verify the monitor and
	// the at-rest encryption.
	av := dep.Volumes["vm1/"+vol.ID]
	fs, err := storm.Mkfs(av.Device, storm.FSOptions{})
	if err != nil {
		t.Fatalf("Mkfs: %v", err)
	}
	if err := fs.MkdirAll("/secrets"); err != nil {
		t.Fatal(err)
	}
	secret := []byte("facade-level secret")
	if err := fs.WriteFile("/secrets/f", secret); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/secrets/f")
	if err != nil || !bytes.Equal(got, secret) {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}

	mon := dep.Monitors["mon"]
	var alerted bool
	for _, a := range mon.Alerts() {
		if strings.Contains(a.Event.Path, "/secrets/f") {
			alerted = true
		}
	}
	if !alerted {
		t.Error("monitor missed the watched write")
	}

	raw := make([]byte, 4096)
	leaked := false
	for lba := uint64(0); lba < vol.Device().Blocks(); lba += 8 {
		if err := vol.Device().ReadAt(raw, lba); err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(raw, secret) {
			leaked = true
		}
	}
	if leaked {
		t.Error("plaintext at rest")
	}
	if err := p.Teardown("acme"); err != nil {
		t.Fatal(err)
	}
}

func TestPublicWorkloads(t *testing.T) {
	c, _ := fastCloud(t)
	vm, err := c.LaunchVM("vm1", "")
	if err != nil {
		t.Fatal(err)
	}
	vol, err := c.Volumes.Create("bench", 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := c.AttachVolume(vm, vol.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	fio, err := storm.RunFio(storm.FioConfig{Dev: dev, RequestSize: 4096, Ops: 50, ReadFraction: 0.5})
	if err != nil || fio.Ops != 50 {
		t.Fatalf("RunFio = %+v, %v", fio, err)
	}
	ftp, err := storm.RunFTPUpload(storm.FTPConfig{Dev: dev, FileSize: 1 << 20})
	if err != nil || ftp.Bytes != 1<<20 {
		t.Fatalf("RunFTPUpload = %+v, %v", ftp, err)
	}
	db, err := storm.OpenDB(dev, 4096)
	if err != nil {
		t.Fatal(err)
	}
	oltp, err := storm.RunOLTP(storm.OLTPConfig{DB: db, Rows: 50, Threads: 2, Duration: 200 * time.Millisecond})
	if err != nil || oltp.Transactions == 0 {
		t.Fatalf("RunOLTP = %+v, %v", oltp, err)
	}
	fs, err := storm.Mkfs(dev, storm.FSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pm, err := storm.RunPostmark(storm.PostmarkConfig{FS: fs, Files: 10, Transactions: 20})
	if err != nil || pm.CreateOps < 10 {
		t.Fatalf("RunPostmark = %+v, %v", pm, err)
	}
}

func TestPublicConstantsAndTypes(t *testing.T) {
	// The policy constants round-trip through validation.
	pol := &storm.Policy{
		Tenant: "t",
		MiddleBoxes: []storm.MiddleBoxSpec{
			{Name: "f", Type: storm.TypeForward},
			{Name: "r", Type: storm.TypeReplication, Mode: storm.ModePassive,
				Params: map[string]string{"replicas": "2"}},
		},
		Volumes: []storm.VolumeBinding{{VM: "vm", Volume: "vol", Chain: []string{"f", "r"}}},
	}
	if err := pol.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}
